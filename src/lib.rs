//! # v-system — Preemptable Remote Execution Facilities for the V-System
//!
//! A full reproduction, as a deterministic discrete-event simulation, of
//! Theimer, Lantz & Cheriton, *"Preemptable Remote Execution Facilities
//! for the V-System"* (SOSP 1985): the `program @ *` remote-execution
//! facility, pre-copy migration of logical hosts with sub-second freeze
//! times, and residual-dependency-free rebinding.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`vsim`] | discrete-event engine, deterministic RNG, calibration constants |
//! | [`vnet`] | 10 Mbit Ethernet model (loss, broadcast, multicast) |
//! | [`vmem`] | address spaces, dirty pages, writable-working-set model |
//! | [`vkernel`] | the V distributed kernel: IPC, groups, binding cache, freeze |
//! | [`vservices`] | program manager, file server, display server |
//! | [`vworkload`] | the paper's programs (Table 4-1 fits) and user models |
//! | [`vcore`] | remote execution + migration: the paper's contribution |
//! | [`vcluster`] | the whole-cluster runtime |
//!
//! ## Quickstart
//!
//! ```
//! use v_system::prelude::*;
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     workstations: 3,
//!     loss: LossModel::None,
//!     ..ClusterConfig::default()
//! });
//! let job = vworkload::profiles::simulation_profile(SimDuration::from_secs(30));
//! cluster.exec(1, job, ExecTarget::AnyIdle, Priority::GUEST);
//! cluster.run_for(SimDuration::from_secs(60));
//! assert!(cluster.exec_reports[0].success);
//! ```

pub use vcluster;
pub use vcore;
pub use vkernel;
pub use vmem;
pub use vnet;
pub use vservices;
pub use vsim;
pub use vworkload;

/// The names most scenarios need.
pub mod prelude {
    pub use vcluster::{
        AuditReport, AuditViolation, Cluster, ClusterConfig, Command, ScenarioBuilder,
    };
    pub use vcore::{ExecTarget, MigrationConfig, MigrationReport, StopPolicy, Strategy};
    pub use vkernel::{LogicalHostId, Priority, ProcessId};
    pub use vnet::{HostAddr, LossModel};
    pub use vservices::LeaseConfig;
    pub use vsim::{
        fault_points, DetRng, Engine, EventId, EventQueue, FaultKind, FaultPlan, FaultPoint,
        FaultTrigger, Metrics, MetricsReport, MigrationPhase, Party, ProtocolStep, QueueBackend,
        SamplingSpec, SimContext, SimDuration, SimTime, SpanContext, SpanId, SpanIdGen, SpanNode,
        SpanTree, SpanViolation, Subsystem, Trace, TraceEvent, TraceLevel, TraceSinkSpec, PARTY,
    };
    pub use vworkload::{profiles, Phase, ProgramProfile, UserModelParams};
}
