//! Network addressing.
//!
//! The paper's cluster is a single 10 Mbit Ethernet; hosts have 48-bit
//! physical addresses and V maps 32-bit process identifiers onto them via
//! the logical-host binding cache (§3.1.4). At this layer we model a
//! physical host address and the three Ethernet destination modes V uses:
//! unicast, broadcast (binding queries), and multicast (process groups such
//! as the program-manager group).

use core::fmt;

/// A physical host address on the simulated Ethernet segment.
///
/// Stands in for a 48-bit Ethernet station address; the simulation hands
/// them out densely from zero as hosts attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostAddr(pub u16);

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// An Ethernet multicast group address.
///
/// V process groups with network-wide membership (e.g. the well-known
/// program-manager group) map onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McastGroup(pub u16);

impl fmt::Display for McastGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mcast{}", self.0)
    }
}

/// Destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDest {
    /// Deliver to a single station.
    Unicast(HostAddr),
    /// Deliver to every attached station except the sender.
    Broadcast,
    /// Deliver to current members of the group (except the sender).
    Multicast(McastGroup),
}

impl fmt::Display for NetDest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetDest::Unicast(h) => write!(f, "{h}"),
            NetDest::Broadcast => write!(f, "broadcast"),
            NetDest::Multicast(g) => write!(f, "{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(HostAddr(3).to_string(), "host3");
        assert_eq!(McastGroup(1).to_string(), "mcast1");
        assert_eq!(NetDest::Unicast(HostAddr(2)).to_string(), "host2");
        assert_eq!(NetDest::Broadcast.to_string(), "broadcast");
        assert_eq!(NetDest::Multicast(McastGroup(7)).to_string(), "mcast7");
    }

    #[test]
    fn addr_ordering_and_dedup() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(HostAddr(1));
        s.insert(HostAddr(1));
        s.insert(HostAddr(2));
        assert_eq!(s.len(), 2);
        assert!(HostAddr(1) < HostAddr(2));
        // Ordered iteration is what the determinism rules rely on.
        assert_eq!(
            s.iter().copied().collect::<Vec<_>>(),
            [HostAddr(1), HostAddr(2)]
        );
    }
}
