//! Packet-loss models.
//!
//! The paper's migration protocol leans on reliable-IPC retransmission to
//! survive loss during and after migration (§3.1.3: "the sender ... is
//! prepared to retransmit"). The loss model is pluggable so experiments can
//! sweep it (ablation A3) and tests can force deterministic drops.

use vsim::DetRng;

/// Decides, per receiver, whether a frame is lost.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No loss at all; used by unit tests that assert exact protocol
    /// behaviour.
    None,
    /// Independent Bernoulli loss with the given probability.
    Bernoulli(f64),
    /// Deterministically drop every `n`-th delivery (1-based counter);
    /// reproducible loss for protocol-recovery tests.
    EveryNth(u64),
    /// Drop exactly the first `n` deliveries, then none; for tests that
    /// need a specific packet lost.
    FirstN(u64),
    /// Gilbert–Elliott two-state burst model: in the good state frames drop
    /// with `p_good`, in the bad state with `p_bad`; transitions happen per
    /// frame with `p_enter_bad` / `p_leave_bad`.
    Burst {
        /// Loss probability in the good state.
        p_good: f64,
        /// Loss probability in the bad state.
        p_bad: f64,
        /// Per-frame probability of entering the bad state.
        p_enter_bad: f64,
        /// Per-frame probability of leaving the bad state.
        p_leave_bad: f64,
    },
}

/// Stateful evaluator for a [`LossModel`].
#[derive(Debug)]
pub struct LossState {
    model: LossModel,
    counter: u64,
    in_bad_state: bool,
}

impl LossState {
    /// Creates an evaluator for `model`.
    pub fn new(model: LossModel) -> Self {
        LossState {
            model,
            counter: 0,
            in_bad_state: false,
        }
    }

    /// The model being evaluated.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Returns `true` if the next delivery should be dropped.
    pub fn drops(&mut self, rng: &mut DetRng) -> bool {
        self.counter += 1;
        match self.model {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(p),
            LossModel::EveryNth(n) => n > 0 && self.counter.is_multiple_of(n),
            LossModel::FirstN(n) => self.counter <= n,
            LossModel::Burst {
                p_good,
                p_bad,
                p_enter_bad,
                p_leave_bad,
            } => {
                if self.in_bad_state {
                    if rng.chance(p_leave_bad) {
                        self.in_bad_state = false;
                    }
                } else if rng.chance(p_enter_bad) {
                    self.in_bad_state = true;
                }
                rng.chance(if self.in_bad_state { p_bad } else { p_good })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut s = LossState::new(LossModel::None);
        let mut rng = DetRng::seed(1);
        assert!((0..1000).all(|_| !s.drops(&mut rng)));
    }

    #[test]
    fn every_nth_is_deterministic() {
        let mut s = LossState::new(LossModel::EveryNth(3));
        let mut rng = DetRng::seed(1);
        let pattern: Vec<bool> = (0..9).map(|_| s.drops(&mut rng)).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn every_zero_never_drops() {
        let mut s = LossState::new(LossModel::EveryNth(0));
        let mut rng = DetRng::seed(1);
        assert!((0..100).all(|_| !s.drops(&mut rng)));
    }

    #[test]
    fn first_n_drops_then_clears() {
        let mut s = LossState::new(LossModel::FirstN(2));
        let mut rng = DetRng::seed(1);
        let pattern: Vec<bool> = (0..5).map(|_| s.drops(&mut rng)).collect();
        assert_eq!(pattern, vec![true, true, false, false, false]);
    }

    #[test]
    fn bernoulli_rate_is_about_p() {
        let mut s = LossState::new(LossModel::Bernoulli(0.1));
        let mut rng = DetRng::seed(5);
        let drops = (0..50_000).filter(|_| s.drops(&mut rng)).count();
        let rate = drops as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn burst_model_clusters_losses() {
        let mut s = LossState::new(LossModel::Burst {
            p_good: 0.0,
            p_bad: 1.0,
            p_enter_bad: 0.01,
            p_leave_bad: 0.2,
        });
        let mut rng = DetRng::seed(7);
        let outcomes: Vec<bool> = (0..100_000).map(|_| s.drops(&mut rng)).collect();
        let total = outcomes.iter().filter(|&&d| d).count();
        // Steady-state bad fraction = 0.01 / (0.01 + 0.2) ~ 4.8%.
        let rate = total as f64 / outcomes.len() as f64;
        assert!((rate - 0.048).abs() < 0.01, "rate {rate}");
        // Losses must cluster: P(drop | previous drop) >> P(drop).
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let both = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = both as f64 / pairs as f64;
        assert!(cond > 3.0 * rate, "conditional {cond} vs marginal {rate}");
    }
}
