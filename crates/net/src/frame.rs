//! Frames on the wire.
//!
//! A frame is generic over its payload type: the kernel layer defines the V
//! interkernel packet format and this crate only needs the byte count to
//! model serialization delay.

use crate::addr::{HostAddr, NetDest};

/// A frame queued for, or delivered from, the Ethernet segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// Sending station.
    pub src: HostAddr,
    /// Destination mode.
    pub dest: NetDest,
    /// Payload size in bytes (drives serialization delay); the header
    /// overhead is added by the wire model.
    pub payload_bytes: u64,
    /// The payload itself, opaque to this layer.
    pub payload: P,
}

impl<P> Frame<P> {
    /// Builds a unicast frame.
    pub fn unicast(src: HostAddr, to: HostAddr, payload_bytes: u64, payload: P) -> Self {
        Frame {
            src,
            dest: NetDest::Unicast(to),
            payload_bytes,
            payload,
        }
    }

    /// Builds a broadcast frame.
    pub fn broadcast(src: HostAddr, payload_bytes: u64, payload: P) -> Self {
        Frame {
            src,
            dest: NetDest::Broadcast,
            payload_bytes,
            payload,
        }
    }

    /// Builds a multicast frame.
    pub fn multicast(
        src: HostAddr,
        group: crate::addr::McastGroup,
        payload_bytes: u64,
        payload: P,
    ) -> Self {
        Frame {
            src,
            dest: NetDest::Multicast(group),
            payload_bytes,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::McastGroup;

    #[test]
    fn constructors_fill_fields() {
        let f = Frame::unicast(HostAddr(1), HostAddr(2), 32, "req");
        assert_eq!(f.src, HostAddr(1));
        assert_eq!(f.dest, NetDest::Unicast(HostAddr(2)));
        assert_eq!(f.payload_bytes, 32);

        let b = Frame::broadcast(HostAddr(1), 64, "query");
        assert_eq!(b.dest, NetDest::Broadcast);

        let m = Frame::multicast(HostAddr(1), McastGroup(4), 32, "pm?");
        assert_eq!(m.dest, NetDest::Multicast(McastGroup(4)));
    }
}
