//! Frames on the wire.
//!
//! A frame is generic over its payload type: the kernel layer defines the V
//! interkernel packet format and this crate only needs the byte count to
//! model serialization delay.
//!
//! Every frame carries a checksum over its header fields, standing in for
//! the Ethernet CRC over the whole frame. The wire model can flip it to
//! simulate payload corruption; receivers call [`Frame::checksum_valid`]
//! and discard frames that fail, which surfaces a distinct drop path from
//! outright loss.

use vsim::SpanContext;

use crate::addr::{HostAddr, NetDest};

/// A frame queued for, or delivered from, the Ethernet segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// Sending station.
    pub src: HostAddr,
    /// Destination mode.
    pub dest: NetDest,
    /// Payload size in bytes (drives serialization delay); the header
    /// overhead is added by the wire model.
    pub payload_bytes: u64,
    /// Frame check sequence; set by the constructors, mangled by the wire
    /// when corruption is injected.
    pub checksum: u64,
    /// Causal span this transmission belongs to (`NONE` when untraced);
    /// out-of-band observability metadata, so it is not checksummed and
    /// costs no simulated bytes.
    pub span: SpanContext,
    /// The payload itself, opaque to this layer.
    pub payload: P,
}

/// Mixes the header fields into a 64-bit check value (SplitMix64 finalizer).
fn header_checksum(src: HostAddr, dest: NetDest, payload_bytes: u64) -> u64 {
    let dest_bits: u64 = match dest {
        NetDest::Unicast(h) => (1 << 32) | h.0 as u64,
        NetDest::Broadcast => 2 << 32,
        NetDest::Multicast(g) => (3 << 32) | g.0 as u64,
    };
    let mut z = (src.0 as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(dest_bits.rotate_left(17))
        .wrapping_add(payload_bytes.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<P> Frame<P> {
    /// Builds a unicast frame.
    pub fn unicast(src: HostAddr, to: HostAddr, payload_bytes: u64, payload: P) -> Self {
        Frame {
            src,
            dest: NetDest::Unicast(to),
            payload_bytes,
            checksum: header_checksum(src, NetDest::Unicast(to), payload_bytes),
            span: SpanContext::NONE,
            payload,
        }
    }

    /// Builds a broadcast frame.
    pub fn broadcast(src: HostAddr, payload_bytes: u64, payload: P) -> Self {
        Frame {
            src,
            dest: NetDest::Broadcast,
            payload_bytes,
            checksum: header_checksum(src, NetDest::Broadcast, payload_bytes),
            span: SpanContext::NONE,
            payload,
        }
    }

    /// Builds a multicast frame.
    pub fn multicast(
        src: HostAddr,
        group: crate::addr::McastGroup,
        payload_bytes: u64,
        payload: P,
    ) -> Self {
        Frame {
            src,
            dest: NetDest::Multicast(group),
            payload_bytes,
            checksum: header_checksum(src, NetDest::Multicast(group), payload_bytes),
            span: SpanContext::NONE,
            payload,
        }
    }

    /// Stamps the frame with the causal span it belongs to.
    pub fn with_span(mut self, span: SpanContext) -> Self {
        self.span = span;
        self
    }

    /// True when the check sequence matches the header fields — i.e. the
    /// frame was not corrupted in transit.
    pub fn checksum_valid(&self) -> bool {
        self.checksum == header_checksum(self.src, self.dest, self.payload_bytes)
    }

    /// Mangles the check sequence as wire corruption would; `salt` varies
    /// the damage. The frame is guaranteed to fail [`Frame::checksum_valid`]
    /// afterwards.
    pub fn corrupt(&mut self, salt: u64) {
        self.checksum ^= salt | 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::McastGroup;

    #[test]
    fn constructors_fill_fields() {
        let f = Frame::unicast(HostAddr(1), HostAddr(2), 32, "req");
        assert_eq!(f.src, HostAddr(1));
        assert_eq!(f.dest, NetDest::Unicast(HostAddr(2)));
        assert_eq!(f.payload_bytes, 32);

        let b = Frame::broadcast(HostAddr(1), 64, "query");
        assert_eq!(b.dest, NetDest::Broadcast);

        let m = Frame::multicast(HostAddr(1), McastGroup(4), 32, "pm?");
        assert_eq!(m.dest, NetDest::Multicast(McastGroup(4)));
        assert!(m.span.is_none());
    }

    #[test]
    fn span_stamp_does_not_disturb_the_checksum() {
        let mut gen = vsim::SpanIdGen::new(9);
        let f = Frame::unicast(HostAddr(1), HostAddr(2), 32, "req").with_span(gen.next().ctx());
        assert!(f.span.is_some());
        assert!(f.checksum_valid(), "span is out-of-band metadata");
    }

    #[test]
    fn checksum_validates_and_corruption_breaks_it() {
        let mut f = Frame::unicast(HostAddr(1), HostAddr(2), 32, "req");
        assert!(f.checksum_valid());
        f.corrupt(0);
        assert!(!f.checksum_valid(), "salt 0 must still flip a bit");
        let mut g = Frame::broadcast(HostAddr(3), 64, "query");
        g.corrupt(0xdead_beef);
        assert!(!g.checksum_valid());
    }

    #[test]
    fn checksums_differ_across_headers() {
        let a = Frame::unicast(HostAddr(1), HostAddr(2), 32, ());
        let b = Frame::unicast(HostAddr(2), HostAddr(1), 32, ());
        let c = Frame::unicast(HostAddr(1), HostAddr(2), 33, ());
        assert_ne!(a.checksum, b.checksum);
        assert_ne!(a.checksum, c.checksum);
    }
}
