//! `vnet` — the 10 Mbit Ethernet segment model.
//!
//! The V-system's cluster is one (logical) local network (§6 of the paper).
//! This crate models the shared channel the reproduction runs over: frame
//! serialization and queueing, per-receiver packet loss, broadcast and
//! multicast (used for binding-cache queries and the program-manager
//! group), and station up/down state for crash experiments.

mod addr;
mod ethernet;
mod frame;
mod loss;

pub use addr::{HostAddr, McastGroup, NetDest};
pub use ethernet::{Delivery, Ethernet, WireStats};
pub use frame::Frame;
pub use loss::{LossModel, LossState};
