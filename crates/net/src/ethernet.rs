//! The shared 10 Mbit Ethernet segment.
//!
//! A single segment connects every workstation and server (§4.1). The model
//! captures what the protocols above care about:
//!
//! * **Serialization**: the channel is a single resource; frames queue
//!   behind one another and a frame's wire time follows
//!   [`vsim::calib::frame_wire_time`]. (CSMA/CD collisions are folded into
//!   this FIFO arbitration — at the paper's utilization levels collision
//!   loss is negligible next to receiver-side drops.)
//! * **Loss**: per-receiver, pluggable ([`LossModel`]), so a broadcast can
//!   reach some stations and miss others.
//! * **Broadcast & multicast**: binding-cache queries broadcast; process
//!   groups (e.g. the program-manager group) multicast.
//! * **Host failure**: a down station neither sends nor receives, for the
//!   old-host-reboot and target-failure experiments.

use std::collections::{BTreeMap, BTreeSet};

use vsim::calib::{frame_wire_time, WIRE_LATENCY};
use vsim::{
    CounterId, DetRng, HistogramId, Metrics, SimDuration, SimTime, Subsystem, Trace, TraceEvent,
    TraceLevel,
};

use crate::addr::{HostAddr, McastGroup, NetDest};
use crate::frame::Frame;
use crate::loss::{LossModel, LossState};

/// A frame arriving at a station at a given instant.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Receiving station.
    pub to: HostAddr,
    /// Arrival instant (end of serialization plus latency).
    pub at: SimTime,
    /// The frame as sent.
    pub frame: Frame<P>,
}

/// Wire-level counters.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    /// Frames offered to the channel by live senders.
    pub frames_sent: u64,
    /// Successful per-receiver deliveries.
    pub deliveries: u64,
    /// Per-receiver drops due to the loss model.
    pub drops_loss: u64,
    /// Per-receiver drops because the receiver was down.
    pub drops_down: u64,
    /// Per-receiver drops because the link was partitioned.
    pub drops_partition: u64,
    /// Per-receiver deliveries whose checksum was corrupted in transit.
    pub corrupted: u64,
    /// Frames discarded because the *sender* was down.
    pub sender_down: u64,
    /// Total payload bytes offered.
    pub payload_bytes: u64,
    /// Cumulative channel busy time.
    pub busy: SimDuration,
}

impl WireStats {
    /// Channel utilization over `[SimTime::ZERO, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / now.since(SimTime::ZERO).as_secs_f64()
        }
    }
}

struct Station {
    up: bool,
    frames_tx: u64,
    frames_rx: u64,
    bytes_tx: u64,
    bytes_rx: u64,
}

/// The shared segment.
///
/// # Examples
///
/// ```
/// use vnet::{Ethernet, Frame, LossModel};
/// use vsim::{DetRng, SimTime};
///
/// let mut net: Ethernet<&str> = Ethernet::new(LossModel::None, DetRng::seed(1));
/// let a = net.attach();
/// let b = net.attach();
/// let out = net.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, "hello"));
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].to, b);
/// ```
pub struct Ethernet<P> {
    stations: Vec<Station>,
    groups: BTreeMap<McastGroup, BTreeSet<HostAddr>>,
    busy_until: SimTime,
    loss: LossState,
    rng: DetRng,
    /// Directed sender → receiver pairs currently blocked by a partition.
    blocked: BTreeSet<(HostAddr, HostAddr)>,
    /// Directed links with extra latency: `(extra, expires_at)`.
    link_extra: BTreeMap<(HostAddr, HostAddr), (SimDuration, SimTime)>,
    /// Per-delivery corruption probability while `now < corrupt_until`.
    corrupt_prob: f64,
    corrupt_until: SimTime,
    stats: WireStats,
    metrics: Metrics,
    trace: Trace,
    ctr_sent: CounterId,
    ctr_delivered: CounterId,
    ctr_drop_loss: CounterId,
    ctr_drop_down: CounterId,
    ctr_drop_partition: CounterId,
    ctr_corrupted: CounterId,
    ctr_sender_down: CounterId,
    ctr_payload_bytes: CounterId,
    ctr_busy_us: CounterId,
    hist_frame_bytes: HistogramId,
    _payload: std::marker::PhantomData<P>,
}

impl<P: Clone> Ethernet<P> {
    /// Creates an empty segment with the given loss model.
    pub fn new(loss: LossModel, rng: DetRng) -> Self {
        let mut metrics = Metrics::new();
        let ctr_sent = metrics.counter(Subsystem::Net, "frames_sent");
        let ctr_delivered = metrics.counter(Subsystem::Net, "frames_delivered");
        let ctr_drop_loss = metrics.counter(Subsystem::Net, "frames_dropped_loss");
        let ctr_drop_down = metrics.counter(Subsystem::Net, "frames_dropped_down");
        let ctr_drop_partition = metrics.counter(Subsystem::Net, "frames_dropped_partition");
        let ctr_corrupted = metrics.counter(Subsystem::Net, "frames_corrupted");
        let ctr_sender_down = metrics.counter(Subsystem::Net, "frames_sender_down");
        let ctr_payload_bytes = metrics.counter(Subsystem::Net, "payload_bytes");
        let ctr_busy_us = metrics.counter(Subsystem::Net, "wire_busy_us");
        let hist_frame_bytes = metrics.histogram(Subsystem::Net, "frame_payload_bytes", "bytes");
        Ethernet {
            stations: Vec::new(),
            groups: BTreeMap::new(),
            busy_until: SimTime::ZERO,
            loss: LossState::new(loss),
            rng,
            blocked: BTreeSet::new(),
            link_extra: BTreeMap::new(),
            corrupt_prob: 0.0,
            corrupt_until: SimTime::ZERO,
            stats: WireStats::default(),
            metrics,
            trace: Trace::quiet(),
            ctr_sent,
            ctr_delivered,
            ctr_drop_loss,
            ctr_drop_down,
            ctr_drop_partition,
            ctr_corrupted,
            ctr_sender_down,
            ctr_payload_bytes,
            ctr_busy_us,
            hist_frame_bytes,
            _payload: std::marker::PhantomData,
        }
    }

    /// Attaches a new station and returns its address.
    pub fn attach(&mut self) -> HostAddr {
        let addr =
            HostAddr(u16::try_from(self.stations.len()).expect("too many stations on one segment"));
        self.stations.push(Station {
            up: true,
            frames_tx: 0,
            frames_rx: 0,
            bytes_tx: 0,
            bytes_rx: 0,
        });
        addr
    }

    /// Number of attached stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// All attached station addresses.
    pub fn stations(&self) -> impl Iterator<Item = HostAddr> + '_ {
        (0..self.stations.len()).map(|i| HostAddr(i as u16))
    }

    /// Marks a station up or down (crash / reboot simulation).
    ///
    /// # Panics
    ///
    /// Panics if the address was never attached.
    pub fn set_up(&mut self, host: HostAddr, up: bool) {
        self.station_mut(host).up = up;
    }

    /// True if the station is up.
    pub fn is_up(&self, host: HostAddr) -> bool {
        self.station(host).up
    }

    /// Adds a station to a multicast group (idempotent).
    pub fn join(&mut self, group: McastGroup, host: HostAddr) {
        let _ = self.station(host); // Validate.
        self.groups.entry(group).or_default().insert(host);
    }

    /// Removes a station from a multicast group (idempotent).
    pub fn leave(&mut self, group: McastGroup, host: HostAddr) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&host);
        }
    }

    /// Current members of a group, in address order.
    pub fn members(&self, group: McastGroup) -> Vec<HostAddr> {
        self.groups
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Blocks frames from every station in `a` to every station in `b`
    /// (and the reverse direction when `symmetric`), modelling a network
    /// partition. Asymmetric partitions — a can talk to b but not hear it —
    /// are expressed by calling with `symmetric: false`.
    pub fn partition(&mut self, a: &[HostAddr], b: &[HostAddr], symmetric: bool) {
        for &x in a {
            for &y in b {
                if x != y {
                    self.blocked.insert((x, y));
                    if symmetric {
                        self.blocked.insert((y, x));
                    }
                }
            }
        }
    }

    /// Removes partition state between the two station groups, in both
    /// directions (healing is always symmetric).
    pub fn heal(&mut self, a: &[HostAddr], b: &[HostAddr]) {
        for &x in a {
            for &y in b {
                self.blocked.remove(&(x, y));
                self.blocked.remove(&(y, x));
            }
        }
    }

    /// True when frames from `from` to `to` are currently blocked.
    pub fn is_blocked(&self, from: HostAddr, to: HostAddr) -> bool {
        self.blocked.contains(&(from, to))
    }

    /// Adds `extra` delivery latency on the directed link `from → to` until
    /// the instant `until` (a per-link latency spike).
    pub fn set_link_latency(
        &mut self,
        from: HostAddr,
        to: HostAddr,
        extra: SimDuration,
        until: SimTime,
    ) {
        self.link_extra.insert((from, to), (extra, until));
    }

    /// Corrupts each delivery with probability `p` until the instant
    /// `until`; corrupted frames fail [`Frame::checksum_valid`] at the
    /// receiver.
    pub fn set_corruption(&mut self, p: f64, until: SimTime) {
        self.corrupt_prob = p;
        self.corrupt_until = until;
    }

    /// Offers a frame to the channel at time `now`, returning the resulting
    /// deliveries (possibly none).
    ///
    /// The channel serializes frames: if it is busy, transmission starts
    /// when it frees. All receivers hear the frame at the same instant
    /// (plus any per-link latency spike); loss, partition blocking, and
    /// corruption are decided independently per receiver (`Ethernet::deliver`).
    /// The sender never receives its own frame.
    pub fn transmit(&mut self, now: SimTime, frame: Frame<P>) -> Vec<Delivery<P>> {
        if !self.station(frame.src).up {
            self.stats.sender_down += 1;
            self.metrics.inc(self.ctr_sender_down);
            return Vec::new();
        }
        self.stats.frames_sent += 1;
        self.stats.payload_bytes += frame.payload_bytes;
        self.metrics.inc(self.ctr_sent);
        self.metrics
            .add(self.ctr_payload_bytes, frame.payload_bytes);
        self.metrics
            .observe(self.hist_frame_bytes, frame.payload_bytes as f64);
        {
            let st = self.station_mut(frame.src);
            st.frames_tx += 1;
            st.bytes_tx += frame.payload_bytes;
        }

        let start = now.max(self.busy_until);
        let wire = frame_wire_time(frame.payload_bytes);
        self.busy_until = start + wire;
        self.stats.busy += wire;
        self.metrics.add(self.ctr_busy_us, wire.as_micros());
        let arrival = start + wire + WIRE_LATENCY;

        let receivers: Vec<HostAddr> = match frame.dest {
            NetDest::Unicast(h) => {
                let _ = self.station(h); // Validate.
                vec![h]
            }
            NetDest::Broadcast => self.stations().filter(|&h| h != frame.src).collect(),
            NetDest::Multicast(g) => self
                .members(g)
                .into_iter()
                .filter(|&h| h != frame.src)
                .collect(),
        };

        let mut out = Vec::with_capacity(receivers.len());
        for to in receivers {
            if let Some(d) = self.deliver(now, arrival, &frame, to) {
                out.push(d);
            }
        }
        out
    }

    /// Decides the fate of one frame at one receiver: down-station and
    /// partition drops, an *independent per-receiver* loss-model draw (per
    /// the `loss` module contract), a corruption draw while a corruption
    /// window is open, and any per-link latency spike. Returns the delivery,
    /// or `None` when the receiver never hears the frame.
    fn deliver(
        &mut self,
        now: SimTime,
        arrival: SimTime,
        frame: &Frame<P>,
        to: HostAddr,
    ) -> Option<Delivery<P>> {
        if !self.station(to).up {
            self.stats.drops_down += 1;
            self.metrics.inc(self.ctr_drop_down);
            return None;
        }
        // Partition blocking is static configuration: checked before the
        // loss draw and without consuming randomness.
        if self.is_blocked(frame.src, to) {
            self.stats.drops_partition += 1;
            self.metrics.inc(self.ctr_drop_partition);
            self.trace.emit(
                TraceLevel::Detail,
                now,
                Subsystem::Net,
                TraceEvent::FrameDropped {
                    from: frame.src.0,
                    to: to.0,
                    bytes: frame.payload_bytes,
                },
            );
            return None;
        }
        if self.loss.drops(&mut self.rng) {
            self.stats.drops_loss += 1;
            self.metrics.inc(self.ctr_drop_loss);
            self.trace.emit(
                TraceLevel::Detail,
                now,
                Subsystem::Net,
                TraceEvent::FrameDropped {
                    from: frame.src.0,
                    to: to.0,
                    bytes: frame.payload_bytes,
                },
            );
            return None;
        }
        let mut frame = frame.clone();
        if self.corrupt_prob > 0.0 && now < self.corrupt_until {
            let salt = self.rng.range_u64(1, u64::MAX);
            if self.rng.chance(self.corrupt_prob) {
                frame.corrupt(salt);
                self.stats.corrupted += 1;
                self.metrics.inc(self.ctr_corrupted);
            }
        }
        let at = match self.link_extra.get(&(frame.src, to)) {
            Some(&(extra, until)) if now < until => arrival + extra,
            _ => arrival,
        };
        self.stats.deliveries += 1;
        self.metrics.inc(self.ctr_delivered);
        {
            let st = self.station_mut(to);
            st.frames_rx += 1;
            st.bytes_rx += frame.payload_bytes;
        }
        Some(Delivery { to, at, frame })
    }

    /// Wire counters.
    pub fn stats(&self) -> &WireStats {
        &self.stats
    }

    /// The segment's metrics registry (counters mirror [`WireStats`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The segment's trace (per-receiver drop events at detail level).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace handle, e.g. to raise the retained level or drain
    /// records into a cluster-wide trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Per-station counters: `(frames sent, frames received, payload
    /// bytes sent, payload bytes received)`.
    pub fn station_stats(&self, host: HostAddr) -> (u64, u64, u64, u64) {
        let st = self.station(host);
        (st.frames_tx, st.frames_rx, st.bytes_tx, st.bytes_rx)
    }

    /// When the channel next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    fn station(&self, host: HostAddr) -> &Station {
        self.stations
            .get(host.0 as usize)
            .expect("unknown station address")
    }

    fn station_mut(&mut self, host: HostAddr) -> &mut Station {
        self.stations
            .get_mut(host.0 as usize)
            .expect("unknown station address")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Ethernet<u32> {
        Ethernet::new(LossModel::None, DetRng::seed(42))
    }

    #[test]
    fn attach_hands_out_dense_addresses() {
        let mut n = net();
        assert_eq!(n.attach(), HostAddr(0));
        assert_eq!(n.attach(), HostAddr(1));
        assert_eq!(n.station_count(), 2);
    }

    #[test]
    fn unicast_arrives_after_wire_time_and_latency() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 7));
        assert_eq!(out.len(), 1);
        // (1024+38)*8/10 = 849 us wire + 50 us latency.
        assert_eq!(out[0].at, SimTime::from_micros(899));
        assert_eq!(out[0].frame.payload, 7);
    }

    #[test]
    fn channel_serializes_back_to_back_frames() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let first = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 1));
        let second = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 2));
        assert_eq!(first[0].at, SimTime::from_micros(899));
        // The second frame waits for the first to clear the wire.
        assert_eq!(second[0].at, SimTime::from_micros(849 + 899));
        assert!((n.stats().utilization(SimTime::from_micros(1698)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 1));
        n.transmit(SimTime::from_micros(10_000), Frame::unicast(a, b, 1024, 2));
        let util = n.stats().utilization(SimTime::from_micros(20_000));
        assert!((util - 2.0 * 849.0 / 20_000.0).abs() < 1e-6, "util {util}");
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut n = net();
        let a = n.attach();
        let _b = n.attach();
        let _c = n.attach();
        let out = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 9));
        let to: Vec<HostAddr> = out.iter().map(|d| d.to).collect();
        assert_eq!(to, vec![HostAddr(1), HostAddr(2)]);
    }

    #[test]
    fn multicast_respects_membership() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        let g = McastGroup(1);
        n.join(g, b);
        n.join(g, c);
        n.join(g, c); // Idempotent.
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 2);
        n.leave(g, b);
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, c);
    }

    #[test]
    fn multicast_excludes_sender_even_if_member() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let g = McastGroup(2);
        n.join(g, a);
        n.join(g, b);
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, b);
    }

    #[test]
    fn down_receiver_hears_nothing() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.set_up(b, false);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert!(out.is_empty());
        assert_eq!(n.stats().drops_down, 1);
        n.set_up(b, true);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn down_sender_transmits_nothing() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.set_up(a, false);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert!(out.is_empty());
        assert_eq!(n.stats().sender_down, 1);
        assert_eq!(n.stats().frames_sent, 0);
    }

    #[test]
    fn loss_model_drops_per_receiver() {
        let mut n: Ethernet<u32> = Ethernet::new(LossModel::EveryNth(2), DetRng::seed(1));
        let a = n.attach();
        let _b = n.attach();
        let _c = n.attach();
        // Broadcast to two receivers: the 2nd receiver check drops.
        let out = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(n.stats().drops_loss, 1);
    }

    #[test]
    fn loss_is_evaluated_independently_per_receiver() {
        // Regression for the `loss.rs` doc contract: every receiver of a
        // broadcast gets its own loss draw, so `EveryNth(3)` across two
        // 3-receiver broadcasts drops exactly receivers #3 and #6 — one
        // drop per frame, at a *different* receiver position each time.
        let mut n: Ethernet<u32> = Ethernet::new(LossModel::EveryNth(3), DetRng::seed(1));
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        let d = n.attach();
        let e = n.attach();
        // Four receivers per broadcast → draws 1,2,3,4 then 5,6,7,8: the
        // multiples of three land on a different receiver each frame.
        let first = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 0));
        let to: Vec<HostAddr> = first.iter().map(|x| x.to).collect();
        assert_eq!(to, vec![b, c, e], "3rd per-receiver draw (d) is the drop");
        let second = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 0));
        let to: Vec<HostAddr> = second.iter().map(|x| x.to).collect();
        assert_eq!(to, vec![b, d, e], "6th per-receiver draw (c) is the drop");
        assert_eq!(n.stats().drops_loss, 2);
        assert_eq!(n.stats().deliveries, 6);
    }

    #[test]
    fn partition_blocks_directionally_and_heals() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.partition(&[a], &[b], false);
        assert!(n.is_blocked(a, b));
        assert!(!n.is_blocked(b, a), "asymmetric partition");
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert!(out.is_empty());
        assert_eq!(n.stats().drops_partition, 1);
        // The reverse direction still works.
        let out = n.transmit(SimTime::ZERO, Frame::unicast(b, a, 32, 0));
        assert_eq!(out.len(), 1);
        n.heal(&[a], &[b]);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn symmetric_partition_blocks_both_ways() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        n.partition(&[a], &[b, c], true);
        assert!(n.is_blocked(a, c) && n.is_blocked(c, a));
        // A broadcast from `a` reaches nobody; b → c is unaffected.
        assert!(n
            .transmit(SimTime::ZERO, Frame::broadcast(a, 32, 0))
            .is_empty());
        assert_eq!(
            n.transmit(SimTime::ZERO, Frame::unicast(b, c, 32, 0)).len(),
            1
        );
    }

    #[test]
    fn latency_spike_applies_until_expiry() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let extra = SimDuration::from_millis(30);
        n.set_link_latency(a, b, extra, SimTime::from_micros(1_000));
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 0));
        assert_eq!(out[0].at, SimTime::from_micros(899 + 30_000));
        // After the window closes the link is back to normal.
        let t = SimTime::from_micros(5_000);
        let out = n.transmit(t, Frame::unicast(a, b, 1024, 0));
        assert_eq!(out[0].at, t + SimDuration::from_micros(899));
    }

    #[test]
    fn corruption_window_mangles_checksums() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.set_corruption(1.0, SimTime::from_micros(100));
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert_eq!(out.len(), 1, "corrupt frames are still delivered");
        assert!(!out[0].frame.checksum_valid());
        assert_eq!(n.stats().corrupted, 1);
        // Outside the window frames arrive intact.
        let out = n.transmit(SimTime::from_micros(200), Frame::unicast(a, b, 32, 0));
        assert!(out[0].frame.checksum_valid());
    }

    #[test]
    #[should_panic(expected = "unknown station")]
    fn unknown_destination_panics() {
        let mut n = net();
        let a = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, HostAddr(9), 32, 0));
    }

    #[test]
    fn per_station_counters() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, b, 100, 1));
        n.transmit(SimTime::ZERO, Frame::broadcast(b, 50, 2));
        assert_eq!(n.station_stats(a), (1, 1, 100, 50));
        assert_eq!(n.station_stats(b), (1, 1, 50, 100));
        assert_eq!(n.station_stats(c), (0, 1, 0, 50));
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        for i in 0..5 {
            n.transmit(SimTime::ZERO, Frame::unicast(a, b, 100, i));
        }
        assert_eq!(n.stats().frames_sent, 5);
        assert_eq!(n.stats().deliveries, 5);
        assert_eq!(n.stats().payload_bytes, 500);
    }
}
