//! The shared 10 Mbit Ethernet segment.
//!
//! A single segment connects every workstation and server (§4.1). The model
//! captures what the protocols above care about:
//!
//! * **Serialization**: the channel is a single resource; frames queue
//!   behind one another and a frame's wire time follows
//!   [`vsim::calib::frame_wire_time`]. (CSMA/CD collisions are folded into
//!   this FIFO arbitration — at the paper's utilization levels collision
//!   loss is negligible next to receiver-side drops.)
//! * **Loss**: per-receiver, pluggable ([`LossModel`]), so a broadcast can
//!   reach some stations and miss others.
//! * **Broadcast & multicast**: binding-cache queries broadcast; process
//!   groups (e.g. the program-manager group) multicast.
//! * **Host failure**: a down station neither sends nor receives, for the
//!   old-host-reboot and target-failure experiments.

use std::collections::{BTreeSet, HashMap};

use vsim::calib::{frame_wire_time, WIRE_LATENCY};
use vsim::{
    CounterId, DetRng, HistogramId, Metrics, SimDuration, SimTime, Subsystem, Trace, TraceEvent,
    TraceLevel,
};

use crate::addr::{HostAddr, McastGroup, NetDest};
use crate::frame::Frame;
use crate::loss::{LossModel, LossState};

/// A frame arriving at a station at a given instant.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Receiving station.
    pub to: HostAddr,
    /// Arrival instant (end of serialization plus latency).
    pub at: SimTime,
    /// The frame as sent.
    pub frame: Frame<P>,
}

/// Wire-level counters.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    /// Frames offered to the channel by live senders.
    pub frames_sent: u64,
    /// Successful per-receiver deliveries.
    pub deliveries: u64,
    /// Per-receiver drops due to the loss model.
    pub drops_loss: u64,
    /// Per-receiver drops because the receiver was down.
    pub drops_down: u64,
    /// Frames discarded because the *sender* was down.
    pub sender_down: u64,
    /// Total payload bytes offered.
    pub payload_bytes: u64,
    /// Cumulative channel busy time.
    pub busy: SimDuration,
}

impl WireStats {
    /// Channel utilization over `[SimTime::ZERO, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / now.since(SimTime::ZERO).as_secs_f64()
        }
    }
}

struct Station {
    up: bool,
    frames_tx: u64,
    frames_rx: u64,
    bytes_tx: u64,
    bytes_rx: u64,
}

/// The shared segment.
///
/// # Examples
///
/// ```
/// use vnet::{Ethernet, Frame, LossModel};
/// use vsim::{DetRng, SimTime};
///
/// let mut net: Ethernet<&str> = Ethernet::new(LossModel::None, DetRng::seed(1));
/// let a = net.attach();
/// let b = net.attach();
/// let out = net.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, "hello"));
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].to, b);
/// ```
pub struct Ethernet<P> {
    stations: Vec<Station>,
    groups: HashMap<McastGroup, BTreeSet<HostAddr>>,
    busy_until: SimTime,
    loss: LossState,
    rng: DetRng,
    stats: WireStats,
    metrics: Metrics,
    trace: Trace,
    ctr_sent: CounterId,
    ctr_delivered: CounterId,
    ctr_drop_loss: CounterId,
    ctr_drop_down: CounterId,
    ctr_sender_down: CounterId,
    ctr_payload_bytes: CounterId,
    ctr_busy_us: CounterId,
    hist_frame_bytes: HistogramId,
    _payload: std::marker::PhantomData<P>,
}

impl<P: Clone> Ethernet<P> {
    /// Creates an empty segment with the given loss model.
    pub fn new(loss: LossModel, rng: DetRng) -> Self {
        let mut metrics = Metrics::new();
        let ctr_sent = metrics.counter(Subsystem::Net, "frames_sent");
        let ctr_delivered = metrics.counter(Subsystem::Net, "frames_delivered");
        let ctr_drop_loss = metrics.counter(Subsystem::Net, "frames_dropped_loss");
        let ctr_drop_down = metrics.counter(Subsystem::Net, "frames_dropped_down");
        let ctr_sender_down = metrics.counter(Subsystem::Net, "frames_sender_down");
        let ctr_payload_bytes = metrics.counter(Subsystem::Net, "payload_bytes");
        let ctr_busy_us = metrics.counter(Subsystem::Net, "wire_busy_us");
        let hist_frame_bytes = metrics.histogram(Subsystem::Net, "frame_payload_bytes", "bytes");
        Ethernet {
            stations: Vec::new(),
            groups: HashMap::new(),
            busy_until: SimTime::ZERO,
            loss: LossState::new(loss),
            rng,
            stats: WireStats::default(),
            metrics,
            trace: Trace::quiet(),
            ctr_sent,
            ctr_delivered,
            ctr_drop_loss,
            ctr_drop_down,
            ctr_sender_down,
            ctr_payload_bytes,
            ctr_busy_us,
            hist_frame_bytes,
            _payload: std::marker::PhantomData,
        }
    }

    /// Attaches a new station and returns its address.
    pub fn attach(&mut self) -> HostAddr {
        let addr =
            HostAddr(u16::try_from(self.stations.len()).expect("too many stations on one segment"));
        self.stations.push(Station {
            up: true,
            frames_tx: 0,
            frames_rx: 0,
            bytes_tx: 0,
            bytes_rx: 0,
        });
        addr
    }

    /// Number of attached stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// All attached station addresses.
    pub fn stations(&self) -> impl Iterator<Item = HostAddr> + '_ {
        (0..self.stations.len()).map(|i| HostAddr(i as u16))
    }

    /// Marks a station up or down (crash / reboot simulation).
    ///
    /// # Panics
    ///
    /// Panics if the address was never attached.
    pub fn set_up(&mut self, host: HostAddr, up: bool) {
        self.station_mut(host).up = up;
    }

    /// True if the station is up.
    pub fn is_up(&self, host: HostAddr) -> bool {
        self.station(host).up
    }

    /// Adds a station to a multicast group (idempotent).
    pub fn join(&mut self, group: McastGroup, host: HostAddr) {
        let _ = self.station(host); // Validate.
        self.groups.entry(group).or_default().insert(host);
    }

    /// Removes a station from a multicast group (idempotent).
    pub fn leave(&mut self, group: McastGroup, host: HostAddr) {
        if let Some(members) = self.groups.get_mut(&group) {
            members.remove(&host);
        }
    }

    /// Current members of a group, in address order.
    pub fn members(&self, group: McastGroup) -> Vec<HostAddr> {
        self.groups
            .get(&group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Offers a frame to the channel at time `now`, returning the resulting
    /// deliveries (possibly none).
    ///
    /// The channel serializes frames: if it is busy, transmission starts
    /// when it frees. All receivers hear the frame at the same instant;
    /// loss is decided independently per receiver. The sender never
    /// receives its own frame.
    pub fn transmit(&mut self, now: SimTime, frame: Frame<P>) -> Vec<Delivery<P>> {
        if !self.station(frame.src).up {
            self.stats.sender_down += 1;
            self.metrics.inc(self.ctr_sender_down);
            return Vec::new();
        }
        self.stats.frames_sent += 1;
        self.stats.payload_bytes += frame.payload_bytes;
        self.metrics.inc(self.ctr_sent);
        self.metrics
            .add(self.ctr_payload_bytes, frame.payload_bytes);
        self.metrics
            .observe(self.hist_frame_bytes, frame.payload_bytes as f64);
        {
            let st = self.station_mut(frame.src);
            st.frames_tx += 1;
            st.bytes_tx += frame.payload_bytes;
        }

        let start = now.max(self.busy_until);
        let wire = frame_wire_time(frame.payload_bytes);
        self.busy_until = start + wire;
        self.stats.busy += wire;
        self.metrics.add(self.ctr_busy_us, wire.as_micros());
        let arrival = start + wire + WIRE_LATENCY;

        let receivers: Vec<HostAddr> = match frame.dest {
            NetDest::Unicast(h) => {
                let _ = self.station(h); // Validate.
                vec![h]
            }
            NetDest::Broadcast => self.stations().filter(|&h| h != frame.src).collect(),
            NetDest::Multicast(g) => self
                .members(g)
                .into_iter()
                .filter(|&h| h != frame.src)
                .collect(),
        };

        let mut out = Vec::with_capacity(receivers.len());
        for to in receivers {
            if !self.station(to).up {
                self.stats.drops_down += 1;
                self.metrics.inc(self.ctr_drop_down);
                continue;
            }
            if self.loss.drops(&mut self.rng) {
                self.stats.drops_loss += 1;
                self.metrics.inc(self.ctr_drop_loss);
                self.trace.emit(
                    TraceLevel::Detail,
                    now,
                    Subsystem::Net,
                    TraceEvent::FrameDropped {
                        from: frame.src.0,
                        to: to.0,
                        bytes: frame.payload_bytes,
                    },
                );
                continue;
            }
            self.stats.deliveries += 1;
            self.metrics.inc(self.ctr_delivered);
            {
                let st = self.station_mut(to);
                st.frames_rx += 1;
                st.bytes_rx += frame.payload_bytes;
            }
            out.push(Delivery {
                to,
                at: arrival,
                frame: frame.clone(),
            });
        }
        out
    }

    /// Wire counters.
    pub fn stats(&self) -> &WireStats {
        &self.stats
    }

    /// The segment's metrics registry (counters mirror [`WireStats`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The segment's trace (per-receiver drop events at detail level).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace handle, e.g. to raise the retained level or drain
    /// records into a cluster-wide trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Per-station counters: `(frames sent, frames received, payload
    /// bytes sent, payload bytes received)`.
    pub fn station_stats(&self, host: HostAddr) -> (u64, u64, u64, u64) {
        let st = self.station(host);
        (st.frames_tx, st.frames_rx, st.bytes_tx, st.bytes_rx)
    }

    /// When the channel next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    fn station(&self, host: HostAddr) -> &Station {
        self.stations
            .get(host.0 as usize)
            .expect("unknown station address")
    }

    fn station_mut(&mut self, host: HostAddr) -> &mut Station {
        self.stations
            .get_mut(host.0 as usize)
            .expect("unknown station address")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Ethernet<u32> {
        Ethernet::new(LossModel::None, DetRng::seed(42))
    }

    #[test]
    fn attach_hands_out_dense_addresses() {
        let mut n = net();
        assert_eq!(n.attach(), HostAddr(0));
        assert_eq!(n.attach(), HostAddr(1));
        assert_eq!(n.station_count(), 2);
    }

    #[test]
    fn unicast_arrives_after_wire_time_and_latency() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 7));
        assert_eq!(out.len(), 1);
        // (1024+38)*8/10 = 849 us wire + 50 us latency.
        assert_eq!(out[0].at, SimTime::from_micros(899));
        assert_eq!(out[0].frame.payload, 7);
    }

    #[test]
    fn channel_serializes_back_to_back_frames() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let first = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 1));
        let second = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 2));
        assert_eq!(first[0].at, SimTime::from_micros(899));
        // The second frame waits for the first to clear the wire.
        assert_eq!(second[0].at, SimTime::from_micros(849 + 899));
        assert!((n.stats().utilization(SimTime::from_micros(1698)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, b, 1024, 1));
        n.transmit(SimTime::from_micros(10_000), Frame::unicast(a, b, 1024, 2));
        let util = n.stats().utilization(SimTime::from_micros(20_000));
        assert!((util - 2.0 * 849.0 / 20_000.0).abs() < 1e-6, "util {util}");
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut n = net();
        let a = n.attach();
        let _b = n.attach();
        let _c = n.attach();
        let out = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 9));
        let to: Vec<HostAddr> = out.iter().map(|d| d.to).collect();
        assert_eq!(to, vec![HostAddr(1), HostAddr(2)]);
    }

    #[test]
    fn multicast_respects_membership() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        let g = McastGroup(1);
        n.join(g, b);
        n.join(g, c);
        n.join(g, c); // Idempotent.
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 2);
        n.leave(g, b);
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, c);
    }

    #[test]
    fn multicast_excludes_sender_even_if_member() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let g = McastGroup(2);
        n.join(g, a);
        n.join(g, b);
        let out = n.transmit(SimTime::ZERO, Frame::multicast(a, g, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, b);
    }

    #[test]
    fn down_receiver_hears_nothing() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.set_up(b, false);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert!(out.is_empty());
        assert_eq!(n.stats().drops_down, 1);
        n.set_up(b, true);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn down_sender_transmits_nothing() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        n.set_up(a, false);
        let out = n.transmit(SimTime::ZERO, Frame::unicast(a, b, 32, 0));
        assert!(out.is_empty());
        assert_eq!(n.stats().sender_down, 1);
        assert_eq!(n.stats().frames_sent, 0);
    }

    #[test]
    fn loss_model_drops_per_receiver() {
        let mut n: Ethernet<u32> = Ethernet::new(LossModel::EveryNth(2), DetRng::seed(1));
        let a = n.attach();
        let _b = n.attach();
        let _c = n.attach();
        // Broadcast to two receivers: the 2nd receiver check drops.
        let out = n.transmit(SimTime::ZERO, Frame::broadcast(a, 32, 0));
        assert_eq!(out.len(), 1);
        assert_eq!(n.stats().drops_loss, 1);
    }

    #[test]
    #[should_panic(expected = "unknown station")]
    fn unknown_destination_panics() {
        let mut n = net();
        let a = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, HostAddr(9), 32, 0));
    }

    #[test]
    fn per_station_counters() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        let c = n.attach();
        n.transmit(SimTime::ZERO, Frame::unicast(a, b, 100, 1));
        n.transmit(SimTime::ZERO, Frame::broadcast(b, 50, 2));
        assert_eq!(n.station_stats(a), (1, 1, 100, 50));
        assert_eq!(n.station_stats(b), (1, 1, 50, 100));
        assert_eq!(n.station_stats(c), (0, 1, 0, 50));
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        let a = n.attach();
        let b = n.attach();
        for i in 0..5 {
            n.transmit(SimTime::ZERO, Frame::unicast(a, b, 100, i));
        }
        assert_eq!(n.stats().frames_sent, 5);
        assert_eq!(n.stats().deliveries, 5);
        assert_eq!(n.stats().payload_bytes, 500);
    }
}
