//! Property tests on the Ethernet model: delivery sets, timing
//! monotonicity, and loss accounting must hold for arbitrary traffic.

use proptest::prelude::*;
use vnet::{Ethernet, Frame, HostAddr, LossModel, McastGroup, NetDest};
use vsim::{DetRng, SimTime};

proptest! {
    /// Conservation: offered = delivered + dropped-by-loss +
    /// dropped-by-down, per receiver.
    #[test]
    fn delivery_accounting_balances(
        n_hosts in 2usize..12,
        sends in proptest::collection::vec((0usize..12, 0usize..12, 1u64..2000), 1..60),
        loss_nth in 0u64..7,
    ) {
        let mut net: Ethernet<u32> =
            Ethernet::new(LossModel::EveryNth(loss_nth), DetRng::seed(1));
        let hosts: Vec<HostAddr> = (0..n_hosts).map(|_| net.attach()).collect();
        let mut expected_receivers = 0u64;
        for (i, (from, to, bytes)) in sends.iter().enumerate() {
            let src = hosts[from % n_hosts];
            let dst = hosts[to % n_hosts];
            if src == dst {
                continue;
            }
            let f = Frame::unicast(src, dst, *bytes, i as u32);
            net.transmit(SimTime::ZERO, f);
            expected_receivers += 1;
        }
        let s = net.stats();
        prop_assert_eq!(
            s.deliveries + s.drops_loss + s.drops_down,
            expected_receivers
        );
        prop_assert_eq!(s.sender_down, 0);
    }

    /// Broadcast reaches exactly the other live stations.
    #[test]
    fn broadcast_reaches_all_live_peers(
        n_hosts in 2usize..16,
        down_mask in proptest::collection::vec(any::<bool>(), 0..16),
    ) {
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(2));
        let hosts: Vec<HostAddr> = (0..n_hosts).map(|_| net.attach()).collect();
        let mut live_others = 0;
        for (i, &h) in hosts.iter().enumerate().skip(1) {
            let down = *down_mask.get(i).unwrap_or(&false);
            net.set_up(h, !down);
            if !down {
                live_others += 1;
            }
        }
        let out = net.transmit(SimTime::ZERO, Frame::broadcast(hosts[0], 64, 0));
        prop_assert_eq!(out.len(), live_others);
        // Everyone hears it at the same instant.
        if let Some(first) = out.first() {
            prop_assert!(out.iter().all(|d| d.at == first.at));
        }
    }

    /// Channel serialization: arrival times over back-to-back frames are
    /// strictly increasing, and total busy time equals the sum of frame
    /// wire times.
    #[test]
    fn back_to_back_frames_serialize(sizes in proptest::collection::vec(1u64..4000, 1..40)) {
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(3));
        let a = net.attach();
        let b = net.attach();
        let mut last = None;
        let mut wire_sum = 0u64;
        for (i, &bytes) in sizes.iter().enumerate() {
            let out = net.transmit(SimTime::ZERO, Frame::unicast(a, b, bytes, i as u32));
            let at = out[0].at;
            if let Some(prev) = last {
                prop_assert!(at > prev, "arrivals must be ordered");
            }
            last = Some(at);
            wire_sum += vsim::calib::frame_wire_time(bytes).as_micros();
        }
        prop_assert_eq!(net.stats().busy.as_micros(), wire_sum);
        prop_assert_eq!(net.busy_until().as_micros(), wire_sum);
    }

    /// Multicast membership is exact: joins minus leaves determine the
    /// receiver set.
    #[test]
    fn multicast_membership_is_exact(
        ops in proptest::collection::vec((0usize..8, any::<bool>()), 0..40),
    ) {
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(4));
        let hosts: Vec<HostAddr> = (0..8).map(|_| net.attach()).collect();
        let g = McastGroup(3);
        let mut model = std::collections::BTreeSet::new();
        for (h, join) in ops {
            if join {
                net.join(g, hosts[h]);
                model.insert(hosts[h]);
            } else {
                net.leave(g, hosts[h]);
                model.remove(&hosts[h]);
            }
        }
        let sender = hosts[0];
        let out = net.transmit(SimTime::ZERO, Frame::multicast(sender, g, 64, 0));
        let mut got: Vec<HostAddr> = out.iter().map(|d| d.to).collect();
        got.sort();
        let want: Vec<HostAddr> = model.iter().copied().filter(|&h| h != sender).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(net.members(g), model.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn frame_dest_display_is_stable() {
    // Non-property smoke: destinations render for logs.
    assert_eq!(NetDest::Unicast(HostAddr(4)).to_string(), "host4");
    assert_eq!(NetDest::Multicast(McastGroup(1)).to_string(), "mcast1");
}
