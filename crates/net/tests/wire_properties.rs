//! Property tests on the Ethernet model: delivery sets, timing
//! monotonicity, and loss accounting must hold for arbitrary traffic.
//!
//! Inputs are generated from a seeded [`DetRng`], so every case is
//! deterministic and failures reproduce exactly.

use vnet::{Ethernet, Frame, HostAddr, LossModel, McastGroup, NetDest};
use vsim::{DetRng, SimTime};

/// Conservation: offered = delivered + dropped-by-loss +
/// dropped-by-down, per receiver.
#[test]
fn delivery_accounting_balances() {
    let mut rng = DetRng::seed(0xA1);
    for _case in 0..60 {
        let n_hosts = rng.index(10) + 2;
        let loss_nth = rng.range_u64(0, 7);
        let n_sends = rng.index(59) + 1;
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::EveryNth(loss_nth), DetRng::seed(1));
        let hosts: Vec<HostAddr> = (0..n_hosts).map(|_| net.attach()).collect();
        let mut expected_receivers = 0u64;
        for i in 0..n_sends {
            let src = hosts[rng.index(n_hosts)];
            let dst = hosts[rng.index(n_hosts)];
            let bytes = rng.range_u64(1, 2000);
            if src == dst {
                continue;
            }
            let f = Frame::unicast(src, dst, bytes, i as u32);
            net.transmit(SimTime::ZERO, f);
            expected_receivers += 1;
        }
        let s = net.stats();
        assert_eq!(
            s.deliveries + s.drops_loss + s.drops_down,
            expected_receivers
        );
        assert_eq!(s.sender_down, 0);
    }
}

/// Broadcast reaches exactly the other live stations.
#[test]
fn broadcast_reaches_all_live_peers() {
    let mut rng = DetRng::seed(0xA2);
    for _case in 0..60 {
        let n_hosts = rng.index(14) + 2;
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(2));
        let hosts: Vec<HostAddr> = (0..n_hosts).map(|_| net.attach()).collect();
        let mut live_others = 0;
        for &h in hosts.iter().skip(1) {
            let down = rng.chance(0.5);
            net.set_up(h, !down);
            if !down {
                live_others += 1;
            }
        }
        let out = net.transmit(SimTime::ZERO, Frame::broadcast(hosts[0], 64, 0));
        assert_eq!(out.len(), live_others);
        // Everyone hears it at the same instant.
        if let Some(first) = out.first() {
            assert!(out.iter().all(|d| d.at == first.at));
        }
    }
}

/// Channel serialization: arrival times over back-to-back frames are
/// strictly increasing, and total busy time equals the sum of frame
/// wire times.
#[test]
fn back_to_back_frames_serialize() {
    let mut rng = DetRng::seed(0xA3);
    for _case in 0..40 {
        let n_frames = rng.index(39) + 1;
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(3));
        let a = net.attach();
        let b = net.attach();
        let mut last = None;
        let mut wire_sum = 0u64;
        for i in 0..n_frames {
            let bytes = rng.range_u64(1, 4000);
            let out = net.transmit(SimTime::ZERO, Frame::unicast(a, b, bytes, i as u32));
            let at = out[0].at;
            if let Some(prev) = last {
                assert!(at > prev, "arrivals must be ordered");
            }
            last = Some(at);
            wire_sum += vsim::calib::frame_wire_time(bytes).as_micros();
        }
        assert_eq!(net.stats().busy.as_micros(), wire_sum);
        assert_eq!(net.busy_until().as_micros(), wire_sum);
    }
}

/// Multicast membership is exact: joins minus leaves determine the
/// receiver set.
#[test]
fn multicast_membership_is_exact() {
    let mut rng = DetRng::seed(0xA4);
    for _case in 0..60 {
        let n_ops = rng.index(40);
        let mut net: Ethernet<u32> = Ethernet::new(LossModel::None, DetRng::seed(4));
        let hosts: Vec<HostAddr> = (0..8).map(|_| net.attach()).collect();
        let g = McastGroup(3);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..n_ops {
            let h = rng.index(8);
            if rng.chance(0.5) {
                net.join(g, hosts[h]);
                model.insert(hosts[h]);
            } else {
                net.leave(g, hosts[h]);
                model.remove(&hosts[h]);
            }
        }
        let sender = hosts[0];
        let out = net.transmit(SimTime::ZERO, Frame::multicast(sender, g, 64, 0));
        let mut got: Vec<HostAddr> = out.iter().map(|d| d.to).collect();
        got.sort();
        let want: Vec<HostAddr> = model.iter().copied().filter(|&h| h != sender).collect();
        assert_eq!(got, want);
        assert_eq!(net.members(g), model.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn frame_dest_display_is_stable() {
    // Non-property smoke: destinations render for logs.
    assert_eq!(NetDest::Unicast(HostAddr(4)).to_string(), "host4");
    assert_eq!(NetDest::Multicast(McastGroup(1)).to_string(), "mcast1");
}
