//! A dense bitset for page dirty bits.
//!
//! The SUN MMU gives V per-page dirty bits (§3.1.2 footnote: "Modified
//! pages are detected using dirty bits"); this is the model of that
//! hardware structure.

/// A fixed-capacity dense bitset.
///
/// # Examples
///
/// ```
/// use vmem::BitSet;
///
/// let mut b = BitSet::new(100);
/// b.set(3);
/// b.set(64);
/// assert_eq!(b.count(), 2);
/// assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates a bitset holding `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`. Returns `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize) -> bool {
        self.check(i);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was_clear = self.words[w] & m == 0;
        self.words[w] |= m;
        was_clear
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn clear(&mut self, i: usize) {
        self.check(i);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> bool {
        self.check(i);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Takes the set bits: returns them and clears the set.
    pub fn take(&mut self) -> Vec<usize> {
        let out: Vec<usize> = self.iter().collect();
        self.clear_all();
        out
    }

    fn check(&self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(b.set(0));
        assert!(b.set(129));
        assert!(!b.set(129), "second set reports already-set");
        assert!(b.get(0) && b.get(129) && !b.get(64));
        b.clear(0);
        assert!(!b.get(0));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn iter_ascending() {
        let mut b = BitSet::new(200);
        for i in [5, 63, 64, 65, 199] {
            b.set(i);
        }
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![5, 63, 64, 65, 199]);
    }

    #[test]
    fn take_clears() {
        let mut b = BitSet::new(10);
        b.set(2);
        b.set(7);
        assert_eq!(b.take(), vec![2, 7]);
        assert_eq!(b.count(), 0);
        assert!(b.take().is_empty());
    }

    #[test]
    fn clear_all() {
        let mut b = BitSet::new(70);
        for i in 0..70 {
            b.set(i);
        }
        assert_eq!(b.count(), 70);
        b.clear_all();
        assert_eq!(b.count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitSet::new(8).get(8);
    }

    #[test]
    fn zero_capacity() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
    }
}
