//! Address spaces.
//!
//! V groups processes into *teams* sharing an address space; a logical host
//! holds one or more address spaces (§2.1). For migration, what matters
//! about a space is its size, which pages are writable, and which writable
//! pages are dirty — the pre-copy algorithm (§3.1.2) repeatedly copies and
//! re-scans dirty pages. The model tracks exactly that, at the paper's 2 KB
//! hardware page granularity.

use vsim::calib::PAGE_BYTES;

use crate::bitset::BitSet;

/// Identifier of an address space within a logical host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u32);

/// The role of a segment in the address-space layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Program text; read-only, never dirtied.
    Code,
    /// Initialized data that the program happens never to write
    /// (the ".25 megabytes of initialized (unmodified) data" of §3.1.2).
    InitData,
    /// Writable data: heap, BSS, "active data".
    Heap,
    /// Stack.
    Stack,
}

impl SegmentKind {
    /// True if pages of this kind can be dirtied.
    pub fn writable(self) -> bool {
        matches!(self, SegmentKind::Heap | SegmentKind::Stack)
    }
}

/// A contiguous page range of one kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Role of the range.
    pub kind: SegmentKind,
    /// First page index.
    pub first_page: u32,
    /// Number of pages.
    pub pages: u32,
}

impl Segment {
    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages as u64 * PAGE_BYTES
    }

    /// One-past-last page index.
    pub fn end_page(&self) -> u32 {
        self.first_page + self.pages
    }
}

/// Declarative layout used to build an [`AddressSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceLayout {
    /// Code bytes (rounded up to whole pages).
    pub code_bytes: u64,
    /// Initialized-but-unwritten data bytes.
    pub init_data_bytes: u64,
    /// Writable heap/active-data bytes.
    pub heap_bytes: u64,
    /// Stack bytes.
    pub stack_bytes: u64,
}

impl SpaceLayout {
    /// The worked example of §3.1.2: 1 MB code, 0.25 MB initialized data,
    /// 0.75 MB active data.
    pub fn section_3_1_2_example() -> Self {
        const MB: u64 = 1024 * 1024;
        SpaceLayout {
            code_bytes: MB,
            init_data_bytes: MB / 4,
            heap_bytes: 3 * MB / 4 - 16 * PAGE_BYTES,
            stack_bytes: 16 * PAGE_BYTES,
        }
    }

    /// A small layout for tests: one page of everything.
    pub fn tiny() -> Self {
        SpaceLayout {
            code_bytes: PAGE_BYTES,
            init_data_bytes: PAGE_BYTES,
            heap_bytes: 4 * PAGE_BYTES,
            stack_bytes: PAGE_BYTES,
        }
    }

    /// Total bytes after page rounding.
    pub fn total_bytes(&self) -> u64 {
        [
            self.code_bytes,
            self.init_data_bytes,
            self.heap_bytes,
            self.stack_bytes,
        ]
        .iter()
        .map(|b| b.div_ceil(PAGE_BYTES) * PAGE_BYTES)
        .sum()
    }
}

/// An address space: segments plus per-page dirty bits.
///
/// # Examples
///
/// ```
/// use vmem::{AddressSpace, SpaceId, SpaceLayout};
///
/// let mut space = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
/// let heap = space.writable_pages()[0];
/// space.write_page(heap);
/// assert_eq!(space.dirty_pages(), 1);
/// assert_eq!(space.take_dirty(), vec![heap]);
/// assert_eq!(space.dirty_pages(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    id: SpaceId,
    segments: Vec<Segment>,
    dirty: BitSet,
    ever_written: BitSet,
    total_pages: u32,
    lifetime_writes: u64,
}

impl AddressSpace {
    /// Builds a space from a layout. Segment order is code, initialized
    /// data, heap, stack; zero-sized segments are omitted.
    pub fn new(id: SpaceId, layout: SpaceLayout) -> Self {
        let mut segments = Vec::new();
        let mut next_page: u32 = 0;
        let mut push = |kind: SegmentKind, bytes: u64, next_page: &mut u32| {
            let pages = u32::try_from(bytes.div_ceil(PAGE_BYTES)).expect("segment too large");
            if pages > 0 {
                segments.push(Segment {
                    kind,
                    first_page: *next_page,
                    pages,
                });
                *next_page += pages;
            }
        };
        push(SegmentKind::Code, layout.code_bytes, &mut next_page);
        push(
            SegmentKind::InitData,
            layout.init_data_bytes,
            &mut next_page,
        );
        push(SegmentKind::Heap, layout.heap_bytes, &mut next_page);
        push(SegmentKind::Stack, layout.stack_bytes, &mut next_page);
        AddressSpace {
            id,
            segments,
            dirty: BitSet::new(next_page as usize),
            ever_written: BitSet::new(next_page as usize),
            total_pages: next_page,
            lifetime_writes: 0,
        }
    }

    /// The space's identifier.
    pub fn id(&self) -> SpaceId {
        self.id
    }

    /// The segment table.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total size in pages.
    pub fn total_pages(&self) -> u32 {
        self.total_pages
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages as u64 * PAGE_BYTES
    }

    /// The segment containing `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn segment_of(&self, page: u32) -> &Segment {
        self.segments
            .iter()
            .find(|s| page >= s.first_page && page < s.end_page())
            .expect("page out of range")
    }

    /// Indices of all writable pages, ascending.
    pub fn writable_pages(&self) -> Vec<u32> {
        self.segments
            .iter()
            .filter(|s| s.kind.writable())
            .flat_map(|s| s.first_page..s.end_page())
            .collect()
    }

    /// Number of writable pages.
    pub fn writable_page_count(&self) -> u32 {
        self.segments
            .iter()
            .filter(|s| s.kind.writable())
            .map(|s| s.pages)
            .sum()
    }

    /// Records a store to `page`, setting its dirty bit.
    ///
    /// Returns `true` if the page was clean before (a *new* dirty page).
    ///
    /// # Panics
    ///
    /// Panics if the page is not writable — the MMU would fault.
    pub fn write_page(&mut self, page: u32) -> bool {
        assert!(
            self.segment_of(page).kind.writable(),
            "write to read-only page {page}"
        );
        self.lifetime_writes += 1;
        self.ever_written.set(page as usize);
        self.dirty.set(page as usize)
    }

    /// Number of dirty pages.
    pub fn dirty_pages(&self) -> u32 {
        self.dirty.count() as u32
    }

    /// Dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_pages() as u64 * PAGE_BYTES
    }

    /// True if `page` is dirty.
    pub fn is_dirty(&self, page: u32) -> bool {
        self.dirty.get(page as usize)
    }

    /// Returns the dirty page list and clears all dirty bits — the
    /// "copy modified pages and reset dirty bits" step of pre-copy.
    pub fn take_dirty(&mut self) -> Vec<u32> {
        self.dirty.take().into_iter().map(|p| p as u32).collect()
    }

    /// Clears all dirty bits without reporting them (initial full copy).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear_all();
    }

    /// Total stores recorded over the space's lifetime.
    pub fn lifetime_writes(&self) -> u64 {
        self.lifetime_writes
    }

    /// Pages written at least once since the space was created — the set
    /// the §3.2 virtual-memory migration variant must flush to the file
    /// server (clean pages reload from the program image instead).
    pub fn ever_written_pages(&self) -> Vec<u32> {
        self.ever_written.iter().map(|p| p as u32).collect()
    }

    /// Count of pages ever written.
    pub fn ever_written_count(&self) -> u32 {
        self.ever_written.count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_builds_expected_segments() {
        let s = AddressSpace::new(SpaceId(1), SpaceLayout::section_3_1_2_example());
        let kinds: Vec<SegmentKind> = s.segments().iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Code,
                SegmentKind::InitData,
                SegmentKind::Heap,
                SegmentKind::Stack
            ]
        );
        // 2 MB total at 2 KB pages = 1024 pages.
        assert_eq!(s.total_pages(), 1024);
        assert_eq!(s.total_bytes(), 2 * 1024 * 1024);
        // 0.75 MB of it is writable.
        assert_eq!(s.writable_page_count() as u64 * PAGE_BYTES, 768 * 1024);
    }

    #[test]
    fn zero_segments_are_omitted() {
        let s = AddressSpace::new(
            SpaceId(0),
            SpaceLayout {
                code_bytes: PAGE_BYTES,
                init_data_bytes: 0,
                heap_bytes: PAGE_BYTES,
                stack_bytes: 0,
            },
        );
        assert_eq!(s.segments().len(), 2);
    }

    #[test]
    fn sub_page_sizes_round_up() {
        let s = AddressSpace::new(
            SpaceId(0),
            SpaceLayout {
                code_bytes: 1,
                init_data_bytes: 0,
                heap_bytes: PAGE_BYTES + 1,
                stack_bytes: 0,
            },
        );
        assert_eq!(s.total_pages(), 3);
    }

    #[test]
    fn writes_set_dirty_once() {
        let mut s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        let pages = s.writable_pages();
        assert!(s.write_page(pages[0]));
        assert!(!s.write_page(pages[0]), "re-dirtying is not new");
        assert!(s.write_page(pages[1]));
        assert_eq!(s.dirty_pages(), 2);
        assert_eq!(s.dirty_bytes(), 2 * PAGE_BYTES);
        assert_eq!(s.lifetime_writes(), 3);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn write_to_code_faults() {
        let mut s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        s.write_page(0); // Page 0 is code.
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn write_to_init_data_faults() {
        let mut s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        s.write_page(1); // Page 1 is InitData.
    }

    #[test]
    fn take_dirty_returns_and_clears() {
        let mut s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        let pages = s.writable_pages();
        s.write_page(pages[2]);
        s.write_page(pages[0]);
        assert_eq!(s.take_dirty(), vec![pages[0], pages[2]]);
        assert_eq!(s.dirty_pages(), 0);
        assert!(s.take_dirty().is_empty());
    }

    #[test]
    fn segment_of_finds_owner() {
        let s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        assert_eq!(s.segment_of(0).kind, SegmentKind::Code);
        assert_eq!(s.segment_of(2).kind, SegmentKind::Heap);
        let last = s.total_pages() - 1;
        assert_eq!(s.segment_of(last).kind, SegmentKind::Stack);
    }

    #[test]
    fn ever_written_survives_dirty_clear() {
        let mut s = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        let pages = s.writable_pages();
        s.write_page(pages[0]);
        s.write_page(pages[1]);
        s.clear_dirty();
        assert_eq!(s.dirty_pages(), 0);
        assert_eq!(s.ever_written_count(), 2);
        assert_eq!(s.ever_written_pages(), vec![pages[0], pages[1]]);
    }

    #[test]
    fn layout_total_matches_space_total() {
        for layout in [SpaceLayout::tiny(), SpaceLayout::section_3_1_2_example()] {
            let s = AddressSpace::new(SpaceId(0), layout);
            assert_eq!(s.total_bytes(), layout.total_bytes());
        }
    }
}
