//! `vmem` — memory model: address spaces, dirty pages, and the
//! writable-working-set workload model.
//!
//! Migration in the paper is dominated by copying address spaces and by the
//! rate at which programs re-dirty pages during pre-copy (§3.1.2, Table
//! 4-1). This crate models exactly that: page-granular address spaces with
//! MMU dirty bits ([`AddressSpace`]), and the hot-set + cold-sweep dirty
//! model fitted to the paper's measurements ([`WwsParams`],
//! [`WwsSampler`]).

mod bitset;
mod space;
mod wws;

pub use bitset::BitSet;
pub use space::{AddressSpace, Segment, SegmentKind, SpaceId, SpaceLayout};
pub use wws::{WwsParams, WwsSampler};
