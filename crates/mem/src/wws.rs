//! The writable-working-set (WWS) dirty-page model.
//!
//! Table 4-1 of the paper reports, for eight programs, the average number
//! of kilobytes dirtied over windows of 0.2, 1 and 3 seconds. The curves
//! are strongly concave: a *hot set* of pages is re-written continuously
//! (saturating quickly) while a slower *cold sweep* touches new pages
//! linearly. We model the expected unique KB dirtied in a window of `t`
//! seconds as
//!
//! ```text
//! dirty(t) = H · (1 − e^(−w·t / H)) + r · t
//! ```
//!
//! where `H` is the hot-set size (KB), `w` the hot write rate (KB/s of
//! stores landing uniformly in the hot set) and `r` the cold sweep rate
//! (KB/s of first-touch writes). [`WwsParams::fit`] recovers `(H, w, r)`
//! from the paper's three points per program; [`WwsSampler`] then issues
//! *concrete page writes* against an [`AddressSpace`] so that experiments
//! measure dirty pages from the page tables, not from the formula.

use vsim::calib::PAGE_BYTES;
use vsim::{DetRng, SimDuration};

use crate::space::AddressSpace;

/// Fitted parameters of the WWS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WwsParams {
    /// Hot-set size in KB.
    pub hot_kb: f64,
    /// Hot write rate in KB/s (stores, counting re-writes).
    pub hot_write_kb_per_sec: f64,
    /// Cold first-touch sweep rate in KB/s.
    pub cold_kb_per_sec: f64,
}

impl WwsParams {
    /// Expected unique KB dirtied in a window of `t` seconds.
    pub fn expected_dirty_kb(&self, t: f64) -> f64 {
        let hot = if self.hot_kb <= f64::EPSILON {
            0.0
        } else {
            self.hot_kb * (1.0 - (-self.hot_write_kb_per_sec * t / self.hot_kb).exp())
        };
        hot + self.cold_kb_per_sec * t
    }

    /// Fits `(H, w, r)` to observed `(t_secs, dirty_kb)` points by a
    /// coarse-to-fine grid search minimizing summed squared *relative*
    /// error (relative, so sub-page programs like `make` fit as well as
    /// TeX).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given or any observation is
    /// non-positive.
    pub fn fit(points: &[(f64, f64)]) -> WwsParams {
        assert!(points.len() >= 2, "need at least two points to fit");
        assert!(
            points.iter().all(|&(t, y)| t > 0.0 && y > 0.0),
            "points must be positive"
        );
        let y_max = points.iter().map(|&(_, y)| y).fold(0.0, f64::max);

        let loss_of = |h: f64, w: f64| -> (f64, f64) {
            // With (H, w) fixed the model is linear in r; solve the
            // least-squares r in closed form, clamped to be non-negative.
            let (mut num, mut den) = (0.0, 0.0);
            for &(t, y) in points {
                let g = if h <= f64::EPSILON {
                    0.0
                } else {
                    h * (1.0 - (-w * t / h).exp())
                };
                num += t * (y - g);
                den += t * t;
            }
            let r = (num / den).max(0.0);
            let p = WwsParams {
                hot_kb: h,
                hot_write_kb_per_sec: w,
                cold_kb_per_sec: r,
            };
            let loss: f64 = points
                .iter()
                .map(|&(t, y)| {
                    let e = (p.expected_dirty_kb(t) - y) / y;
                    e * e
                })
                .sum();
            (loss, r)
        };

        // Coarse log grids bracketing anything Table 4-1 could produce,
        // then three zoom rounds around the best cell.
        let mut best = (f64::INFINITY, 0.01, 0.01, 0.0);
        let mut h_range = (0.01f64, 4.0 * y_max + 1.0);
        let mut w_range = (0.01f64, 400.0 * y_max + 1.0);
        for round in 0..4 {
            let steps = if round == 0 { 48 } else { 24 };
            let (h_lo, h_hi) = h_range;
            let (w_lo, w_hi) = w_range;
            for i in 0..=steps {
                let h = h_lo * (h_hi / h_lo).powf(i as f64 / steps as f64);
                for j in 0..=steps {
                    let w = w_lo * (w_hi / w_lo).powf(j as f64 / steps as f64);
                    let (loss, r) = loss_of(h, w);
                    if loss < best.0 {
                        best = (loss, h, w, r);
                    }
                }
            }
            let zoom = 2.0f64.powi(-(round + 1));
            h_range = (
                (best.1 * (h_lo / h_hi).powf(zoom * 0.2)).max(1e-3),
                best.1 * (h_hi / h_lo).powf(zoom * 0.2),
            );
            w_range = (
                (best.2 * (w_lo / w_hi).powf(zoom * 0.2)).max(1e-3),
                best.2 * (w_hi / w_lo).powf(zoom * 0.2),
            );
        }
        WwsParams {
            hot_kb: best.1,
            hot_write_kb_per_sec: best.2,
            cold_kb_per_sec: best.3,
        }
    }

    /// Fits parameters under **page quantization**: the sampler dirties
    /// whole pages, so for programs whose rates are comparable to one page
    /// (the paper's `make` at 0.8 KB / 0.2 s) the continuous fit
    /// overshoots badly. This variant searches integer hot-set sizes `h`
    /// (pages) and a store rate, predicting
    /// `page_kb·h·(1 − e^(−λT/h)) + r·T` — exactly what the sampler
    /// realizes in expectation.
    ///
    /// The returned parameters are sampler-exact: `hot_kb` is a whole
    /// number of pages and `hot_write_kb_per_sec / page_kb` is the store
    /// rate λ.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two points or non-positive observations.
    pub fn fit_quantized(points: &[(f64, f64)], page_kb: f64) -> WwsParams {
        assert!(points.len() >= 2, "need at least two points to fit");
        assert!(
            points.iter().all(|&(t, y)| t > 0.0 && y > 0.0),
            "points must be positive"
        );
        assert!(page_kb > 0.0);
        let y_max = points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        let h_max = ((4.0 * y_max / page_kb).ceil() as u64).max(2);

        let eval = |h: u64, lam: f64, r: f64, t: f64| -> f64 {
            let hot = if h == 0 {
                0.0
            } else {
                page_kb * h as f64 * (1.0 - (-lam * t / h as f64).exp())
            };
            hot + r * t
        };
        let mut best = (f64::INFINITY, 0u64, 0.0f64, 0.0f64);
        for h in 0..=h_max {
            // λ grid (stores/sec), log-spaced; r in closed form per (h, λ).
            let steps = 160;
            let (lo, hi) = (1e-3f64, 1e5f64);
            for j in 0..=steps {
                let lam = lo * (hi / lo).powf(j as f64 / steps as f64);
                let (mut num, mut den) = (0.0, 0.0);
                for &(t, y) in points {
                    let g = eval(h, lam, 0.0, t);
                    num += t * (y - g);
                    den += t * t;
                }
                let r = (num / den).max(0.0);
                let loss: f64 = points
                    .iter()
                    .map(|&(t, y)| {
                        let e = (eval(h, lam, r, t) - y) / y;
                        e * e
                    })
                    .sum();
                if loss < best.0 {
                    best = (loss, h, lam, r);
                }
            }
        }
        WwsParams {
            hot_kb: best.1 as f64 * page_kb,
            hot_write_kb_per_sec: best.2 * page_kb,
            cold_kb_per_sec: best.3,
        }
    }

    /// Expected unique KB dirtied in `t` seconds under page quantization
    /// (matches what [`WwsSampler`] produces for parameters built by
    /// [`WwsParams::fit_quantized`]).
    pub fn expected_dirty_kb_quantized(&self, t: f64, page_kb: f64) -> f64 {
        let h = (self.hot_kb / page_kb).ceil();
        let lam = self.hot_write_kb_per_sec / page_kb;
        let hot = if h < 1.0 {
            0.0
        } else {
            page_kb * h * (1.0 - (-lam * t / h).exp())
        };
        hot + self.cold_kb_per_sec * t
    }

    /// Root-mean-square relative error of this fit against `points`.
    pub fn rms_rel_error(&self, points: &[(f64, f64)]) -> f64 {
        let sum: f64 = points
            .iter()
            .map(|&(t, y)| {
                let e = (self.expected_dirty_kb(t) - y) / y;
                e * e
            })
            .sum();
        (sum / points.len() as f64).sqrt()
    }
}

/// Issues concrete page writes that realize a [`WwsParams`] against an
/// address space.
///
/// The hot set is a random subset of the space's writable pages; hot
/// stores land uniformly in it. The cold sweep first-touches the remaining
/// writable pages in a shuffled order, starting over (as re-writes, which
/// dirty but are no longer "new") when exhausted.
#[derive(Debug)]
pub struct WwsSampler {
    params: WwsParams,
    hot_pages: Vec<u32>,
    cold_pages: Vec<u32>,
    cold_cursor: usize,
    hot_store_acc: f64,
    cold_kb_acc: f64,
}

impl WwsSampler {
    /// Builds a sampler for `space`. The hot set is clamped to the number
    /// of writable pages.
    pub fn new(params: WwsParams, space: &AddressSpace, rng: &mut DetRng) -> Self {
        let page_kb = PAGE_BYTES as f64 / 1024.0;
        let mut writable = space.writable_pages();
        rng.shuffle(&mut writable);
        let hot_count = ((params.hot_kb / page_kb).ceil() as usize).min(writable.len());
        let hot_pages = writable.split_off(writable.len() - hot_count);
        WwsSampler {
            params,
            hot_pages,
            cold_pages: writable,
            cold_cursor: 0,
            hot_store_acc: 0.0,
            cold_kb_acc: 0.0,
        }
    }

    /// The fitted parameters driving this sampler.
    pub fn params(&self) -> &WwsParams {
        &self.params
    }

    /// Advances program execution by `dt` of CPU time, issuing the page
    /// writes the model prescribes.
    pub fn advance(&mut self, dt: SimDuration, space: &mut AddressSpace, rng: &mut DetRng) {
        let secs = dt.as_secs_f64();
        let page_kb = PAGE_BYTES as f64 / 1024.0;

        // Hot stores: rate in stores/sec = (KB/s) / (KB/page).
        if !self.hot_pages.is_empty() {
            self.hot_store_acc += self.params.hot_write_kb_per_sec / page_kb * secs;
            while self.hot_store_acc >= 1.0 {
                self.hot_store_acc -= 1.0;
                let page = *rng.pick(&self.hot_pages);
                space.write_page(page);
            }
        }

        // Cold sweep: first-touch pages at `r` KB/s.
        if !self.cold_pages.is_empty() {
            self.cold_kb_acc += self.params.cold_kb_per_sec * secs;
            while self.cold_kb_acc >= page_kb {
                self.cold_kb_acc -= page_kb;
                let page = self.cold_pages[self.cold_cursor % self.cold_pages.len()];
                self.cold_cursor += 1;
                space.write_page(page);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{SpaceId, SpaceLayout};

    const T: [f64; 3] = [0.2, 1.0, 3.0];

    #[test]
    fn expected_dirty_is_monotone_and_concave_in_hot_part() {
        let p = WwsParams {
            hot_kb: 50.0,
            hot_write_kb_per_sec: 200.0,
            cold_kb_per_sec: 10.0,
        };
        let y: Vec<f64> = T.iter().map(|&t| p.expected_dirty_kb(t)).collect();
        assert!(y[0] < y[1] && y[1] < y[2]);
        // Hot part saturates below H + r t.
        assert!(y[2] < 50.0 + 10.0 * 3.0 + 1e-9);
    }

    #[test]
    fn zero_hot_set_is_pure_linear() {
        let p = WwsParams {
            hot_kb: 0.0,
            hot_write_kb_per_sec: 100.0,
            cold_kb_per_sec: 7.0,
        };
        assert!((p.expected_dirty_kb(2.0) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_synthetic_parameters() {
        let truth = WwsParams {
            hot_kb: 60.0,
            hot_write_kb_per_sec: 250.0,
            cold_kb_per_sec: 12.0,
        };
        let points: Vec<(f64, f64)> = T.iter().map(|&t| (t, truth.expected_dirty_kb(t))).collect();
        let fit = WwsParams::fit(&points);
        assert!(
            fit.rms_rel_error(&points) < 0.02,
            "rms {}",
            fit.rms_rel_error(&points)
        );
    }

    #[test]
    fn quantized_fit_handles_sub_page_rates() {
        // The paper's `make` row: 0.8 / 1.8 / 4.2 KB — below one 2 KB page
        // at the shortest window. The continuous fit overshoots ~2x when
        // sampled; the quantized fit must stay within ~25% per point.
        let points = [(0.2, 0.8), (1.0, 1.8), (3.0, 4.2)];
        let fit = WwsParams::fit_quantized(&points, 2.0);
        for (t, y) in points {
            let pred = fit.expected_dirty_kb_quantized(t, 2.0);
            let rel = (pred - y).abs() / y;
            assert!(rel < 0.30, "at {t}s: {pred:.2} vs {y} ({rel:.2})");
        }
        // Parameters are sampler-exact: whole pages.
        assert_eq!(fit.hot_kb % 2.0, 0.0);
    }

    #[test]
    fn quantized_fit_matches_continuous_for_large_programs() {
        let points = [(0.2, 50.0), (1.0, 76.8), (3.0, 109.4)];
        let q = WwsParams::fit_quantized(&points, 2.0);
        for (t, y) in points {
            let pred = q.expected_dirty_kb_quantized(t, 2.0);
            assert!((pred - y).abs() / y < 0.05, "at {t}: {pred} vs {y}");
        }
    }

    #[test]
    fn fit_handles_table_4_1_extremes() {
        // The paper's most concave row (preprocessor) and flattest (make).
        for y in [[25.0, 40.2, 59.6], [0.8, 1.8, 4.2]] {
            let points: Vec<(f64, f64)> = T.iter().copied().zip(y).collect();
            let fit = WwsParams::fit(&points);
            assert!(
                fit.rms_rel_error(&points) < 0.05,
                "fit {fit:?} rms {} for {y:?}",
                fit.rms_rel_error(&points)
            );
        }
    }

    #[test]
    fn fit_smooths_non_monotone_linking_loader() {
        // 25.0 / 39.2 / 37.8 — the non-monotone row. The fit cannot be
        // exact; it should still land within ~15% RMS.
        let points: Vec<(f64, f64)> = T.iter().copied().zip([25.0, 39.2, 37.8]).collect();
        let fit = WwsParams::fit(&points);
        assert!(fit.rms_rel_error(&points) < 0.15);
        // And the model must stay monotone.
        assert!(fit.expected_dirty_kb(3.0) >= fit.expected_dirty_kb(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fit_rejects_non_positive_points() {
        WwsParams::fit(&[(0.2, 0.0), (1.0, 1.0)]);
    }

    fn big_space() -> AddressSpace {
        AddressSpace::new(
            SpaceId(0),
            SpaceLayout {
                code_bytes: 0,
                init_data_bytes: 0,
                heap_bytes: 768 * 1024,
                stack_bytes: 0,
            },
        )
    }

    #[test]
    fn sampler_matches_expectation_over_windows() {
        let params = WwsParams {
            hot_kb: 40.0,
            hot_write_kb_per_sec: 300.0,
            cold_kb_per_sec: 15.0,
        };
        let mut rng = DetRng::seed(99);
        let mut space = big_space();
        let mut sampler = WwsSampler::new(params, &space, &mut rng);

        // Warm up so the hot set is in steady state, then measure 1 s
        // windows in 10 ms quanta.
        for _ in 0..100 {
            sampler.advance(SimDuration::from_millis(10), &mut space, &mut rng);
        }
        let mut measured = Vec::new();
        for _ in 0..30 {
            space.clear_dirty();
            for _ in 0..100 {
                sampler.advance(SimDuration::from_millis(10), &mut space, &mut rng);
            }
            measured.push(space.dirty_bytes() as f64 / 1024.0);
        }
        let mean = measured.iter().sum::<f64>() / measured.len() as f64;
        let expected = params.expected_dirty_kb(1.0);
        let rel = (mean - expected).abs() / expected;
        assert!(rel < 0.15, "mean {mean:.1} KB vs expected {expected:.1} KB");
    }

    #[test]
    fn sampler_clamps_hot_set_to_writable_pages() {
        let params = WwsParams {
            hot_kb: 1e6,
            hot_write_kb_per_sec: 100.0,
            cold_kb_per_sec: 0.0,
        };
        let mut rng = DetRng::seed(1);
        let mut space = AddressSpace::new(SpaceId(0), SpaceLayout::tiny());
        let mut sampler = WwsSampler::new(params, &space, &mut rng);
        sampler.advance(SimDuration::from_secs(10), &mut space, &mut rng);
        assert!(space.dirty_pages() <= space.writable_page_count());
    }

    #[test]
    fn sampler_with_zero_rates_writes_nothing() {
        let params = WwsParams {
            hot_kb: 10.0,
            hot_write_kb_per_sec: 0.0,
            cold_kb_per_sec: 0.0,
        };
        let mut rng = DetRng::seed(1);
        let mut space = big_space();
        let mut sampler = WwsSampler::new(params, &space, &mut rng);
        sampler.advance(SimDuration::from_secs(60), &mut space, &mut rng);
        assert_eq!(space.dirty_pages(), 0);
    }

    #[test]
    fn cold_sweep_first_touches_distinct_pages() {
        let params = WwsParams {
            hot_kb: 0.0,
            hot_write_kb_per_sec: 0.0,
            cold_kb_per_sec: 20.0,
        };
        let mut rng = DetRng::seed(3);
        let mut space = big_space();
        let mut sampler = WwsSampler::new(params, &space, &mut rng);
        sampler.advance(SimDuration::from_secs(1), &mut space, &mut rng);
        // 20 KB at 2 KB pages = 10 distinct pages.
        assert_eq!(space.dirty_pages(), 10);
    }
}
