//! Doc regeneration: rewrites the marked table blocks of EXPERIMENTS.md
//! from the consolidated `results/*.json` artifacts.
//!
//! A managed block looks like:
//!
//! ```markdown
//! <!-- vrun:table exp_freeze_time prec=0 cols=program,iterations,freeze_ms -->
//! | program | iterations | freeze_ms |
//! |---|---|---|
//! | make | 1 | 43 |
//! <!-- vrun:end -->
//! ```
//!
//! Everything between the two markers is replaced by a markdown table
//! rendered from the named artifact's `table` section; all other text is
//! left byte-for-byte untouched. Marker options: `prec=N` — decimal
//! places for floats (trailing zeros trimmed; default 3); `cols=a,b,c` —
//! column subset and order (default: every key, artifact order). The
//! `table` section is deterministic (wall-clock data lives in the
//! separate `run` section), so regeneration is byte-stable: CI can
//! assert `vrun docs --check` cleanly.

use std::path::Path;
use vsim::Json;

/// One rewritten (or drifted) block, for reporting.
#[derive(Debug)]
pub struct BlockReport {
    /// Experiment name from the marker.
    pub experiment: String,
    /// 1-based line of the opening marker.
    pub line: usize,
    /// Whether regeneration changed the block's content.
    pub changed: bool,
}

/// Regenerates every managed block of `text`, reading artifacts from
/// `results_dir`. Returns the new document and a per-block report.
pub fn regenerate(text: &str, results_dir: &Path) -> Result<(String, Vec<BlockReport>), String> {
    let mut out = String::with_capacity(text.len());
    let mut reports = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    let had_trailing_newline = text.ends_with('\n');

    while let Some((i, line)) = lines.next() {
        let Some(marker) = parse_marker(line) else {
            out.push_str(line);
            out.push('\n');
            continue;
        };
        // Collect the old block content up to the end marker.
        let mut old = String::new();
        let mut closed = false;
        for (_, inner) in lines.by_ref() {
            if inner.trim() == "<!-- vrun:end -->" {
                closed = true;
                break;
            }
            old.push_str(inner);
            old.push('\n');
        }
        if !closed {
            return Err(format!(
                "line {}: `vrun:table {}` has no `<!-- vrun:end -->`",
                i + 1,
                marker.experiment
            ));
        }
        let artifact_path = results_dir.join(format!("{}.json", marker.experiment));
        let artifact = std::fs::read_to_string(&artifact_path).map_err(|e| {
            format!(
                "line {}: cannot read {} (run the sweep first): {e}",
                i + 1,
                artifact_path.display()
            )
        })?;
        let json = Json::parse(&artifact)
            .map_err(|e| format!("line {}: {}: {e}", i + 1, artifact_path.display()))?;
        let table = json.get("table").ok_or(format!(
            "line {}: {} has no `table` section",
            i + 1,
            artifact_path.display()
        ))?;
        let new = render_table(table, &marker)
            .map_err(|e| format!("line {}: {}: {e}", i + 1, artifact_path.display()))?;
        reports.push(BlockReport {
            experiment: marker.experiment.clone(),
            line: i + 1,
            changed: new != old,
        });
        out.push_str(line);
        out.push('\n');
        out.push_str(&new);
        out.push_str("<!-- vrun:end -->\n");
    }

    if !had_trailing_newline {
        out.pop();
    }
    Ok((out, reports))
}

/// Options parsed from one `<!-- vrun:table ... -->` marker.
#[derive(Debug)]
struct Marker {
    experiment: String,
    prec: usize,
    cols: Option<Vec<String>>,
}

/// Parses a marker line; `None` if the line is not a table marker.
fn parse_marker(line: &str) -> Option<Marker> {
    let body = line
        .trim()
        .strip_prefix("<!-- vrun:table ")?
        .strip_suffix("-->")?
        .trim();
    let (experiment, mut rest) = match body.split_once(char::is_whitespace) {
        Some((e, r)) => (e.to_string(), r.trim()),
        None => (body.to_string(), ""),
    };
    let mut marker = Marker {
        experiment,
        prec: 3,
        cols: None,
    };
    if let Some(r) = rest.strip_prefix("prec=") {
        let (num, tail) = match r.split_once(char::is_whitespace) {
            Some((n, t)) => (n, t.trim()),
            None => (r, ""),
        };
        marker.prec = num.parse().ok()?;
        rest = tail;
    }
    if let Some(r) = rest.strip_prefix("cols=") {
        // `cols=` consumes the rest of the marker, so column names may
        // contain spaces; entries are comma-separated.
        marker.cols = Some(r.split(',').map(|c| c.trim().to_string()).collect());
    }
    Some(marker)
}

/// Renders an artifact `table` section as a markdown table.
fn render_table(table: &Json, marker: &Marker) -> Result<String, String> {
    match table {
        Json::Arr(rows) => {
            let first = rows
                .first()
                .ok_or("`table` is an empty array".to_string())?;
            let Json::Obj(pairs) = first else {
                return Err("`table` rows are not objects".to_string());
            };
            let cols: Vec<String> = match &marker.cols {
                Some(cols) => cols.clone(),
                None => pairs.iter().map(|(k, _)| k.clone()).collect(),
            };
            let mut out = header(&cols);
            for row in rows {
                let cells: Vec<String> = cols
                    .iter()
                    .map(|c| row.get(c).map_or(String::new(), |v| fmt(v, marker.prec)))
                    .collect();
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
            }
            Ok(out)
        }
        Json::Obj(pairs) => {
            let cols: Vec<String> = match &marker.cols {
                Some(cols) => cols.clone(),
                None => pairs.iter().map(|(k, _)| k.clone()).collect(),
            };
            let mut out = header(&["quantity".to_string(), "value".to_string()]);
            for c in &cols {
                let v = table.get(c).map_or(String::new(), |v| fmt(v, marker.prec));
                out.push_str(&format!("| {c} | {v} |\n"));
            }
            Ok(out)
        }
        _ => Err("`table` is neither an array nor an object".to_string()),
    }
}

fn header(cols: &[String]) -> String {
    let mut out = format!("| {} |\n", cols.join(" | "));
    out.push_str(&format!("|{}\n", "---|".repeat(cols.len())));
    out
}

/// Deterministic cell formatting: floats at `prec` decimals with
/// trailing zeros trimmed, booleans as yes/no, arrays and objects
/// inline.
fn fmt(v: &Json, prec: usize) -> String {
    match v {
        Json::Null => String::new(),
        Json::Bool(true) => "yes".to_string(),
        Json::Bool(false) => "no".to_string(),
        Json::Int(i) => i.to_string(),
        Json::UInt(u) => u.to_string(),
        Json::Num(x) => {
            let s = format!("{x:.prec$}");
            if s.contains('.') {
                let s = s.trim_end_matches('0').trim_end_matches('.');
                if s.is_empty() || s == "-" {
                    "0".to_string()
                } else {
                    s.to_string()
                }
            } else {
                s
            }
        }
        Json::Str(s) => s.clone(),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(|i| fmt(i, prec)).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(pairs) => {
            let inner: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{k}: {}", fmt(v, prec)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_results(tag: &str, artifacts: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vrun-docgen-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in artifacts {
            std::fs::write(dir.join(format!("{name}.json")), text).unwrap();
        }
        dir
    }

    const ROWS: &str = r#"{"experiment": "e", "table": [
        {"name": "a", "ms": 1.25, "ok": true},
        {"name": "b", "ms": 10.0, "ok": false}
    ]}"#;

    #[test]
    fn rewrites_a_row_table_block() {
        let dir = temp_results("rows", &[("e", ROWS)]);
        let doc = "before\n<!-- vrun:table e -->\nstale\n<!-- vrun:end -->\nafter\n";
        let (out, reports) = regenerate(doc, &dir).unwrap();
        assert_eq!(
            out,
            "before\n<!-- vrun:table e -->\n\
             | name | ms | ok |\n|---|---|---|\n\
             | a | 1.25 | yes |\n| b | 10 | no |\n\
             <!-- vrun:end -->\nafter\n"
        );
        assert_eq!(reports.len(), 1);
        assert!(reports[0].changed);
        // Regenerating the regenerated doc is a fixed point.
        let (again, reports) = regenerate(&out, &dir).unwrap();
        assert_eq!(again, out);
        assert!(!reports[0].changed);
    }

    #[test]
    fn cols_and_prec_options_apply() {
        let dir = temp_results("opts", &[("e", ROWS)]);
        let doc = "<!-- vrun:table e prec=0 cols=ms,name -->\n<!-- vrun:end -->\n";
        let (out, _) = regenerate(doc, &dir).unwrap();
        assert_eq!(
            out,
            "<!-- vrun:table e prec=0 cols=ms,name -->\n\
             | ms | name |\n|---|---|\n| 1 | a |\n| 10 | b |\n\
             <!-- vrun:end -->\n"
        );
    }

    #[test]
    fn object_tables_render_as_quantity_value() {
        let obj = r#"{"experiment": "o", "table": {"x_ms": 23.4567, "points": [[1, 2.0]]}}"#;
        let dir = temp_results("obj", &[("o", obj)]);
        let doc = "<!-- vrun:table o cols=x_ms -->\n<!-- vrun:end -->\n";
        let (out, _) = regenerate(doc, &dir).unwrap();
        assert_eq!(
            out,
            "<!-- vrun:table o cols=x_ms -->\n\
             | quantity | value |\n|---|---|\n| x_ms | 23.457 |\n\
             <!-- vrun:end -->\n"
        );
    }

    #[test]
    fn errors_name_the_problem() {
        let dir = temp_results("err", &[("e", ROWS)]);
        let unclosed = "<!-- vrun:table e -->\nno end\n";
        assert!(regenerate(unclosed, &dir)
            .unwrap_err()
            .contains("no `<!-- vrun:end -->`"));
        let missing = "<!-- vrun:table ghost -->\n<!-- vrun:end -->\n";
        let err = regenerate(missing, &dir).unwrap_err();
        assert!(err.contains("ghost.json"), "{err}");
        assert!(err.contains("run the sweep first"), "{err}");
    }

    #[test]
    fn untouched_text_is_preserved_bytewise() {
        let dir = temp_results("noop", &[]);
        let doc = "# Title\n\nplain | pipes | here\nno markers at all\n";
        let (out, reports) = regenerate(doc, &dir).unwrap();
        assert_eq!(out, doc);
        assert!(reports.is_empty());
    }
}
