//! `vrun` CLI — run cached experiment sweeps and regenerate docs.
//!
//! ```text
//! vrun run  <spec.toml> [--force] [--pool N] [--bin-dir DIR] [--results DIR] [--quiet]
//! vrun plan <spec.toml> [--bin-dir DIR] [--results DIR]
//! vrun docs [--check] [--doc PATH] [--results DIR]
//! vrun lint <vlint.json>
//! ```
//!
//! Exit codes: 0 success; 1 a cell failed / docs drifted (`--check`) /
//! the lint artifact records violations; 2 usage or spec error.

use std::path::PathBuf;
use std::process::ExitCode;

use vrun::spec::Sweep;
use vrun::{docgen, hash, plan, say, RunOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"run", rest)) => cmd_run(rest),
        Some((&"plan", rest)) => cmd_plan(rest),
        Some((&"docs", rest)) => cmd_docs(rest),
        Some((&"lint", rest)) => cmd_lint(rest),
        _ => {
            eprintln!(
                "usage: vrun run <spec.toml> [--force] [--pool N] [--bin-dir DIR] [--results DIR] [--quiet]\n\
                 \x20      vrun plan <spec.toml> [--bin-dir DIR] [--results DIR]\n\
                 \x20      vrun docs [--check] [--doc PATH] [--results DIR]\n\
                 \x20      vrun lint <vlint.json>"
            );
            ExitCode::from(2)
        }
    }
}

/// Shared flag parsing; returns positional args.
fn parse_flags(
    rest: &[&str],
    opts: &mut RunOptions,
    force: &mut bool,
    check: &mut bool,
    doc: &mut PathBuf,
    quiet: &mut bool,
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut it = rest.iter();
    while let Some(&a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .map(|s| (*s).to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match a {
            "--force" => *force = true,
            "--check" => *check = true,
            "--quiet" => *quiet = true,
            "--pool" => {
                opts.pool = Some(
                    value("--pool")?
                        .parse()
                        .map_err(|_| "--pool needs a number".to_string())?,
                );
            }
            "--bin-dir" => opts.bin_dir = PathBuf::from(value("--bin-dir")?),
            "--results" => opts.results_dir = PathBuf::from(value("--results")?),
            "--doc" => *doc = PathBuf::from(value("--doc")?),
            _ if a.starts_with("--") => return Err(format!("unknown flag {a}")),
            _ => positional.push(a.to_string()),
        }
    }
    Ok(positional)
}

fn usage_err(e: &str) -> ExitCode {
    eprintln!("vrun: {e}");
    ExitCode::from(2)
}

fn load_spec(positional: &[String]) -> Result<Sweep, String> {
    match positional {
        [path] => Sweep::load(std::path::Path::new(path)),
        _ => Err("expected exactly one spec path".to_string()),
    }
}

fn cmd_run(rest: &[&str]) -> ExitCode {
    let mut opts = RunOptions {
        verbose: true,
        ..RunOptions::default()
    };
    let (mut force, mut check, mut quiet) = (false, false, false);
    let mut doc = PathBuf::new();
    let positional = match parse_flags(
        rest, &mut opts, &mut force, &mut check, &mut doc, &mut quiet,
    ) {
        Ok(p) => p,
        Err(e) => return usage_err(&e),
    };
    opts.force = force;
    opts.verbose = !quiet;
    let sweep = match load_spec(&positional) {
        Ok(s) => s,
        Err(e) => return usage_err(&e),
    };
    match vrun::run_sweep(&sweep, &opts) {
        Ok(summary) => {
            say(&format!("sweep `{}`: {}", sweep.name, summary.line()));
            for (cell, outcome) in &summary.cells {
                if let vrun::CellOutcome::Failed(e) = outcome {
                    eprintln!("  {}[{}]: {e}", cell.bin, cell.label);
                }
            }
            if summary.failed() == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => usage_err(&e),
    }
}

fn cmd_plan(rest: &[&str]) -> ExitCode {
    let mut opts = RunOptions::default();
    let (mut force, mut check, mut quiet) = (false, false, false);
    let mut doc = PathBuf::new();
    let positional = match parse_flags(
        rest, &mut opts, &mut force, &mut check, &mut doc, &mut quiet,
    ) {
        Ok(p) => p,
        Err(e) => return usage_err(&e),
    };
    let sweep = match load_spec(&positional) {
        Ok(s) => s,
        Err(e) => return usage_err(&e),
    };
    let cache = vrun::cache::Cache::new(&opts.results_dir);
    say(&format!(
        "sweep `{}`: pool {}, default timeout {}s",
        sweep.name, sweep.pool, sweep.timeout_secs
    ));
    for cell in plan::cells(&sweep) {
        // Hash without the binary bytes when the binary is not built yet
        // (plan is a preview; run re-hashes with the real bytes).
        let bytes = std::fs::read(opts.bin_dir.join(&cell.bin)).unwrap_or_default();
        let key = hash::cell_key(&cell.bin, &bytes, &cell.config);
        let state = if bytes.is_empty() {
            "unbuilt"
        } else if cache.lookup(&cell.bin, key).is_some() {
            "cached"
        } else {
            "due"
        };
        say(&format!(
            "  {}[{}/{}] {} {:016x} {state}",
            cell.bin,
            cell.index + 1,
            cell.of,
            cell.label,
            key
        ));
    }
    ExitCode::SUCCESS
}

/// `vrun lint <vlint.json>` — validate the vlint artifact CI uploads:
/// it must parse, carry the schema version this vrun understands, and
/// record a clean workspace. This is the consumer-side half of the
/// `--json` contract; a schema bump without updating vrun fails here,
/// not silently downstream.
fn cmd_lint(rest: &[&str]) -> ExitCode {
    let [path] = rest else {
        return usage_err("lint takes exactly one artifact path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return usage_err(&format!("cannot read {path}: {e}")),
    };
    let json = match vsim::Json::parse(&text) {
        Ok(j) => j,
        Err(e) => return usage_err(&format!("{path}: invalid JSON: {e}")),
    };
    if json.get("tool").and_then(|t| t.as_str()) != Some("vlint") {
        return usage_err(&format!("{path}: not a vlint artifact (missing tool tag)"));
    }
    const EXPECTED_SCHEMA: f64 = 2.0;
    match json.get("schema").and_then(|s| s.as_f64()) {
        Some(v) if v == EXPECTED_SCHEMA => {}
        Some(v) => {
            return usage_err(&format!(
                "{path}: artifact schema {v} but this vrun expects {EXPECTED_SCHEMA}"
            ))
        }
        None => return usage_err(&format!("{path}: artifact predates the schema field")),
    }
    let clean = matches!(json.get("clean"), Some(vsim::Json::Bool(true)));
    let violations = json
        .get("violations")
        .and_then(|v| v.as_arr())
        .map(<[vsim::Json]>::len)
        .unwrap_or(0);
    if clean && violations == 0 {
        say(&format!("{path}: clean vlint artifact (schema 2)"));
        ExitCode::SUCCESS
    } else {
        eprintln!("vrun: {path}: vlint recorded {violations} violation(s)");
        ExitCode::from(1)
    }
}

fn cmd_docs(rest: &[&str]) -> ExitCode {
    let mut opts = RunOptions::default();
    let (mut force, mut check, mut quiet) = (false, false, false);
    let mut doc = PathBuf::from("EXPERIMENTS.md");
    let positional = match parse_flags(
        rest, &mut opts, &mut force, &mut check, &mut doc, &mut quiet,
    ) {
        Ok(p) => p,
        Err(e) => return usage_err(&e),
    };
    if !positional.is_empty() {
        return usage_err("docs takes no positional arguments");
    }
    let text = match std::fs::read_to_string(&doc) {
        Ok(t) => t,
        Err(e) => return usage_err(&format!("cannot read {}: {e}", doc.display())),
    };
    let (new, reports) = match docgen::regenerate(&text, &opts.results_dir) {
        Ok(r) => r,
        Err(e) => return usage_err(&e),
    };
    let drifted: Vec<_> = reports.iter().filter(|r| r.changed).collect();
    if check {
        if drifted.is_empty() {
            say(&format!(
                "{}: {} table(s) up to date",
                doc.display(),
                reports.len()
            ));
            return ExitCode::SUCCESS;
        }
        for r in &drifted {
            eprintln!(
                "{}:{}: table `{}` is stale (run `vrun docs`)",
                doc.display(),
                r.line,
                r.experiment
            );
        }
        return ExitCode::from(1);
    }
    if let Err(e) = std::fs::write(&doc, &new) {
        return usage_err(&format!("cannot write {}: {e}", doc.display()));
    }
    say(&format!(
        "{}: {} table(s) regenerated, {} changed",
        doc.display(),
        reports.len(),
        drifted.len()
    ));
    ExitCode::SUCCESS
}
