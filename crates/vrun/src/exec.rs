//! The bounded process pool: runs due cells as child processes with
//! per-cell timeouts and captured output.
//!
//! Children are spawned as `<bin> --config <path> --out <path>` with
//! stdout and stderr redirected straight into the cell's log file (no
//! pipes — a chatty binary can never deadlock the runner). At most
//! `pool` children run at once; the runner polls `try_wait` and kills
//! any child that outlives its timeout.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

/// One spawnable unit of work, fully resolved to filesystem paths.
#[derive(Debug)]
pub struct Job {
    /// Executable to run.
    pub bin_path: PathBuf,
    /// `--config` argument.
    pub config_path: PathBuf,
    /// `--out` argument.
    pub out_path: PathBuf,
    /// File receiving the child's stdout + stderr.
    pub log_path: PathBuf,
    /// Kill the child after this many wall-clock seconds.
    pub timeout_secs: u64,
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobResult {
    /// Exited with status 0 in `wall_secs`.
    Ran {
        /// Wall-clock seconds from spawn to exit.
        wall_secs: f64,
    },
    /// Could not spawn, or exited non-zero; the string says which.
    Failed(String),
    /// Killed after exceeding its timeout.
    TimedOut,
}

struct Running {
    index: usize,
    child: Child,
    started: Instant,
    timeout_secs: u64,
}

/// Runs every job, at most `pool` concurrently, preserving result order.
/// `on_done(index, result)` fires as each job settles (progress output).
pub fn run_pool(
    jobs: &[Job],
    pool: usize,
    mut on_done: impl FnMut(usize, &JobResult),
) -> Vec<JobResult> {
    let pool = pool.max(1);
    let mut results: Vec<Option<JobResult>> = jobs.iter().map(|_| None).collect();
    let mut next = 0usize;
    let mut running: Vec<Running> = Vec::new();

    while next < jobs.len() || !running.is_empty() {
        // Fill free slots.
        while next < jobs.len() && running.len() < pool {
            let index = next;
            next += 1;
            match spawn(&jobs[index]) {
                Ok(child) => running.push(Running {
                    index,
                    child,
                    started: Instant::now(),
                    timeout_secs: jobs[index].timeout_secs,
                }),
                Err(e) => {
                    let r = JobResult::Failed(e);
                    on_done(index, &r);
                    results[index] = Some(r);
                }
            }
        }

        // Poll the running set.
        let mut i = 0;
        while i < running.len() {
            let slot = &mut running[i];
            match slot.child.try_wait() {
                Ok(Some(status)) => {
                    let wall_secs = slot.started.elapsed().as_secs_f64();
                    let r = if status.success() {
                        JobResult::Ran { wall_secs }
                    } else {
                        JobResult::Failed(match status.code() {
                            Some(code) => format!("exit status {code}"),
                            None => "killed by signal".to_string(),
                        })
                    };
                    let done = running.swap_remove(i);
                    on_done(done.index, &r);
                    results[done.index] = Some(r);
                }
                Ok(None) if slot.started.elapsed().as_secs() >= slot.timeout_secs => {
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    let done = running.swap_remove(i);
                    on_done(done.index, &JobResult::TimedOut);
                    results[done.index] = Some(JobResult::TimedOut);
                }
                Ok(None) => i += 1,
                Err(e) => {
                    let r = JobResult::Failed(format!("wait failed: {e}"));
                    let done = running.swap_remove(i);
                    on_done(done.index, &r);
                    results[done.index] = Some(r);
                }
            }
        }

        if !running.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    results.into_iter().flatten().collect()
}

fn spawn(job: &Job) -> Result<Child, String> {
    let log = std::fs::File::create(&job.log_path)
        .map_err(|e| format!("cannot create {}: {e}", job.log_path.display()))?;
    let log_err = log
        .try_clone()
        .map_err(|e| format!("cannot clone log handle: {e}"))?;
    Command::new(&job.bin_path)
        .arg("--config")
        .arg(&job.config_path)
        .arg("--out")
        .arg(&job.out_path)
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(log_err))
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", job.bin_path.display()))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::os::unix::fs::PermissionsExt;

    /// Writes an executable shell script and returns its path.
    fn script(dir: &std::path::Path, name: &str, body: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, format!("#!/bin/sh\n{body}\n")).expect("write script");
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).expect("chmod");
        path
    }

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vrun-exec-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn job(dir: &std::path::Path, bin: PathBuf, n: usize, timeout_secs: u64) -> Job {
        Job {
            bin_path: bin,
            config_path: dir.join(format!("{n}.config.json")),
            out_path: dir.join(format!("{n}.json")),
            log_path: dir.join(format!("{n}.log")),
            timeout_secs,
        }
    }

    #[test]
    fn runs_jobs_and_captures_logs() {
        let dir = temp("ok");
        let bin = script(&dir, "ok.sh", r#"echo "ran $4"; printf x > "$4""#);
        let jobs: Vec<Job> = (0..3).map(|n| job(&dir, bin.clone(), n, 30)).collect();
        let results = run_pool(&jobs, 2, |_, _| {});
        assert!(results.iter().all(|r| matches!(r, JobResult::Ran { .. })));
        // --out is argv[4]; the script wrote both the log and the file.
        assert_eq!(std::fs::read_to_string(&jobs[1].out_path).unwrap(), "x");
        let log = std::fs::read_to_string(&jobs[1].log_path).unwrap();
        assert!(log.contains("ran"), "log: {log}");
    }

    #[test]
    fn reports_failures_and_timeouts() {
        let dir = temp("fail");
        let fail = script(&dir, "fail.sh", "exit 3");
        let hang = script(&dir, "hang.sh", "sleep 30");
        let jobs = vec![
            job(&dir, fail, 0, 30),
            job(&dir, hang, 1, 1),
            job(&dir, dir.join("missing.sh"), 2, 30),
        ];
        let mut order = Vec::new();
        let results = run_pool(&jobs, 3, |i, _| order.push(i));
        assert_eq!(results[0], JobResult::Failed("exit status 3".into()));
        assert_eq!(results[1], JobResult::TimedOut);
        assert!(matches!(&results[2], JobResult::Failed(e) if e.contains("cannot spawn")));
        assert_eq!(order.len(), 3);
    }
}
