//! Matrix expansion: a [`Sweep`] → the flat list of
//! [`Cell`]s to execute, each with its canonical `--config` JSON.
//!
//! Cell order is deterministic: experiments in spec order, then the seed
//! axis, then the grid axes with the first axis outermost. The config
//! text is canonical (seed first, grid keys in spec order, fixed number
//! formatting), so it can be hashed byte-for-byte — see [`crate::hash`].

use crate::spec::{Experiment, Sweep};
use vlint::toml::TomlValue;

/// One unit of work: a bench binary run under one parameter assignment.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Binary name under the bin directory.
    pub bin: String,
    /// Owning experiment's consolidated-artifact name.
    pub experiment: String,
    /// Index of this cell within its experiment (0-based, plan order).
    pub index: usize,
    /// Number of cells in the owning experiment.
    pub of: usize,
    /// Canonical `--config` JSON text ("{}" when the cell has no
    /// parameters).
    pub config: String,
    /// Short human label: `seed=1 hours=3` ("defaults" when empty).
    pub label: String,
    /// Wall-clock limit for the child process.
    pub timeout_secs: u64,
}

/// Expands every experiment of `sweep` into its cells, in plan order.
pub fn cells(sweep: &Sweep) -> Vec<Cell> {
    let mut all = Vec::new();
    for exp in &sweep.experiments {
        let combos = expand(exp);
        let of = combos.len();
        for (index, assignment) in combos.into_iter().enumerate() {
            all.push(Cell {
                bin: exp.bin.clone(),
                experiment: exp.name.clone(),
                index,
                of,
                config: config_json(&assignment),
                label: label(&assignment),
                timeout_secs: exp.timeout_secs,
            });
        }
    }
    all
}

/// One parameter assignment: `(key, value)` pairs in canonical order.
type Assignment = Vec<(String, TomlValue)>;

/// Cartesian product over the seed axis and the grid axes. An experiment
/// with no axes yields exactly one empty assignment (the binary's
/// defaults).
fn expand(exp: &Experiment) -> Vec<Assignment> {
    let mut combos: Vec<Assignment> = vec![Vec::new()];
    if !exp.seeds.is_empty() {
        combos = exp
            .seeds
            .iter()
            .map(|&s| vec![("seed".to_string(), TomlValue::Int(s as i64))])
            .collect();
    }
    for (key, values) in &exp.grid {
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for base in &combos {
            for v in values {
                let mut a = base.clone();
                a.push((key.clone(), v.clone()));
                next.push(a);
            }
        }
        combos = next;
    }
    combos
}

/// Renders the canonical config JSON for one assignment. Formatting is
/// fixed (2-space indent, spec key order, minimal float form) so equal
/// assignments always hash equally.
fn config_json(assignment: &Assignment) -> String {
    if assignment.is_empty() {
        return "{}\n".to_string();
    }
    let mut out = String::from("{\n");
    for (i, (key, value)) in assignment.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(key);
        out.push_str("\": ");
        out.push_str(&scalar_json(value));
        out.push_str(if i + 1 == assignment.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("}\n");
    out
}

/// JSON literal for one grid scalar.
fn scalar_json(value: &TomlValue) -> String {
    match value {
        TomlValue::Int(i) => i.to_string(),
        TomlValue::Float(f) => {
            // Keep integral floats distinguishable from ints (`3.0`),
            // everything else in shortest `{}` form.
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        TomlValue::Bool(b) => b.to_string(),
        TomlValue::Str(s) => {
            let escaped: String = s
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    _ => vec![c],
                })
                .collect();
            format!("\"{escaped}\"")
        }
        TomlValue::List(_) => "null".to_string(), // unreachable: axes are flat
    }
}

/// Short display label for progress lines.
fn label(assignment: &Assignment) -> String {
    if assignment.is_empty() {
        return "defaults".to_string();
    }
    assignment
        .iter()
        .map(|(k, v)| {
            let v = match v {
                TomlValue::Str(s) => s.clone(),
                other => scalar_json(other),
            };
            format!("{k}={v}")
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Sweep;

    const SPEC: &str = r#"
[sweep]
name = "demo"

[[experiment]]
bin = "solo"

[[experiment]]
bin = "grid"
seeds = [1, 2]
[experiment.grid]
hours = [1.0, 2.5]
fast = [true, false]
"#;

    #[test]
    fn expands_the_cartesian_product_in_order() {
        let sweep = Sweep::parse(SPEC, "t.toml").unwrap();
        let cells = cells(&sweep);
        assert_eq!(cells.len(), 1 + 2 * 2 * 2);
        assert_eq!(cells[0].bin, "solo");
        assert_eq!(cells[0].of, 1);
        assert_eq!(cells[0].config, "{}\n");
        assert_eq!(cells[0].label, "defaults");
        // Seed outermost, then hours, then fast (spec order).
        assert_eq!(cells[1].label, "seed=1 hours=1.0 fast=true");
        assert_eq!(cells[2].label, "seed=1 hours=1.0 fast=false");
        assert_eq!(cells[3].label, "seed=1 hours=2.5 fast=true");
        assert_eq!(cells[5].label, "seed=2 hours=1.0 fast=true");
        assert_eq!(cells[8].index, 7);
        assert_eq!(cells[8].of, 8);
    }

    #[test]
    fn config_json_is_canonical() {
        let sweep = Sweep::parse(SPEC, "t.toml").unwrap();
        let cells = cells(&sweep);
        assert_eq!(
            cells[1].config,
            "{\n  \"seed\": 1,\n  \"hours\": 1.0,\n  \"fast\": true\n}\n"
        );
        // Identical assignments render identically (hash stability).
        let again = super::cells(&sweep);
        assert_eq!(cells[1].config, again[1].config);
    }

    #[test]
    fn string_axes_are_quoted_and_escaped() {
        let a = vec![("mode".to_string(), TomlValue::Str("a\"b".into()))];
        assert_eq!(config_json(&a), "{\n  \"mode\": \"a\\\"b\"\n}\n");
    }
}
