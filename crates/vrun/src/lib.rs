//! `vrun` — the declarative experiment runner.
//!
//! Reads a sweep spec (`sweeps/*.toml`) describing experiments × seeds ×
//! parameter grids, expands the matrix into cells, content-hashes each
//! cell ({binary bytes, canonical config}), and executes only the cells
//! whose hash is not already in `results/cache/` — a re-run of an
//! unchanged sweep is 100% cache hits. Cells run across a bounded pool
//! of child processes ([`exec`]) speaking the uniform bench contract
//! (`--config <path> --out <path>`, see `vbench::args`). Per-experiment
//! results are consolidated into `results/<name>.json`, and the marked
//! tables of EXPERIMENTS.md regenerate from those artifacts ([`docgen`]).
//!
//! Module map — one stage per module:
//!
//! * [`spec`] — parse + validate sweep specs (shared [`vlint::toml`]
//!   reader);
//! * [`plan`] — expand the matrix into [`plan::Cell`]s with canonical
//!   config JSON;
//! * [`hash`] — FNV-1a cell identity;
//! * [`cache`] — the `results/cache/` store, verified by the same
//!   [`vsim::Json`] reader the simulation uses;
//! * [`exec`] — the bounded process pool with timeouts and captured
//!   logs;
//! * [`docgen`] — EXPERIMENTS.md table regeneration.

pub mod cache;
pub mod docgen;
pub mod exec;
pub mod hash;
pub mod plan;
pub mod spec;

use std::path::{Path, PathBuf};

use cache::Cache;
use exec::{Job, JobResult};
use plan::Cell;
use spec::Sweep;
use vsim::Json;

/// Everything `vrun run` needs besides the spec itself.
#[derive(Debug)]
pub struct RunOptions {
    /// Directory holding the built bench binaries.
    pub bin_dir: PathBuf,
    /// Results directory (consolidated artifacts + `cache/`).
    pub results_dir: PathBuf,
    /// Re-run every cell even on a cache hit.
    pub force: bool,
    /// Override the spec's pool size.
    pub pool: Option<usize>,
    /// Print per-cell progress lines to stdout.
    pub verbose: bool,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            bin_dir: PathBuf::from("target/release"),
            results_dir: PathBuf::from("results"),
            force: false,
            pool: None,
            verbose: false,
        }
    }
}

/// Outcome of one cell, in plan order.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Served from `results/cache/` without running.
    CacheHit,
    /// Executed and produced a verified artifact.
    Ran {
        /// Wall-clock seconds of the child process.
        wall_secs: f64,
    },
    /// Executed but failed (spawn error, non-zero exit, bad artifact).
    Failed(String),
    /// Killed after its timeout.
    TimedOut,
}

/// Result of a whole sweep run.
#[derive(Debug)]
pub struct Summary {
    /// Per-cell `(cell, outcome)` in plan order.
    pub cells: Vec<(Cell, CellOutcome)>,
}

impl Summary {
    /// Number of cache hits.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::CacheHit))
    }

    /// Number of cells actually executed.
    #[must_use]
    pub fn ran(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Ran { .. }))
    }

    /// Number of failed or timed-out cells.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Failed(_) | CellOutcome::TimedOut))
    }

    fn count(&self, pred: impl Fn(&CellOutcome) -> bool) -> usize {
        self.cells.iter().filter(|(_, o)| pred(o)).count()
    }

    /// One-line render: `5 cells: 3 hits, 2 ran, 0 failed`.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "{} cells: {} cache hits, {} ran, {} failed",
            self.cells.len(),
            self.hits(),
            self.ran(),
            self.failed()
        )
    }
}

/// Prints one progress line to stdout, ignoring write errors — when
/// output is piped into `head`/`grep -q` the pipe closes early, and a
/// runner mid-sweep must keep executing cells, not panic.
pub fn say(line: &str) {
    use std::io::Write;
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{line}");
}

/// Runs a sweep end to end: plan, hash, cache-check, execute, verify,
/// consolidate. Fails early (`Err`) only on environment problems — a
/// missing binary, an unwritable results directory; per-cell failures
/// land in the [`Summary`].
pub fn run_sweep(sweep: &Sweep, opts: &RunOptions) -> Result<Summary, String> {
    let cells = plan::cells(sweep);
    let cache = Cache::new(&opts.results_dir);
    cache.ensure()?;

    // Hash inputs: each distinct binary is read once.
    let mut bin_bytes: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
    for cell in &cells {
        if !bin_bytes.contains_key(&cell.bin) {
            let path = bin_path(&opts.bin_dir, &cell.bin);
            let bytes = std::fs::read(&path).map_err(|e| {
                format!(
                    "cannot read {} ({e}); build the bench binaries first:\n  \
                     cargo build --release --workspace --bins",
                    path.display()
                )
            })?;
            bin_bytes.insert(cell.bin.clone(), bytes);
        }
    }
    let keys: Vec<u64> = cells
        .iter()
        .map(|c| hash::cell_key(&c.bin, &bin_bytes[&c.bin], &c.config))
        .collect();

    // Split into hits and due cells.
    let mut outcomes: Vec<Option<CellOutcome>> = cells.iter().map(|_| None).collect();
    let mut due: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if !opts.force && cache.lookup(&cell.bin, keys[i]).is_some() {
            outcomes[i] = Some(CellOutcome::CacheHit);
            if opts.verbose {
                say(&format!("{} hit", cell_tag(cell, keys[i])));
            }
        } else {
            due.push(i);
        }
    }

    // Execute the due cells over the pool.
    let jobs: Vec<Job> = due
        .iter()
        .map(|&i| {
            let cell = &cells[i];
            let key = keys[i];
            let config_path = cache.config_path(&cell.bin, key);
            std::fs::write(&config_path, &cell.config)
                .map_err(|e| format!("cannot write {}: {e}", config_path.display()))?;
            Ok(Job {
                bin_path: bin_path(&opts.bin_dir, &cell.bin),
                config_path,
                out_path: cache.artifact_path(&cell.bin, key),
                log_path: cache.log_path(&cell.bin, key),
                timeout_secs: cell.timeout_secs,
            })
        })
        .collect::<Result<_, String>>()?;
    let pool = opts.pool.unwrap_or(sweep.pool);
    let results = exec::run_pool(&jobs, pool, |j, r| {
        if opts.verbose {
            let cell = &cells[due[j]];
            match r {
                JobResult::Ran { wall_secs } => {
                    say(&format!(
                        "{} ran {wall_secs:.2}s",
                        cell_tag(cell, keys[due[j]])
                    ));
                }
                JobResult::Failed(e) => {
                    say(&format!("{} FAILED: {e}", cell_tag(cell, keys[due[j]])));
                }
                JobResult::TimedOut => say(&format!(
                    "{} TIMED OUT after {}s",
                    cell_tag(cell, keys[due[j]]),
                    cell.timeout_secs
                )),
            }
        }
    });

    // Verify the fresh artifacts with the simulation's JSON reader.
    for (j, result) in results.into_iter().enumerate() {
        let i = due[j];
        let cell = &cells[i];
        outcomes[i] = Some(match result {
            JobResult::Ran { wall_secs } => match cache.lookup(&cell.bin, keys[i]) {
                Some(_) => CellOutcome::Ran { wall_secs },
                None => CellOutcome::Failed(format!(
                    "exited 0 but wrote no valid artifact (see {})",
                    cache.log_path(&cell.bin, keys[i]).display()
                )),
            },
            JobResult::Failed(e) => CellOutcome::Failed(format!(
                "{e} (see {})",
                cache.log_path(&cell.bin, keys[i]).display()
            )),
            JobResult::TimedOut => CellOutcome::TimedOut,
        });
    }

    let summary = Summary {
        cells: cells
            .iter()
            .cloned()
            .zip(outcomes.into_iter().flatten())
            .collect(),
    };
    consolidate(sweep, &summary, &keys, &cache, &opts.results_dir)?;
    Ok(summary)
}

/// Writes `results/<experiment>.json` for every fully-successful
/// experiment: a verbatim copy of the artifact for single-cell
/// experiments (so downstream consumers — the regression gate, the doc
/// generator — see the plain bench schema), or a `cells` array of
/// `{config, table, run}` objects for multi-cell ones.
fn consolidate(
    sweep: &Sweep,
    summary: &Summary,
    keys: &[u64],
    cache: &Cache,
    results_dir: &Path,
) -> Result<(), String> {
    let mut offset = 0usize;
    for exp in &sweep.experiments {
        let slice: Vec<usize> = (offset..)
            .take_while(|&i| i < summary.cells.len() && summary.cells[i].0.experiment == exp.name)
            .collect();
        offset += slice.len();
        let ok = slice.iter().all(|&i| {
            matches!(
                summary.cells[i].1,
                CellOutcome::CacheHit | CellOutcome::Ran { .. }
            )
        });
        if !ok {
            continue; // leave any previous consolidated artifact alone
        }
        let out_path = results_dir.join(format!("{}.json", exp.name));
        if slice.len() == 1 {
            let i = slice[0];
            let text = cache
                .lookup(&summary.cells[i].0.bin, keys[i])
                .ok_or(format!("cache entry vanished for {}", exp.name))?;
            std::fs::write(&out_path, text)
                .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
            continue;
        }
        let mut cells_json = Vec::new();
        for &i in &slice {
            let (cell, _) = &summary.cells[i];
            let text = cache
                .lookup(&cell.bin, keys[i])
                .ok_or(format!("cache entry vanished for {}", exp.name))?;
            let artifact = cache::verify(&text, &cell.bin)?;
            let config = Json::parse(&cell.config).map_err(|e| format!("config json: {e}"))?;
            let mut fields = vec![
                ("config".to_string(), config),
                ("hash".to_string(), Json::Str(format!("{:016x}", keys[i]))),
            ];
            for section in ["table", "run"] {
                if let Some(v) = artifact.get(section) {
                    fields.push((section.to_string(), v.clone()));
                }
            }
            cells_json.push(Json::Obj(fields));
        }
        let consolidated = Json::obj([
            ("experiment", Json::Str(exp.name.clone())),
            ("bin", Json::Str(exp.bin.clone())),
            ("cells", Json::Arr(cells_json)),
        ]);
        std::fs::write(&out_path, consolidated.pretty())
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    }
    Ok(())
}

fn bin_path(bin_dir: &Path, bin: &str) -> PathBuf {
    bin_dir.join(bin)
}

/// Progress-line prefix: `exp_remote_exec[2/4 seed=101] a1b2c3d4`.
fn cell_tag(cell: &Cell, key: u64) -> String {
    format!(
        "{}[{}/{} {}] {:08x}",
        cell.bin,
        cell.index + 1,
        cell.of,
        cell.label,
        key >> 32
    )
}
