//! The results cache: `results/cache/` keyed by cell hash.
//!
//! Layout, per cell (`<stem>` = `<bin>-<16-hex-digit key>`):
//!
//! * `<stem>.json` — the artifact the binary wrote via `--out`;
//! * `<stem>.config.json` — the canonical config the cell ran with;
//! * `<stem>.log` — captured stdout + stderr of the run.
//!
//! A cell is a **hit** when its artifact exists, parses as JSON (via the
//! same [`vsim::Json`] reader the simulation uses), and names the
//! expected experiment binary — a truncated file from a killed run is a
//! miss, not an error. The directory is safe to delete at any time; the
//! next sweep just re-runs everything.

use std::path::{Path, PathBuf};
use vsim::Json;

/// Handle on a sweep's cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Cache under `results_dir` (`<results_dir>/cache`), created on
    /// first use.
    #[must_use]
    pub fn new(results_dir: &Path) -> Cache {
        Cache {
            dir: results_dir.join("cache"),
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File stem for a cell: `<bin>-<key as 16 hex digits>`.
    #[must_use]
    pub fn stem(bin: &str, key: u64) -> String {
        format!("{bin}-{key:016x}")
    }

    /// Artifact path for a cell (where `--out` points).
    #[must_use]
    pub fn artifact_path(&self, bin: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{}.json", Cache::stem(bin, key)))
    }

    /// Config path for a cell (where `--config` points).
    #[must_use]
    pub fn config_path(&self, bin: &str, key: u64) -> PathBuf {
        self.dir
            .join(format!("{}.config.json", Cache::stem(bin, key)))
    }

    /// Log path for a cell (captured stdout/stderr).
    #[must_use]
    pub fn log_path(&self, bin: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{}.log", Cache::stem(bin, key)))
    }

    /// Creates the cache directory.
    pub fn ensure(&self) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))
    }

    /// Returns the cached artifact text for a cell, verifying it parses
    /// and names `bin`; `None` on any miss (absent, truncated, stale).
    #[must_use]
    pub fn lookup(&self, bin: &str, key: u64) -> Option<String> {
        let text = std::fs::read_to_string(self.artifact_path(bin, key)).ok()?;
        verify(&text, bin).ok()?;
        Some(text)
    }
}

/// Checks that artifact `text` is well-formed JSON whose `experiment`
/// field is `bin`. Used both for cache lookups and to validate a
/// just-finished run before trusting its output.
pub fn verify(text: &str, bin: &str) -> Result<Json, String> {
    let json = Json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    match json.get("experiment").and_then(Json::as_str) {
        Some(name) if name == bin => Ok(json),
        Some(name) => Err(format!(
            "artifact names experiment `{name}`, expected `{bin}`"
        )),
        None => Err("artifact has no `experiment` field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> Cache {
        let dir = std::env::temp_dir().join(format!("vrun-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Cache::new(&dir);
        c.ensure().unwrap();
        c
    }

    #[test]
    fn stem_is_bin_plus_16_hex_digits() {
        assert_eq!(Cache::stem("exp_a", 0x1a), "exp_a-000000000000001a");
    }

    #[test]
    fn lookup_accepts_only_wellformed_matching_artifacts() {
        let c = temp_cache("lookup");
        assert!(c.lookup("exp_a", 7).is_none(), "absent = miss");

        std::fs::write(c.artifact_path("exp_a", 7), "{\"experiment\": \"exp_a\"").unwrap();
        assert!(c.lookup("exp_a", 7).is_none(), "truncated = miss");

        std::fs::write(
            c.artifact_path("exp_a", 7),
            "{\"experiment\": \"other\", \"table\": []}",
        )
        .unwrap();
        assert!(c.lookup("exp_a", 7).is_none(), "wrong experiment = miss");

        let good = "{\"experiment\": \"exp_a\", \"table\": []}";
        std::fs::write(c.artifact_path("exp_a", 7), good).unwrap();
        assert_eq!(c.lookup("exp_a", 7).as_deref(), Some(good));
    }
}
