//! Sweep-spec parsing: `sweeps/*.toml` → a validated [`Sweep`].
//!
//! A spec names a set of experiments (bench binaries), each with an
//! optional seed list and an optional parameter grid; `vrun` expands
//! the cross product into cells (see [`crate::plan`]). The grammar is
//! the shared TOML subset from [`vlint::toml`]:
//!
//! ```toml
//! [sweep]
//! name = "paper"          # required
//! pool = 4                # optional: max concurrent cells
//! timeout_secs = 120      # optional: per-cell wall-clock limit
//!
//! [[experiment]]
//! bin = "exp_cluster_usage"   # required: crates/bench/src/bin/<bin>.rs
//! name = "usage_scale"        # optional: results/<name>.json (default: bin)
//! seeds = [1985, 1986]        # optional: one cell per seed
//! timeout_secs = 300          # optional: override the sweep default
//! [experiment.grid]           # optional: cartesian parameter grid
//! workstations = [8, 16, 24]
//! hours = [1.0, 3.0]
//! ```
//!
//! Every key is checked; unknown keys, wrong value types, and duplicate
//! experiment names are `file:line` errors, same contract as `lint.toml`
//! parsing.

use vlint::toml::{TomlDoc, TomlTable, TomlValue};

/// Default per-cell timeout when neither the sweep nor the experiment
/// sets one.
pub const DEFAULT_TIMEOUT_SECS: u64 = 120;

/// Default bound on concurrently running cells.
pub const DEFAULT_POOL: usize = 4;

/// A parsed, validated sweep specification.
#[derive(Debug)]
pub struct Sweep {
    /// Sweep name (used in progress output only).
    pub name: String,
    /// Maximum number of cells running at once.
    pub pool: usize,
    /// Per-cell timeout unless an experiment overrides it.
    pub timeout_secs: u64,
    /// The experiments, in spec order.
    pub experiments: Vec<Experiment>,
}

/// One `[[experiment]]` entry: a bench binary plus the axes swept over.
#[derive(Debug)]
pub struct Experiment {
    /// Binary name under `crates/bench/src/bin/`.
    pub bin: String,
    /// Consolidated artifact name: `results/<name>.json`. Defaults to
    /// `bin`; must be unique across the sweep.
    pub name: String,
    /// Seed axis — one cell per seed. Empty = the binary's built-in
    /// default seed (no `seed` key in the cell config).
    pub seeds: Vec<u64>,
    /// Grid axes in spec order: `(key, values)`; the cells cover the
    /// cartesian product of all axes.
    pub grid: Vec<(String, Vec<TomlValue>)>,
    /// Per-cell timeout for this experiment.
    pub timeout_secs: u64,
    /// Spec line of the `[[experiment]]` header, for error messages.
    pub line: usize,
}

impl Sweep {
    /// Loads and validates a sweep spec from `path`.
    pub fn load(path: &std::path::Path) -> Result<Sweep, String> {
        Sweep::from_doc(&TomlDoc::load(path)?, &origin_of(path))
    }

    /// Parses a sweep spec from text; errors carry `origin:line`.
    pub fn parse(text: &str, origin: &str) -> Result<Sweep, String> {
        Sweep::from_doc(&TomlDoc::parse(text, origin)?, origin)
    }

    fn from_doc(doc: &TomlDoc, origin: &str) -> Result<Sweep, String> {
        let mut name = None;
        let mut pool = DEFAULT_POOL;
        let mut timeout = DEFAULT_TIMEOUT_SECS;
        let mut experiments: Vec<Experiment> = Vec::new();

        for table in &doc.tables {
            match table.name().as_str() {
                "sweep" => {
                    if table.array {
                        return Err(format!(
                            "{origin}:{}: [sweep] cannot be an array of tables",
                            table.line
                        ));
                    }
                    for (key, value, line) in &table.entries {
                        match key.as_str() {
                            "name" => name = Some(expect_str(value, origin, *line, key)?),
                            "pool" => pool = expect_count(value, origin, *line, key)? as usize,
                            "timeout_secs" => timeout = expect_count(value, origin, *line, key)?,
                            _ => {
                                return Err(format!("{origin}:{line}: unknown [sweep] key `{key}`"))
                            }
                        }
                    }
                }
                "experiment" => {
                    if !table.array {
                        return Err(format!(
                            "{origin}:{}: use [[experiment]] (array of tables), not [experiment]",
                            table.line
                        ));
                    }
                    experiments.push(parse_experiment(table, origin)?);
                }
                "experiment.grid" => {
                    let exp = experiments.last_mut().ok_or(format!(
                        "{origin}:{}: [experiment.grid] before any [[experiment]]",
                        table.line
                    ))?;
                    if !exp.grid.is_empty() {
                        return Err(format!(
                            "{origin}:{}: duplicate [experiment.grid] for `{}`",
                            table.line, exp.bin
                        ));
                    }
                    exp.grid = parse_grid(table, origin)?;
                }
                other => {
                    return Err(format!(
                        "{origin}:{}: unknown section [{other}]",
                        table.line
                    ))
                }
            }
        }

        let name = name.ok_or(format!("{origin}: missing [sweep] name"))?;
        if experiments.is_empty() {
            return Err(format!("{origin}: no [[experiment]] entries"));
        }
        for exp in &mut experiments {
            if exp.timeout_secs == 0 {
                exp.timeout_secs = timeout;
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for exp in &experiments {
            if !seen.insert(exp.name.clone()) {
                return Err(format!(
                    "{origin}:{}: duplicate experiment name `{}` (set a distinct `name`)",
                    exp.line, exp.name
                ));
            }
        }
        Ok(Sweep {
            name,
            pool: pool.max(1),
            timeout_secs: timeout,
            experiments,
        })
    }
}

fn parse_experiment(table: &TomlTable, origin: &str) -> Result<Experiment, String> {
    let mut bin = None;
    let mut name = None;
    let mut seeds = Vec::new();
    let mut timeout = 0u64; // 0 = inherit the sweep default.
    for (key, value, line) in &table.entries {
        match key.as_str() {
            "bin" => bin = Some(expect_str(value, origin, *line, key)?),
            "name" => name = Some(expect_str(value, origin, *line, key)?),
            "timeout_secs" => timeout = expect_count(value, origin, *line, key)?,
            "seeds" => {
                let list = value.as_list().ok_or(format!(
                    "{origin}:{line}: `seeds` must be a list of integers, got {}",
                    value.type_name()
                ))?;
                for v in list {
                    let i = v.as_int().ok_or(format!(
                        "{origin}:{line}: `seeds` entries must be integers, got {}",
                        v.type_name()
                    ))?;
                    seeds.push(
                        u64::try_from(i)
                            .map_err(|_| format!("{origin}:{line}: negative seed {i}"))?,
                    );
                }
            }
            _ => {
                return Err(format!(
                    "{origin}:{line}: unknown [[experiment]] key `{key}`"
                ))
            }
        }
    }
    let bin = bin.ok_or(format!(
        "{origin}:{}: [[experiment]] missing `bin`",
        table.line
    ))?;
    Ok(Experiment {
        name: name.unwrap_or_else(|| bin.clone()),
        bin,
        seeds,
        grid: Vec::new(),
        timeout_secs: timeout,
        line: table.line,
    })
}

fn parse_grid(table: &TomlTable, origin: &str) -> Result<Vec<(String, Vec<TomlValue>)>, String> {
    let mut grid = Vec::new();
    for (key, value, line) in &table.entries {
        if key == "seed" {
            return Err(format!(
                "{origin}:{line}: put the seed axis in `seeds`, not the grid"
            ));
        }
        let list = value.as_list().ok_or(format!(
            "{origin}:{line}: grid axis `{key}` must be a list, got {}",
            value.type_name()
        ))?;
        if list.is_empty() {
            return Err(format!("{origin}:{line}: grid axis `{key}` is empty"));
        }
        for v in list {
            if v.as_list().is_some() {
                return Err(format!(
                    "{origin}:{line}: grid axis `{key}` holds a nested list; axes are flat"
                ));
            }
        }
        grid.push((key.clone(), list.to_vec()));
    }
    Ok(grid)
}

fn expect_str(value: &TomlValue, origin: &str, line: usize, key: &str) -> Result<String, String> {
    value.as_str().map(str::to_string).ok_or(format!(
        "{origin}:{line}: `{key}` must be a string, got {}",
        value.type_name()
    ))
}

fn expect_count(value: &TomlValue, origin: &str, line: usize, key: &str) -> Result<u64, String> {
    match value.as_int() {
        Some(i) if i > 0 => Ok(i as u64),
        Some(i) => Err(format!(
            "{origin}:{line}: `{key}` must be positive, got {i}"
        )),
        None => Err(format!(
            "{origin}:{line}: `{key}` must be an integer, got {}",
            value.type_name()
        )),
    }
}

fn origin_of(path: &std::path::Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"
[sweep]
name = "demo"
pool = 2

[[experiment]]
bin = "exp_a"

[[experiment]]
bin = "exp_b"
seeds = [1, 2]
timeout_secs = 9
[experiment.grid]
hours = [1.0, 3.0]
mode = ["fast", "slow"]
"#;

    #[test]
    fn parses_a_full_spec() {
        let s = Sweep::parse(OK, "demo.toml").unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.pool, 2);
        assert_eq!(s.timeout_secs, DEFAULT_TIMEOUT_SECS);
        assert_eq!(s.experiments.len(), 2);
        assert_eq!(s.experiments[0].bin, "exp_a");
        assert_eq!(s.experiments[0].timeout_secs, DEFAULT_TIMEOUT_SECS);
        let b = &s.experiments[1];
        assert_eq!(b.seeds, [1, 2]);
        assert_eq!(b.timeout_secs, 9);
        assert_eq!(b.grid.len(), 2);
        assert_eq!(b.grid[0].0, "hours");
        assert_eq!(b.grid[1].1.len(), 2);
    }

    #[test]
    fn rejects_bad_specs_with_line_numbers() {
        for (text, needle) in [
            ("[sweep]\nname = \"x\"\n", "no [[experiment]]"),
            ("[[experiment]]\nbin = \"b\"\n", "missing [sweep] name"),
            ("[sweep]\nname = 3\n", "s.toml:2: `name` must be a string"),
            (
                "[sweep]\nname = \"x\"\n[experiment]\nbin = \"b\"\n",
                "s.toml:3: use [[experiment]]",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbean = \"b\"\n",
                "s.toml:4: unknown [[experiment]] key `bean`",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbin = \"b\"\nseeds = [-1]\n",
                "s.toml:5: negative seed",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbin = \"b\"\nseeds = 7\n",
                "s.toml:5: `seeds` must be a list",
            ),
            (
                "[sweep]\nname = \"x\"\n[experiment.grid]\na = [1]\n",
                "s.toml:3: [experiment.grid] before any [[experiment]]",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbin = \"b\"\n[experiment.grid]\na = 1\n",
                "s.toml:6: grid axis `a` must be a list",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbin = \"b\"\n[experiment.grid]\nseed = [1]\n",
                "s.toml:6: put the seed axis in `seeds`",
            ),
            (
                "[sweep]\nname = \"x\"\npool = 0\n",
                "s.toml:3: `pool` must be positive",
            ),
            (
                "[sweep]\nname = \"x\"\n[[experiment]]\nbin = \"b\"\n[[experiment]]\nbin = \"b\"\n",
                "duplicate experiment name `b`",
            ),
            (
                "[sweep]\nname = \"x\"\n[unknown]\n",
                "s.toml:3: unknown section [unknown]",
            ),
        ] {
            let err = Sweep::parse(text, "s.toml").unwrap_err();
            assert!(
                err.contains(needle),
                "spec {text:?}: expected {needle:?} in {err:?}"
            );
        }
    }
}
