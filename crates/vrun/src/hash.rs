//! Cell identity: a 64-bit FNV-1a content hash over everything that can
//! change a cell's output — the schema version, the binary name, the
//! binary's executable bytes, and the canonical config JSON.
//!
//! The simulation is deterministic, so this hash *is* the result
//! identity: same binary + same config ⇒ same artifact. A rebuilt
//! binary (new code) or an edited axis value changes the hash and the
//! cell re-runs; anything else is a cache hit. Seeds live inside the
//! config text, so they need no special casing.

/// Bump when the cache-entry layout changes incompatibly; every old
/// entry then misses and the sweep re-runs cleanly.
pub const SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// The cache key for one cell. Sections are length-prefixed so
/// `("ab", "c")` and `("a", "bc")` cannot collide.
#[must_use]
pub fn cell_key(bin_name: &str, bin_bytes: &[u8], config_json: &str) -> u64 {
    let mut h = Fnv::new();
    for section in [
        &SCHEMA_VERSION.to_le_bytes()[..],
        bin_name.as_bytes(),
        bin_bytes,
        config_json.as_bytes(),
    ] {
        h.write(&(section.len() as u64).to_le_bytes());
        h.write(section);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values for the standard 64-bit FNV-1a parameters.
        let mut h = Fnv::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn every_input_component_matters() {
        let base = cell_key("exp", b"bytes", "{}\n");
        assert_ne!(base, cell_key("exp2", b"bytes", "{}\n"));
        assert_ne!(base, cell_key("exp", b"bytes2", "{}\n"));
        assert_ne!(base, cell_key("exp", b"bytes", "{\"seed\": 1}\n"));
        // Length prefixing: shifting a byte across a boundary changes it.
        assert_ne!(cell_key("ab", b"c", "{}"), cell_key("a", b"bc", "{}"));
        // And it is a pure function.
        assert_eq!(base, cell_key("exp", b"bytes", "{}\n"));
    }
}
