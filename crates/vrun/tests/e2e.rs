//! End-to-end sweep runs against fake bench binaries (shell scripts
//! speaking the `--config`/`--out` contract): cache cold → warm →
//! invalidated, consolidation shapes, and failure reporting.
#![cfg(unix)]

use std::path::{Path, PathBuf};

use vrun::spec::Sweep;
use vrun::{run_sweep, CellOutcome, RunOptions};

/// A scratch workspace with a bin dir and a results dir.
struct Rig {
    root: PathBuf,
}

impl Rig {
    fn new(tag: &str) -> Rig {
        let root = std::env::temp_dir().join(format!("vrun-e2e-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("bin")).expect("bin dir");
        std::fs::create_dir_all(root.join("results")).expect("results dir");
        Rig { root }
    }

    /// Installs a fake bench binary: parses `--config`/`--out`, writes a
    /// `{experiment, table, run}` artifact echoing its config.
    fn fake_bin(&self, name: &str) {
        let body = format!(
            r#"#!/bin/sh
out=""; cfg=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --config) cfg="$2"; shift 2;;
    --out) out="$2"; shift 2;;
    *) shift;;
  esac
done
printf '{{"experiment": "{name}", "table": [{{"cfg": %s}}], "run": {{"sim_events_total": 7}}}}' "$(tr -d '\n ' < "$cfg")" > "$out"
"#
        );
        self.install(name, &body);
    }

    fn install(&self, name: &str, body: &str) {
        use std::os::unix::fs::PermissionsExt;
        let path = self.root.join("bin").join(name);
        std::fs::write(&path, body).expect("write fake bin");
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).expect("chmod");
    }

    fn opts(&self) -> RunOptions {
        RunOptions {
            bin_dir: self.root.join("bin"),
            results_dir: self.root.join("results"),
            ..RunOptions::default()
        }
    }

    fn results(&self) -> PathBuf {
        self.root.join("results")
    }
}

fn sweep(text: &str) -> Sweep {
    Sweep::parse(text, "e2e.toml").expect("spec parses")
}

fn read_json(path: &Path) -> vsim::Json {
    vsim::Json::parse(&std::fs::read_to_string(path).expect("artifact read"))
        .expect("artifact parses")
}

#[test]
fn second_run_is_all_cache_hits_until_inputs_change() {
    let rig = Rig::new("cache");
    rig.fake_bin("exp_fake");
    let spec = "[sweep]\nname = \"t\"\n[[experiment]]\nbin = \"exp_fake\"\nseeds = [1, 2]\n";

    let cold = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(cold.ran(), 2, "{}", cold.line());
    assert_eq!(cold.hits(), 0);

    let warm = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(warm.hits(), 2, "{}", warm.line());
    assert_eq!(warm.ran(), 0);

    // A new seed re-runs only the new cell.
    let grown = "[sweep]\nname = \"t\"\n[[experiment]]\nbin = \"exp_fake\"\nseeds = [1, 2, 3]\n";
    let s = run_sweep(&sweep(grown), &rig.opts()).unwrap();
    assert_eq!(s.hits(), 2);
    assert_eq!(s.ran(), 1);

    // A changed binary invalidates everything.
    rig.fake_bin("exp_fake"); // same behaviour...
    rig.install(
        "exp_fake",
        "#!/bin/sh\nwhile [ \"$#\" -gt 0 ]; do case \"$1\" in --out) out=\"$2\"; shift 2;; *) shift;; esac; done\nprintf '{\"experiment\": \"exp_fake\", \"table\": [{\"v\": 2}]}' > \"$out\"\n",
    );
    let rebuilt = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(rebuilt.ran(), 2, "{}", rebuilt.line());

    // --force re-runs despite hits.
    let forced = run_sweep(
        &sweep(spec),
        &RunOptions {
            force: true,
            ..rig.opts()
        },
    )
    .unwrap();
    assert_eq!(forced.ran(), 2);
}

#[test]
fn consolidation_copies_single_cells_and_merges_grids() {
    let rig = Rig::new("consolidate");
    rig.fake_bin("exp_solo");
    rig.fake_bin("exp_grid");
    let spec = r#"
[sweep]
name = "t"

[[experiment]]
bin = "exp_solo"

[[experiment]]
bin = "exp_grid"
name = "grid_scale"
seeds = [5]
[experiment.grid]
hours = [1.0, 2.0]
"#;
    let s = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(s.failed(), 0, "{}", s.line());

    // Single cell: verbatim bench schema (experiment/table/run).
    let solo = read_json(&rig.results().join("exp_solo.json"));
    assert_eq!(
        solo.get("experiment").and_then(vsim::Json::as_str),
        Some("exp_solo")
    );
    assert!(solo.get("table").is_some());

    // Multi cell: consolidated under the experiment's `name`.
    let grid = read_json(&rig.results().join("grid_scale.json"));
    assert_eq!(
        grid.get("bin").and_then(vsim::Json::as_str),
        Some("exp_grid")
    );
    let cells = match grid.get("cells") {
        Some(vsim::Json::Arr(c)) => c,
        other => panic!("cells: {other:?}"),
    };
    assert_eq!(cells.len(), 2);
    let cfg = cells[1].get("config").unwrap();
    assert_eq!(cfg.get("seed").and_then(vsim::Json::as_f64), Some(5.0));
    assert_eq!(cfg.get("hours").and_then(vsim::Json::as_f64), Some(2.0));
    assert!(cells[0].get("table").is_some());
    assert!(cells[0].get("hash").is_some());
}

#[test]
fn failures_are_reported_not_cached() {
    let rig = Rig::new("fail");
    rig.install("exp_bad", "#!/bin/sh\nexit 4\n");
    rig.install(
        "exp_liar",
        "#!/bin/sh\nexit 0\n", // exits 0 but writes no artifact
    );
    let spec = "[sweep]\nname = \"t\"\n[[experiment]]\nbin = \"exp_bad\"\n[[experiment]]\nbin = \"exp_liar\"\n";
    let s = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(s.failed(), 2, "{}", s.line());
    let bad = &s.cells[0].1;
    assert!(
        matches!(bad, CellOutcome::Failed(e) if e.contains("exit status 4")),
        "{bad:?}"
    );
    let liar = &s.cells[1].1;
    assert!(
        matches!(liar, CellOutcome::Failed(e) if e.contains("no valid artifact")),
        "{liar:?}"
    );
    // No consolidated artifacts for failed experiments...
    assert!(!rig.results().join("exp_bad.json").exists());
    // ...and a re-run tries again (failures are never cache hits).
    let again = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(again.hits(), 0);

    // A missing binary is an environment error, not a cell failure.
    let missing = "[sweep]\nname = \"t\"\n[[experiment]]\nbin = \"exp_ghost\"\n";
    let err = run_sweep(&sweep(missing), &rig.opts()).unwrap_err();
    assert!(err.contains("cargo build --release"), "{err}");
}

#[test]
fn timeouts_kill_the_cell() {
    let rig = Rig::new("timeout");
    rig.install("exp_hang", "#!/bin/sh\nsleep 30\n");
    let spec = "[sweep]\nname = \"t\"\ntimeout_secs = 1\n[[experiment]]\nbin = \"exp_hang\"\n";
    let s = run_sweep(&sweep(spec), &rig.opts()).unwrap();
    assert_eq!(s.cells[0].1, CellOutcome::TimedOut, "{}", s.line());
}
