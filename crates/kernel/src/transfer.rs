//! Bulk-transfer (CopyTo blast) bookkeeping.
//!
//! V moves address-space contents with CopyTo/CopyFrom, transferring "32
//! kilobytes or more as a unit over the network" (§3.1). The sender paces
//! units at the calibrated end-to-end rate (the CPUs, not the wire, are the
//! bottleneck — see [`vsim::calib::bulk_copy_time`]); each unit is
//! acknowledged and retransmitted on timeout. This module holds the pure
//! state machine; the kernel wires it to packets and timers.

use vmem::SpaceId;
use vnet::HostAddr;
use vsim::calib::PAGE_BYTES;

use crate::ids::{LogicalHostId, ProcessId};
use crate::packet::XferId;

/// Default bulk unit: V's 32 KB blast.
pub const XFER_UNIT_BYTES: u64 = 32 * 1024;

/// One unit of a transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpec {
    /// Bytes carried.
    pub bytes: u64,
    /// Destination page indices carried by this unit.
    pub pages: Vec<u32>,
}

/// Splits a page list into transfer units of at most `unit_bytes` each.
///
/// # Panics
///
/// Panics if `unit_bytes` is smaller than one page.
pub fn split_units(pages: &[u32], unit_bytes: u64) -> Vec<UnitSpec> {
    assert!(unit_bytes >= PAGE_BYTES, "unit smaller than a page");
    let per_unit = (unit_bytes / PAGE_BYTES) as usize;
    pages
        .chunks(per_unit)
        .map(|chunk| UnitSpec {
            bytes: chunk.len() as u64 * PAGE_BYTES,
            pages: chunk.to_vec(),
        })
        .collect()
}

/// Progress state of one unit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitProgress {
    /// Acknowledged by the receiver.
    pub acked: bool,
    /// The CPU pacing interval has elapsed.
    pub paced: bool,
}

/// An outbound transfer.
#[derive(Debug)]
pub struct OutXfer {
    /// Transfer id.
    pub id: XferId,
    /// Process to notify on completion.
    pub initiator: ProcessId,
    /// Destination logical host.
    pub to_lh: LogicalHostId,
    /// Destination space.
    pub to_space: SpaceId,
    /// Destination physical host.
    pub dst_host: HostAddr,
    units: Vec<UnitSpec>,
    current: usize,
    progress: UnitProgress,
    /// Retransmissions of the current unit.
    pub retries: u32,
    /// Set when this transfer answers a CopyFrom: the puller's id,
    /// stamped on every data unit.
    pub pull_tag: Option<XferId>,
}

impl OutXfer {
    /// Builds a transfer over the given units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is empty (zero-byte copies complete without a
    /// transfer).
    pub fn new(
        id: XferId,
        initiator: ProcessId,
        to_lh: LogicalHostId,
        to_space: SpaceId,
        dst_host: HostAddr,
        units: Vec<UnitSpec>,
    ) -> Self {
        assert!(!units.is_empty(), "empty transfer");
        OutXfer {
            id,
            initiator,
            to_lh,
            to_space,
            dst_host,
            units,
            current: 0,
            progress: UnitProgress {
                acked: false,
                paced: false,
            },
            retries: 0,
            pull_tag: None,
        }
    }

    /// Index of the unit in flight.
    pub fn current_unit(&self) -> u32 {
        self.current as u32
    }

    /// The unit in flight.
    pub fn unit(&self) -> &UnitSpec {
        &self.units[self.current]
    }

    /// True when the current unit is the last.
    pub fn on_last_unit(&self) -> bool {
        self.current + 1 == self.units.len()
    }

    /// Total bytes across all units.
    pub fn total_bytes(&self) -> u64 {
        self.units.iter().map(|u| u.bytes).sum()
    }

    /// True if the current unit has been acknowledged.
    pub fn current_acked(&self) -> bool {
        self.progress.acked
    }

    /// Records the receiver's ack for `unit`; stale acks are ignored.
    /// Returns `true` if the current unit is now both acked and paced.
    pub fn ack(&mut self, unit: u32) -> bool {
        if unit == self.current_unit() {
            self.progress.acked = true;
        }
        self.progress.acked && self.progress.paced
    }

    /// Records that the pacing interval for `unit` elapsed; stale timers
    /// are ignored. Returns `true` if the current unit is now complete.
    pub fn paced(&mut self, unit: u32) -> bool {
        if unit == self.current_unit() {
            self.progress.paced = true;
        }
        self.progress.acked && self.progress.paced
    }

    /// Moves to the next unit. Returns `false` when the transfer is done.
    ///
    /// # Panics
    ///
    /// Panics if the current unit is not complete.
    pub fn advance(&mut self) -> bool {
        assert!(
            self.progress.acked && self.progress.paced,
            "advancing past an incomplete unit"
        );
        self.current += 1;
        self.progress = UnitProgress {
            acked: false,
            paced: false,
        };
        self.retries = 0;
        self.current < self.units.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_units_respects_unit_size() {
        // 48 pages at 2 KB = 96 KB into 32 KB units = 16 pages per unit.
        let pages: Vec<u32> = (0..48).collect();
        let units = split_units(&pages, XFER_UNIT_BYTES);
        assert_eq!(units.len(), 3);
        assert!(units.iter().all(|u| u.pages.len() == 16));
        assert!(units.iter().all(|u| u.bytes == 32 * 1024));
    }

    #[test]
    fn split_units_handles_remainder() {
        let pages: Vec<u32> = (0..17).collect();
        let units = split_units(&pages, XFER_UNIT_BYTES);
        assert_eq!(units.len(), 2);
        assert_eq!(units[1].pages.len(), 1);
        assert_eq!(units[1].bytes, PAGE_BYTES);
    }

    #[test]
    fn split_units_empty() {
        assert!(split_units(&[], XFER_UNIT_BYTES).is_empty());
    }

    #[test]
    #[should_panic(expected = "smaller than a page")]
    fn split_units_rejects_tiny_units() {
        split_units(&[0], 100);
    }

    fn xfer(units: usize) -> OutXfer {
        let pages: Vec<u32> = (0..(units as u32 * 16)).collect();
        OutXfer::new(
            XferId(1),
            ProcessId::new(LogicalHostId(1), 16),
            LogicalHostId(2),
            SpaceId(0),
            HostAddr(1),
            split_units(&pages, XFER_UNIT_BYTES),
        )
    }

    #[test]
    fn ack_then_pace_completes_unit() {
        let mut x = xfer(2);
        assert!(!x.ack(0));
        assert!(x.paced(0));
        assert!(x.advance(), "one unit left");
        assert_eq!(x.current_unit(), 1);
        assert!(x.on_last_unit());
        assert!(!x.paced(1), "pace alone does not complete the unit");
        assert!(!x.ack(0), "stale ack ignored");
        assert!(x.ack(1));
        assert!(!x.advance(), "transfer done");
    }

    #[test]
    fn stale_pace_is_ignored() {
        let mut x = xfer(2);
        x.ack(0);
        x.paced(0);
        x.advance();
        assert!(!x.paced(0), "timer from the previous unit");
        assert_eq!(x.current_unit(), 1);
    }

    #[test]
    #[should_panic(expected = "incomplete unit")]
    fn advance_requires_completion() {
        let mut x = xfer(2);
        x.ack(0);
        x.advance();
    }

    #[test]
    fn total_bytes_sums_units() {
        let x = xfer(3);
        assert_eq!(x.total_bytes(), 3 * 32 * 1024);
    }
}
