//! Process, logical-host and group identifiers.
//!
//! §2.1 of the paper: "V address spaces and their associated processes are
//! grouped into logical hosts. A V process identifier is structured as a
//! (logical-host-id, local-index) pair." Process-group identifiers are
//! "identical in format to a process-id". Well-known local indices let any
//! program reach the kernel server and program manager of whatever
//! workstation it currently runs on, location-independently — the
//! mechanism that keeps the execution environment network-transparent.

use core::fmt;

/// A logical host: the unit of migration.
///
/// Logical-host ids are globally unique and never reused. Migration moves a
/// logical host between physical hosts; its id (and therefore every process
/// id inside it) is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogicalHostId(pub u32);

impl fmt::Display for LogicalHostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lh{}", self.0)
    }
}

/// Well-known local index of the kernel server within every logical host's
/// local group space (§2.1).
pub const KERNEL_SERVER_INDEX: u32 = 1;

/// Well-known local index of the program manager.
pub const PROGRAM_MANAGER_INDEX: u32 = 2;

/// First index handed out to ordinary processes.
pub const FIRST_USER_INDEX: u32 = 16;

/// A V process identifier: `(logical-host-id, local-index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId {
    /// The logical host this process belongs to.
    pub lh: LogicalHostId,
    /// Index within the logical host.
    pub index: u32,
}

impl ProcessId {
    /// Builds a process id.
    pub const fn new(lh: LogicalHostId, index: u32) -> Self {
        ProcessId { lh, index }
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.lh, self.index)
    }
}

/// A process-group identifier — same format as a process id (§2.1).
///
/// Two kinds exist:
///
/// * **Local groups**: `(lh, well-known-index)` naming the kernel server or
///   program manager of the workstation where `lh` currently resides.
///   These contain a single member and are resolved by the receiving
///   kernel.
/// * **Global groups**: well-known groups with network-wide membership,
///   such as the program-manager group used for host selection. These map
///   to Ethernet multicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub ProcessId);

/// Reserved logical-host id 0 carries global well-known groups.
pub const GLOBAL_GROUP_LH: LogicalHostId = LogicalHostId(0);

impl GroupId {
    /// The well-known program-manager group every program manager joins
    /// (§2: "Every program manager belongs to the well-known program
    /// manager group").
    pub const PROGRAM_MANAGERS: GroupId =
        GroupId(ProcessId::new(GLOBAL_GROUP_LH, PROGRAM_MANAGER_INDEX));

    /// The local group naming the kernel server of whatever workstation
    /// hosts `lh`.
    pub const fn kernel_server_of(lh: LogicalHostId) -> GroupId {
        GroupId(ProcessId::new(lh, KERNEL_SERVER_INDEX))
    }

    /// The local group naming the program manager of whatever workstation
    /// hosts `lh`.
    pub const fn program_manager_of(lh: LogicalHostId) -> GroupId {
        GroupId(ProcessId::new(lh, PROGRAM_MANAGER_INDEX))
    }

    /// True if this is a local (per-logical-host, single-member) group.
    pub fn is_local(self) -> bool {
        self.0.lh != GLOBAL_GROUP_LH
            && matches!(self.0.index, KERNEL_SERVER_INDEX | PROGRAM_MANAGER_INDEX)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp:{}", self.0)
    }
}

/// Destination of a Send: a specific process or a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// A single process.
    Process(ProcessId),
    /// A process group.
    Group(GroupId),
}

impl Destination {
    /// The logical host this destination routes through, if routing is by
    /// logical host (processes and local groups).
    pub fn routing_lh(self) -> Option<LogicalHostId> {
        match self {
            Destination::Process(p) => Some(p.lh),
            Destination::Group(g) if g.is_local() => Some(g.0.lh),
            Destination::Group(_) => None,
        }
    }
}

impl fmt::Display for Destination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Destination::Process(p) => write!(f, "{p}"),
            Destination::Group(g) => write!(f, "{g}"),
        }
    }
}

impl From<ProcessId> for Destination {
    fn from(p: ProcessId) -> Self {
        Destination::Process(p)
    }
}

impl From<GroupId> for Destination {
    fn from(g: GroupId) -> Self {
        Destination::Group(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display() {
        let p = ProcessId::new(LogicalHostId(7), 3);
        assert_eq!(p.to_string(), "lh7.3");
    }

    #[test]
    fn local_groups_resolve_per_logical_host() {
        let lh = LogicalHostId(9);
        let ks = GroupId::kernel_server_of(lh);
        assert!(ks.is_local());
        assert_eq!(ks.0.index, KERNEL_SERVER_INDEX);
        let pm = GroupId::program_manager_of(lh);
        assert!(pm.is_local());
        assert_eq!(pm.0.index, PROGRAM_MANAGER_INDEX);
        assert_ne!(ks, pm);
    }

    #[test]
    fn program_manager_group_is_global() {
        assert!(!GroupId::PROGRAM_MANAGERS.is_local());
        assert_eq!(
            Destination::Group(GroupId::PROGRAM_MANAGERS).routing_lh(),
            None
        );
    }

    #[test]
    fn routing_lh_for_processes_and_local_groups() {
        let lh = LogicalHostId(4);
        let pid = ProcessId::new(lh, 20);
        assert_eq!(Destination::Process(pid).routing_lh(), Some(lh));
        assert_eq!(
            Destination::Group(GroupId::kernel_server_of(lh)).routing_lh(),
            Some(lh)
        );
    }

    #[test]
    fn group_id_same_format_as_pid() {
        // The paper's representation pun: a group id is a pid.
        let g = GroupId::kernel_server_of(LogicalHostId(3));
        let as_pid: ProcessId = g.0;
        assert_eq!(as_pid.lh, LogicalHostId(3));
    }

    #[test]
    fn conversions_into_destination() {
        let pid = ProcessId::new(LogicalHostId(1), 16);
        let d: Destination = pid.into();
        assert_eq!(d, Destination::Process(pid));
        let d: Destination = GroupId::PROGRAM_MANAGERS.into();
        assert!(matches!(d, Destination::Group(_)));
    }
}
