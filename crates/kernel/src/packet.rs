//! The interkernel packet protocol.
//!
//! V kernels speak a small protocol directly over raw Ethernet: request and
//! reply packets carrying 32-byte messages, reply-pending ("breath of
//! life") packets that keep a blocked sender from timing out (§3.1),
//! bulk-data packets for CopyTo/CopyFrom blasts, and a new-binding
//! broadcast used as an optimization when a migrated logical host is
//! unfrozen (§3.1.4).
//!
//! Message bodies are opaque to the kernel (type parameter `X`): the kernel
//! routes by destination and never interprets payloads — exactly the
//! property that makes V's IPC network-transparent.

use vnet::HostAddr;
use vsim::SpanContext;

use crate::ids::{Destination, LogicalHostId, ProcessId};
use vmem::SpaceId;

/// Per-sender sequence number identifying one Send transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SendSeq(pub u64);

/// Identifier of one bulk transfer (CopyTo blast sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct XferId(pub u64);

/// Wire size of a V message packet: 32-byte message plus protocol header.
pub const MESSAGE_PACKET_BYTES: u64 = 64;

/// Wire size of a control packet (reply-pending, ack, binding note).
pub const CONTROL_PACKET_BYTES: u64 = 32;

/// One interkernel packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet<X> {
    /// A Send in flight: retransmitted until a Reply (or ReplyPending)
    /// arrives.
    Request {
        /// Sender's transaction number.
        seq: SendSeq,
        /// Sending process.
        from: ProcessId,
        /// Target process or group.
        to: Destination,
        /// Opaque message body.
        body: X,
        /// Appended data size (segment access), beyond the 32-byte message.
        data_bytes: u64,
        /// True when this is a retransmission (receivers answer frozen
        /// targets with reply-pending on each retransmission).
        retransmission: bool,
        /// The client-side causal span of this transaction; the serving
        /// kernel parents its handling span on it so one remote
        /// Send/Receive/Reply round trip is one span tree across stations.
        /// Observability metadata — adds no simulated wire bytes.
        span: SpanContext,
    },
    /// The reply completing a Send.
    Reply {
        /// Transaction this reply answers.
        seq: SendSeq,
        /// Replying process.
        from: ProcessId,
        /// Original sender.
        to: ProcessId,
        /// Opaque reply body.
        body: X,
        /// Appended reply data size.
        data_bytes: u64,
    },
    /// "Operation pending": the target exists but cannot reply yet (busy or
    /// frozen); resets the sender's abort timer without completing the
    /// Send.
    ReplyPending {
        /// Transaction concerned.
        seq: SendSeq,
        /// Process (or its kernel) answering.
        from: ProcessId,
        /// Blocked sender.
        to: ProcessId,
    },
    /// One unit of a bulk CopyTo blast (a train of ~1 KB data packets,
    /// modeled as a single frame of the unit's size).
    BulkData {
        /// Transfer this unit belongs to.
        xfer: XferId,
        /// Unit number within the transfer.
        unit: u32,
        /// True on the final unit.
        last: bool,
        /// Bytes in this unit.
        bytes: u64,
        /// Destination logical host.
        to_lh: LogicalHostId,
        /// Destination address space within that logical host.
        to_space: SpaceId,
        /// Pages carried (destination page indices).
        pages: Vec<u32>,
        /// When this transfer answers a CopyFrom, the puller's transfer
        /// id (so the pulling kernel can report completion).
        pull: Option<XferId>,
    },
    /// Acknowledgement of one bulk unit.
    BulkAck {
        /// Transfer acknowledged.
        xfer: XferId,
        /// Unit acknowledged.
        unit: u32,
        /// Receiver refused the unit (no such logical host/space).
        refused: bool,
    },
    /// CopyFrom: ask the kernel hosting `from_lh` to blast the given pages
    /// back to `(to_lh, to_space)`. The puller allocates `pull` and is
    /// notified by the `pull` tag on the arriving data.
    BulkPull {
        /// The puller's transfer id.
        pull: XferId,
        /// Source logical host.
        from_lh: LogicalHostId,
        /// Source space.
        from_space: SpaceId,
        /// Destination logical host (where the puller lives).
        to_lh: LogicalHostId,
        /// Destination space.
        to_space: SpaceId,
        /// Pages wanted.
        pages: Vec<u32>,
    },
    /// The pull target refused (unknown logical host or space).
    BulkPullNak {
        /// The refused pull.
        pull: XferId,
    },
    /// Broadcast when a migrated logical host is unfrozen on its new host
    /// — the §3.1.4 optimization that proactively updates binding caches.
    NewBinding {
        /// The rebound logical host.
        lh: LogicalHostId,
        /// Its new physical host.
        host: HostAddr,
    },
}

impl<X> Packet<X> {
    /// The wire payload size of this packet, driving serialization delay.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Packet::Request { data_bytes, .. } => MESSAGE_PACKET_BYTES + data_bytes,
            Packet::Reply { data_bytes, .. } => MESSAGE_PACKET_BYTES + data_bytes,
            Packet::ReplyPending { .. } => CONTROL_PACKET_BYTES,
            Packet::BulkData { bytes, .. } => CONTROL_PACKET_BYTES + bytes,
            Packet::BulkAck { .. } => CONTROL_PACKET_BYTES,
            Packet::BulkPull { pages, .. } => CONTROL_PACKET_BYTES + 4 * pages.len() as u64,
            Packet::BulkPullNak { .. } => CONTROL_PACKET_BYTES,
            Packet::NewBinding { .. } => CONTROL_PACKET_BYTES,
        }
    }

    /// The logical host of the packet's *source* process, when the packet
    /// identifies one — receivers use it to refresh their binding caches
    /// ("the cache is also updated based on incoming requests", §3.1.4).
    pub fn source_lh(&self) -> Option<LogicalHostId> {
        match self {
            Packet::Request { from, .. } => Some(from.lh),
            Packet::Reply { from, .. } => Some(from.lh),
            Packet::ReplyPending { from, .. } => Some(from.lh),
            Packet::NewBinding { lh, .. } => Some(*lh),
            Packet::BulkData { .. }
            | Packet::BulkAck { .. }
            | Packet::BulkPull { .. }
            | Packet::BulkPullNak { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LogicalHostId;

    fn pid(lh: u32, idx: u32) -> ProcessId {
        ProcessId::new(LogicalHostId(lh), idx)
    }

    #[test]
    fn wire_bytes_by_kind() {
        let req: Packet<u32> = Packet::Request {
            seq: SendSeq(1),
            from: pid(1, 16),
            to: Destination::Process(pid(2, 16)),
            body: 0,
            data_bytes: 0,
            retransmission: false,
            span: SpanContext::NONE,
        };
        assert_eq!(req.wire_bytes(), 64, "span adds no wire bytes");

        let reply: Packet<u32> = Packet::Reply {
            seq: SendSeq(1),
            from: pid(2, 16),
            to: pid(1, 16),
            body: 0,
            data_bytes: 100,
        };
        assert_eq!(reply.wire_bytes(), 164);

        let bulk: Packet<u32> = Packet::BulkData {
            xfer: XferId(1),
            unit: 0,
            last: false,
            bytes: 32 * 1024,
            to_lh: LogicalHostId(3),
            to_space: SpaceId(0),
            pages: vec![0, 1],
            pull: None,
        };
        assert_eq!(bulk.wire_bytes(), 32 * 1024 + 32);

        let pull: Packet<u32> = Packet::BulkPull {
            pull: XferId(2),
            from_lh: LogicalHostId(3),
            from_space: SpaceId(0),
            to_lh: LogicalHostId(1),
            to_space: SpaceId(0),
            pages: vec![0, 1, 2],
        };
        assert_eq!(pull.wire_bytes(), 32 + 12);

        let rp: Packet<u32> = Packet::ReplyPending {
            seq: SendSeq(1),
            from: pid(2, 16),
            to: pid(1, 16),
        };
        assert_eq!(rp.wire_bytes(), 32);
    }

    #[test]
    fn source_lh_for_cache_refresh() {
        let req: Packet<u32> = Packet::Request {
            seq: SendSeq(1),
            from: pid(5, 16),
            to: Destination::Process(pid(2, 16)),
            body: 0,
            data_bytes: 0,
            retransmission: false,
            span: SpanContext::NONE,
        };
        assert_eq!(req.source_lh(), Some(LogicalHostId(5)));

        let ack: Packet<u32> = Packet::BulkAck {
            xfer: XferId(1),
            unit: 0,
            refused: false,
        };
        assert_eq!(ack.source_lh(), None);

        let nb: Packet<u32> = Packet::NewBinding {
            lh: LogicalHostId(8),
            host: HostAddr(2),
        };
        assert_eq!(nb.source_lh(), Some(LogicalHostId(8)));
    }
}
