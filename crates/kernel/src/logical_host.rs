//! Logical hosts: the unit of migration.
//!
//! A logical host bundles address spaces and processes (§2.1). It can be
//! frozen: execution of its processes is suspended and external
//! interactions are deferred (§3.1). The kernel keeps a deferred-operation
//! queue per logical host; on unfreeze-in-place the queue is delivered, and
//! on deletion after a successful migration it is discarded — the remote
//! senders' retransmissions re-deliver to the new host (§3.1.3).

use std::collections::BTreeMap;

use vmem::{AddressSpace, SpaceId, SpaceLayout};

use crate::ids::{LogicalHostId, ProcessId, FIRST_USER_INDEX};
use crate::process::{Priority, Process};

/// A request deferred while its target logical host was frozen.
#[derive(Debug, Clone)]
pub struct DeferredRequest<X> {
    /// Transaction number of the deferred Send.
    pub seq: crate::packet::SendSeq,
    /// The blocked sender.
    pub from: ProcessId,
    /// The destination as originally addressed (needed to restart a local
    /// sender's Send after the logical host is deleted, §3.1.3).
    pub dest: crate::ids::Destination,
    /// Resolved target process.
    pub to: ProcessId,
    /// Message body.
    pub body: X,
    /// Appended data bytes.
    pub data_bytes: u64,
    /// True if the sender is local to the same workstation (its Send is
    /// restarted internally rather than by retransmission).
    pub local_sender: bool,
    /// The client's causal span, preserved across the freeze so the
    /// eventual delivery still parents its serve span correctly.
    pub span: vsim::SpanContext,
}

/// Descriptor of one process, as transferred in the kernel-state copy.
#[derive(Debug, Clone)]
pub struct ProcessDesc {
    /// Local index.
    pub index: u32,
    /// Team space.
    pub team: SpaceId,
    /// Priority.
    pub priority: Priority,
    /// IPC state at freeze time.
    pub state: crate::process::ProcessState,
}

/// Descriptor of a logical host's kernel state: what the migration's
/// "copying the kernel server and program manager state" step moves
/// (§3.1.3). Its size drives the 14 ms + 9 ms/object cost.
#[derive(Debug, Clone)]
pub struct LhDescriptor {
    /// The original logical-host id (re-imposed on the new copy).
    pub id: LogicalHostId,
    /// Process table.
    pub processes: Vec<ProcessDesc>,
    /// Address-space layouts, by space id.
    pub spaces: Vec<(SpaceId, SpaceLayout)>,
    /// Send-sequence counter, preserved across migration.
    pub next_send_seq: u64,
}

impl LhDescriptor {
    /// Number of kernel objects (processes + address spaces), the paper's
    /// unit for the 9 ms-per-object state-copy cost.
    pub fn object_count(&self) -> u64 {
        (self.processes.len() + self.spaces.len()) as u64
    }
}

/// A logical host resident on some workstation's kernel.
#[derive(Debug)]
pub struct LogicalHost<X> {
    id: LogicalHostId,
    frozen: bool,
    processes: BTreeMap<u32, Process>,
    spaces: BTreeMap<SpaceId, AddressSpace>,
    space_layouts: BTreeMap<SpaceId, SpaceLayout>,
    deferred: Vec<DeferredRequest<X>>,
    next_index: u32,
    next_space: u32,
    next_send_seq: u64,
}

impl<X> LogicalHost<X> {
    /// Creates an empty, unfrozen logical host.
    pub fn new(id: LogicalHostId) -> Self {
        LogicalHost {
            id,
            frozen: false,
            processes: BTreeMap::new(),
            spaces: BTreeMap::new(),
            space_layouts: BTreeMap::new(),
            deferred: Vec::new(),
            next_index: FIRST_USER_INDEX,
            next_space: 0,
            next_send_seq: 0,
        }
    }

    /// Allocates the next Send transaction number. Sequence numbers are
    /// per-logical-host (and migrate with it), so `(pid, seq)` pairs are
    /// unique for all time regardless of which kernel the process runs on.
    pub fn alloc_seq(&mut self) -> crate::packet::SendSeq {
        let s = crate::packet::SendSeq(self.next_send_seq);
        self.next_send_seq += 1;
        s
    }

    /// The next sequence number that would be allocated (for descriptors).
    pub fn next_send_seq(&self) -> u64 {
        self.next_send_seq
    }

    /// Restores the sequence counter (descriptor install).
    pub fn set_next_send_seq(&mut self, v: u64) {
        self.next_send_seq = self.next_send_seq.max(v);
    }

    /// The logical host's id.
    pub fn id(&self) -> LogicalHostId {
        self.id
    }

    /// True while frozen (migration in its final copy phase).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Freezes the logical host: execution suspends, external interactions
    /// defer.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Unfreezes it.
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    /// Creates a team: a new address space.
    pub fn create_space(&mut self, layout: SpaceLayout) -> SpaceId {
        let id = SpaceId(self.next_space);
        self.next_space += 1;
        self.spaces.insert(id, AddressSpace::new(id, layout));
        self.space_layouts.insert(id, layout);
        id
    }

    /// Creates a space with a caller-chosen id (used when installing a
    /// migrated descriptor so space ids survive migration).
    ///
    /// # Panics
    ///
    /// Panics if the id already exists.
    pub fn create_space_with_id(&mut self, id: SpaceId, layout: SpaceLayout) {
        assert!(
            !self.spaces.contains_key(&id),
            "space {id:?} already exists"
        );
        self.spaces.insert(id, AddressSpace::new(id, layout));
        self.space_layouts.insert(id, layout);
        self.next_space = self.next_space.max(id.0 + 1);
    }

    /// Creates a process in `team`, in the embryonic state if `embryo`.
    ///
    /// # Panics
    ///
    /// Panics if the team does not exist.
    pub fn create_process(&mut self, team: SpaceId, priority: Priority, embryo: bool) -> ProcessId {
        assert!(self.spaces.contains_key(&team), "no such team {team:?}");
        let index = self.next_index;
        self.next_index += 1;
        let pid = ProcessId::new(self.id, index);
        let p = if embryo {
            Process::new_embryo(pid, team, priority)
        } else {
            Process::new(pid, team, priority)
        };
        self.processes.insert(index, p);
        pid
    }

    /// Looks up a process by local index.
    pub fn process(&self, index: u32) -> Option<&Process> {
        self.processes.get(&index)
    }

    /// Mutable process lookup.
    pub fn process_mut(&mut self, index: u32) -> Option<&mut Process> {
        self.processes.get_mut(&index)
    }

    /// All live processes.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values().filter(|p| p.is_alive())
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes().count()
    }

    /// Looks up an address space.
    pub fn space(&self, id: SpaceId) -> Option<&AddressSpace> {
        self.spaces.get(&id)
    }

    /// Mutable address-space lookup.
    pub fn space_mut(&mut self, id: SpaceId) -> Option<&mut AddressSpace> {
        self.spaces.get_mut(&id)
    }

    /// All address spaces.
    pub fn spaces(&self) -> impl Iterator<Item = &AddressSpace> {
        self.spaces.values()
    }

    /// Number of address spaces.
    pub fn space_count(&self) -> usize {
        self.spaces.len()
    }

    /// Total memory of all spaces, in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.spaces.values().map(|s| s.total_bytes()).sum()
    }

    /// Queues a request deferred by freeze.
    pub fn defer(&mut self, req: DeferredRequest<X>) {
        self.deferred.push(req);
    }

    /// Iterates deferred requests without draining (duplicate detection).
    pub fn deferred_iter(&self) -> impl Iterator<Item = &DeferredRequest<X>> {
        self.deferred.iter()
    }

    /// Drains the deferred queue (on unfreeze or deletion).
    pub fn take_deferred(&mut self) -> Vec<DeferredRequest<X>> {
        std::mem::take(&mut self.deferred)
    }

    /// Number of deferred requests waiting.
    pub fn deferred_count(&self) -> usize {
        self.deferred.len()
    }

    /// Snapshot of the kernel state for migration (§3.1.3).
    pub fn descriptor(&self) -> LhDescriptor {
        LhDescriptor {
            id: self.id,
            processes: self
                .processes
                .values()
                .filter(|p| p.is_alive())
                .map(|p| ProcessDesc {
                    index: p.pid.index,
                    team: p.team,
                    priority: p.priority,
                    state: p.state,
                })
                .collect(),
            spaces: self
                .space_layouts
                .iter()
                .map(|(&id, &layout)| (id, layout))
                .collect(),
            next_send_seq: self.next_send_seq,
        }
    }

    /// Adopts a migrated identity onto this freshly initialized target:
    /// renames the logical host to the descriptor's id and installs the
    /// process table. Address spaces must already have been created (they
    /// received the pre-copied pages).
    ///
    /// # Panics
    ///
    /// Panics if this logical host already has processes, or if a
    /// descriptor space is missing.
    pub fn adopt(&mut self, desc: &LhDescriptor) {
        assert!(
            self.processes.is_empty(),
            "adopt on a logical host that already has processes"
        );
        for (sid, _) in &desc.spaces {
            assert!(
                self.spaces.contains_key(sid),
                "adopt: space {sid:?} was not pre-created"
            );
        }
        self.id = desc.id;
        for pd in &desc.processes {
            let pid = ProcessId::new(self.id, pd.index);
            let mut p = Process::new(pid, pd.team, pd.priority);
            p.state = pd.state;
            self.processes.insert(pd.index, p);
            self.next_index = self.next_index.max(pd.index + 1);
        }
        self.set_next_send_seq(desc.next_send_seq);
    }

    /// Installs a migrated descriptor: recreates spaces and processes and
    /// **renames this logical host to the descriptor's id** — the §3.1.3
    /// step "changing the logical-host-id of the new logical host to be the
    /// same as that of the original".
    ///
    /// # Panics
    ///
    /// Panics if this logical host already has processes or spaces (it must
    /// be the freshly created migration target).
    pub fn install_descriptor(&mut self, desc: &LhDescriptor) {
        assert!(
            self.processes.is_empty() && self.spaces.is_empty(),
            "install_descriptor on a non-empty logical host"
        );
        self.id = desc.id;
        for &(sid, layout) in &desc.spaces {
            self.create_space_with_id(sid, layout);
        }
        for pd in &desc.processes {
            let pid = ProcessId::new(self.id, pd.index);
            let mut p = Process::new(pid, pd.team, pd.priority);
            p.state = pd.state;
            self.processes.insert(pd.index, p);
            self.next_index = self.next_index.max(pd.index + 1);
        }
        self.set_next_send_seq(desc.next_send_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SendSeq;
    use vsim::calib::PAGE_BYTES;

    fn lh() -> LogicalHost<u32> {
        LogicalHost::new(LogicalHostId(5))
    }

    #[test]
    fn create_team_and_processes() {
        let mut h = lh();
        let team = h.create_space(SpaceLayout::tiny());
        let p1 = h.create_process(team, Priority::LOCAL, false);
        let p2 = h.create_process(team, Priority::GUEST, true);
        assert_eq!(p1.lh, LogicalHostId(5));
        assert_eq!(p1.index, FIRST_USER_INDEX);
        assert_eq!(p2.index, FIRST_USER_INDEX + 1);
        assert_eq!(h.process_count(), 2);
        assert_eq!(h.space_count(), 1);
        assert_eq!(h.total_bytes(), 7 * PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "no such team")]
    fn process_needs_team() {
        lh().create_process(SpaceId(9), Priority::LOCAL, false);
    }

    #[test]
    fn freeze_defer_drain() {
        let mut h = lh();
        assert!(!h.is_frozen());
        h.freeze();
        assert!(h.is_frozen());
        h.defer(DeferredRequest {
            seq: SendSeq(1),
            from: ProcessId::new(LogicalHostId(1), 16),
            dest: crate::ids::Destination::Process(ProcessId::new(LogicalHostId(5), 16)),
            to: ProcessId::new(LogicalHostId(5), 16),
            body: 42,
            data_bytes: 0,
            local_sender: false,
            span: vsim::SpanContext::NONE,
        });
        assert_eq!(h.deferred_count(), 1);
        let drained = h.take_deferred();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].body, 42);
        assert_eq!(h.deferred_count(), 0);
        h.unfreeze();
        assert!(!h.is_frozen());
    }

    #[test]
    fn descriptor_round_trip_preserves_identity() {
        let mut src = lh();
        let team = src.create_space(SpaceLayout::tiny());
        let team2 = src.create_space(SpaceLayout::tiny());
        let p1 = src.create_process(team, Priority::GUEST, false);
        let _p2 = src.create_process(team2, Priority::GUEST, false);

        let desc = src.descriptor();
        assert_eq!(desc.object_count(), 4); // 2 processes + 2 spaces.

        // New copy starts under a *different* id, then takes the original's.
        let mut dst: LogicalHost<u32> = LogicalHost::new(LogicalHostId(99));
        dst.install_descriptor(&desc);
        assert_eq!(dst.id(), LogicalHostId(5));
        assert_eq!(dst.process_count(), 2);
        assert_eq!(dst.space_count(), 2);
        // Pids are preserved exactly.
        assert!(dst.process(p1.index).is_some());
        assert_eq!(dst.process(p1.index).map(|p| p.pid), Some(p1));
        assert_eq!(dst.total_bytes(), src.total_bytes());
    }

    #[test]
    fn descriptor_skips_dead_processes() {
        let mut h = lh();
        let team = h.create_space(SpaceLayout::tiny());
        let p = h.create_process(team, Priority::LOCAL, false);
        h.process_mut(p.index).expect("exists").state = crate::process::ProcessState::Dead;
        assert_eq!(h.descriptor().processes.len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn install_requires_fresh_target() {
        let mut a = lh();
        a.create_space(SpaceLayout::tiny());
        let desc = a.descriptor();
        a.install_descriptor(&desc);
    }

    #[test]
    fn indices_never_reused_after_install() {
        let mut src = lh();
        let team = src.create_space(SpaceLayout::tiny());
        src.create_process(team, Priority::LOCAL, false);
        let desc = src.descriptor();
        let mut dst: LogicalHost<u32> = LogicalHost::new(LogicalHostId(99));
        dst.install_descriptor(&desc);
        let next = dst.create_process(SpaceId(0), Priority::LOCAL, false);
        assert_eq!(next.index, FIRST_USER_INDEX + 1);
    }
}
