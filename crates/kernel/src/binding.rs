//! The logical-host binding cache.
//!
//! §3.1.4: "a process identifier is bound to a logical host, which is in
//! turn bound to a physical host via a cache of mappings in each kernel."
//! When a reference goes unanswered, the entry is invalidated and the
//! reference is broadcast; the response (or any incoming packet from the
//! logical host) re-derives a correct entry. This is the mechanism that
//! makes migration leave **no residual state** on the old host — unlike
//! Demos/MP forwarding addresses (§5).

use std::collections::BTreeMap;

use vnet::HostAddr;

use crate::ids::LogicalHostId;

/// Cache statistics, reported by experiment E6/A2.
#[derive(Debug, Clone, Default)]
pub struct BindingStats {
    /// Successful lookups.
    pub hits: u64,
    /// Lookups with no entry (forcing a broadcast send).
    pub misses: u64,
    /// Explicit invalidations after repeated non-response.
    pub invalidations: u64,
    /// Entries learned or refreshed from incoming packets.
    pub refreshes: u64,
    /// Entries replaced with a *different* host (observed rebinds).
    pub rebinds: u64,
}

/// Per-kernel cache of logical-host → physical-host mappings.
///
/// # Examples
///
/// ```
/// use vkernel::{BindingCache, LogicalHostId};
/// use vnet::HostAddr;
///
/// let mut cache = BindingCache::new();
/// cache.learn(LogicalHostId(3), HostAddr(1));
/// assert_eq!(cache.lookup(LogicalHostId(3)), Some(HostAddr(1)));
/// cache.invalidate(LogicalHostId(3));
/// assert_eq!(cache.lookup(LogicalHostId(3)), None);
/// ```
#[derive(Debug, Default)]
pub struct BindingCache {
    map: BTreeMap<LogicalHostId, HostAddr>,
    stats: BindingStats,
}

impl BindingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the physical host for `lh`, counting hit/miss.
    pub fn lookup(&mut self, lh: LogicalHostId) -> Option<HostAddr> {
        match self.map.get(&lh) {
            Some(&h) => {
                self.stats.hits += 1;
                Some(h)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-counting peek (for assertions and reporting).
    pub fn peek(&self, lh: LogicalHostId) -> Option<HostAddr> {
        self.map.get(&lh).copied()
    }

    /// Learns or refreshes a mapping from an incoming packet or broadcast.
    pub fn learn(&mut self, lh: LogicalHostId, host: HostAddr) {
        self.stats.refreshes += 1;
        if let Some(prev) = self.map.insert(lh, host) {
            if prev != host {
                self.stats.rebinds += 1;
            }
        }
    }

    /// Invalidates the entry after repeated non-response (§3.1.4).
    pub fn invalidate(&mut self, lh: LogicalHostId) {
        if self.map.remove(&lh).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &BindingStats {
        &self.stats
    }

    /// All cached mappings, sorted by logical host (for auditing).
    pub fn entries(&self) -> Vec<(LogicalHostId, HostAddr)> {
        let mut v: Vec<_> = self.map.iter().map(|(&lh, &h)| (lh, h)).collect();
        v.sort_by_key(|&(lh, _)| lh.0);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = BindingCache::new();
        assert_eq!(c.lookup(LogicalHostId(1)), None);
        c.learn(LogicalHostId(1), HostAddr(2));
        assert_eq!(c.lookup(LogicalHostId(1)), Some(HostAddr(2)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn rebind_detected_on_host_change() {
        let mut c = BindingCache::new();
        c.learn(LogicalHostId(1), HostAddr(2));
        c.learn(LogicalHostId(1), HostAddr(2)); // Refresh, same host.
        assert_eq!(c.stats().rebinds, 0);
        c.learn(LogicalHostId(1), HostAddr(7)); // Migration observed.
        assert_eq!(c.stats().rebinds, 1);
        assert_eq!(c.peek(LogicalHostId(1)), Some(HostAddr(7)));
        assert_eq!(c.stats().refreshes, 3);
    }

    #[test]
    fn invalidate_only_counts_real_entries() {
        let mut c = BindingCache::new();
        c.invalidate(LogicalHostId(9));
        assert_eq!(c.stats().invalidations, 0);
        c.learn(LogicalHostId(9), HostAddr(0));
        c.invalidate(LogicalHostId(9));
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = BindingCache::new();
        c.learn(LogicalHostId(1), HostAddr(2));
        let _ = c.peek(LogicalHostId(1));
        let _ = c.peek(LogicalHostId(2));
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }
}
