//! Processes and their IPC-visible state.
//!
//! V processes are lightweight: they live inside a team's address space and
//! communicate exclusively by synchronous message passing. The kernel model
//! tracks what IPC needs: whether a process is blocked awaiting a reply
//! (and to whom), its team (address space), and its scheduling priority.
//! The *behaviour* of a process — what it computes, which pages it writes —
//! lives in the workload layer.

use vmem::SpaceId;

use crate::ids::ProcessId;
use crate::packet::SendSeq;

/// Scheduling priority. Lower value = more urgent, following V.
///
/// §2: "Because of priority scheduling for locally invoked programs, a
/// text-editing user need not notice the presence of background jobs."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// System servers (kernel server, program manager, display server).
    pub const SYSTEM: Priority = Priority(0);
    /// The pre-copy operation runs above everything else on the origin
    /// host (§3.1.2: "executed at a higher priority than all other
    /// programs ... to prevent these other programs from interfering").
    pub const MIGRATION: Priority = Priority(1);
    /// Locally invoked programs.
    pub const LOCAL: Priority = Priority(4);
    /// Remotely executed ("guest") programs.
    pub const GUEST: Priority = Priority(8);
}

/// IPC-visible state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Runnable (or running; the CPU scheduler in the cluster layer
    /// decides which ready process executes).
    Ready,
    /// Blocked in Send, awaiting a reply for the given transaction.
    AwaitingReply {
        /// The transaction blocked on.
        seq: SendSeq,
    },
    /// Created and not yet started: awaiting the initial reply from its
    /// creator (§2.1 — a new program's first process "is awaiting reply
    /// from its creator").
    Embryo,
    /// Destroyed; the slot is retained to keep ids unique.
    Dead,
}

/// A kernel process descriptor.
#[derive(Debug, Clone)]
pub struct Process {
    /// The process id.
    pub pid: ProcessId,
    /// The team (address space) it executes in.
    pub team: SpaceId,
    /// Scheduling priority.
    pub priority: Priority,
    /// IPC state.
    pub state: ProcessState,
}

impl Process {
    /// Creates a ready process.
    pub fn new(pid: ProcessId, team: SpaceId, priority: Priority) -> Self {
        Process {
            pid,
            team,
            priority,
            state: ProcessState::Ready,
        }
    }

    /// Creates a process in the embryonic awaiting-creator state.
    pub fn new_embryo(pid: ProcessId, team: SpaceId, priority: Priority) -> Self {
        Process {
            pid,
            team,
            priority,
            state: ProcessState::Embryo,
        }
    }

    /// True unless dead.
    pub fn is_alive(&self) -> bool {
        !matches!(self.state, ProcessState::Dead)
    }

    /// True if blocked in Send.
    pub fn is_awaiting_reply(&self) -> bool {
        matches!(self.state, ProcessState::AwaitingReply { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LogicalHostId;

    #[test]
    fn priority_ordering() {
        assert!(Priority::SYSTEM < Priority::MIGRATION);
        assert!(Priority::MIGRATION < Priority::LOCAL);
        assert!(Priority::LOCAL < Priority::GUEST);
    }

    #[test]
    fn state_transitions_queryable() {
        let pid = ProcessId::new(LogicalHostId(1), 16);
        let mut p = Process::new(pid, SpaceId(0), Priority::LOCAL);
        assert!(p.is_alive());
        assert!(!p.is_awaiting_reply());
        p.state = ProcessState::AwaitingReply { seq: SendSeq(5) };
        assert!(p.is_awaiting_reply());
        p.state = ProcessState::Dead;
        assert!(!p.is_alive());
    }

    #[test]
    fn embryo_awaits_creator() {
        let pid = ProcessId::new(LogicalHostId(1), 16);
        let p = Process::new_embryo(pid, SpaceId(0), Priority::GUEST);
        assert_eq!(p.state, ProcessState::Embryo);
        assert!(p.is_alive());
    }
}
