//! `vkernel` — a model of the V distributed kernel.
//!
//! "The V-system consists of a distributed kernel and a distributed
//! collection of server processes" (§2.1). This crate models the kernel
//! half: processes grouped into logical hosts, network-transparent
//! synchronous IPC with retransmission and reply-pending packets, process
//! groups (global and per-logical-host local groups), the logical-host
//! binding cache, freeze/unfreeze with deferred operations, and bulk
//! CopyTo transfers — everything §3 of the paper builds migration out of.
//!
//! The kernel is a sans-IO state machine ([`Kernel`]); a production event
//! loop lives in `vcluster` and a small test rig in [`testkit`].

mod binding;
mod ids;
mod kernel;
mod logical_host;
mod packet;
mod process;
pub mod testkit;
mod transfer;

pub use binding::{BindingCache, BindingStats};
pub use ids::{
    Destination, GroupId, LogicalHostId, ProcessId, FIRST_USER_INDEX, GLOBAL_GROUP_LH,
    KERNEL_SERVER_INDEX, PROGRAM_MANAGER_INDEX,
};
pub use kernel::{
    Kernel, KernelConfig, KernelOutput, KernelStats, MigrationRecord, MsgIn, OutstandingDesc,
    ReplyIn, SendError, TimerKey,
};
pub use logical_host::{DeferredRequest, LhDescriptor, LogicalHost, ProcessDesc};
pub use packet::{Packet, SendSeq, XferId, CONTROL_PACKET_BYTES, MESSAGE_PACKET_BYTES};
pub use process::{Priority, Process, ProcessState};
pub use transfer::{split_units, OutXfer, UnitSpec, XFER_UNIT_BYTES};
