//! The per-workstation V kernel.
//!
//! "A functionally identical copy of the kernel resides on each host and
//! provides address spaces, processes that run within these address
//! spaces, and network-transparent interprocess communication" (§2.1).
//!
//! The kernel here is a sans-IO state machine: IPC primitives and incoming
//! frames/timers produce [`KernelOutput`] actions that the cluster runtime
//! (or a test rig) executes. It implements:
//!
//! * synchronous Send/Reply with retransmission, duplicate suppression and
//!   reply retention;
//! * process groups — global groups over Ethernet multicast (the
//!   program-manager group) and per-logical-host local groups naming the
//!   kernel server and program manager location-independently;
//! * the logical-host binding cache with invalidate-and-broadcast recovery
//!   (§3.1.4) and learning from incoming packets;
//! * freeze/unfreeze with deferred requests, reply-pending packets and
//!   reply discarding (§3.1.3);
//! * bulk CopyTo transfers paced at the calibrated 3 s/MB (§3.1);
//! * extraction and installation of a logical host's kernel state for
//!   migration, including in-flight IPC transactions.

use std::collections::{BTreeMap, BTreeSet};

use vmem::SpaceId;
use vnet::{Frame, HostAddr, McastGroup};
use vsim::calib::{self, PAGE_BYTES};
use vsim::{
    CounterId, DetRng, Metrics, SimDuration, SimTime, SpanContext, SpanId, SpanIdGen, Subsystem,
    Trace, TraceEvent, TraceLevel,
};

use crate::binding::BindingCache;
use crate::ids::{
    Destination, GroupId, LogicalHostId, ProcessId, KERNEL_SERVER_INDEX, PROGRAM_MANAGER_INDEX,
};
use crate::logical_host::{DeferredRequest, LhDescriptor, LogicalHost};
use crate::packet::{Packet, SendSeq, XferId};
use crate::process::ProcessState;
use crate::transfer::{split_units, OutXfer, XFER_UNIT_BYTES};

/// Why a Send or CopyTo failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// No response after the maximum number of retransmissions.
    Timeout,
    /// The target process or space does not exist (detected locally).
    Refused,
    /// No binding for the destination logical host (CopyTo requires one).
    NoBinding,
}

/// A request delivered to a local process.
#[derive(Debug, Clone)]
pub struct MsgIn<X> {
    /// Receiving process.
    pub to: ProcessId,
    /// Sending (blocked) process.
    pub from: ProcessId,
    /// Transaction to cite in the reply.
    pub seq: SendSeq,
    /// Message body.
    pub body: X,
    /// Appended data bytes.
    pub data_bytes: u64,
}

/// The reply completing a Send.
#[derive(Debug, Clone)]
pub struct ReplyIn<X> {
    /// Replying process.
    pub from: ProcessId,
    /// Reply body.
    pub body: X,
    /// Appended data bytes.
    pub data_bytes: u64,
}

/// Timer keys a kernel may request. Stale timers are ignored on firing, so
/// no cancellation is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKey {
    /// Retransmission tick for an outstanding Send.
    Retransmit(ProcessId, SendSeq),
    /// Retained-reply expiry.
    ReplyRetention(ProcessId, SendSeq),
    /// Bulk-transfer pacing for (transfer, unit).
    XferPace(XferId, u32),
    /// Bulk-transfer ack timeout for (transfer, unit).
    XferAckTimeout(XferId, u32),
    /// Completion of a workstation-local memory copy.
    LocalCopyDone(XferId),
    /// CopyFrom watchdog: no data arrived for the pull yet.
    PullStart(XferId),
}

/// Actions the kernel asks its runtime to perform.
#[derive(Debug)]
pub enum KernelOutput<X> {
    /// Put a frame on the wire.
    Transmit(Frame<Packet<X>>),
    /// Request a timer callback.
    SetTimer {
        /// Key passed back to [`Kernel::handle_timer`].
        key: TimerKey,
        /// Delay from now.
        after: SimDuration,
    },
    /// A request message arrived for a local process.
    Deliver(MsgIn<X>),
    /// A Send issued by a local process completed (or failed).
    SendDone {
        /// The unblocked sender.
        pid: ProcessId,
        /// Its transaction.
        seq: SendSeq,
        /// The reply, or the failure.
        result: Result<ReplyIn<X>, SendError>,
    },
    /// A CopyTo bulk transfer completed (or failed).
    CopyDone {
        /// The transfer.
        xfer: XferId,
        /// Process that initiated it.
        initiator: ProcessId,
        /// Bytes copied, or the failure.
        result: Result<u64, SendError>,
    },
    /// Join an Ethernet multicast group (first local member of a global
    /// process group).
    JoinMcast(McastGroup),
    /// Leave an Ethernet multicast group (last member left).
    LeaveMcast(McastGroup),
}

/// Tunables; defaults come from the paper-calibrated constants.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Base interval between retransmissions (the first retry fires after
    /// exactly this long).
    pub retransmit_interval: SimDuration,
    /// Multiplier applied to the interval after every further retry
    /// (capped exponential backoff). `1.0` restores the fixed-interval
    /// behaviour.
    pub retransmit_backoff: f64,
    /// Upper bound on the backed-off retransmission interval.
    pub retransmit_max_interval: SimDuration,
    /// Retransmissions before invalidating the binding cache entry and
    /// falling back to broadcast.
    pub retransmits_before_rebind: u32,
    /// Retransmissions before giving up (absent reply-pending).
    pub max_retransmits: u32,
    /// Hard cap even when reply-pending packets keep arriving; prevents an
    /// orphaned transaction from retransmitting forever.
    pub hard_retransmit_cap: u32,
    /// How long a replier retains a reply for retransmission.
    pub reply_retention: SimDuration,
    /// Broadcast a NewBinding packet when a migrated logical host is
    /// unfrozen (the §3.1.4 optimization). Disable for ablation A2.
    pub broadcast_new_binding: bool,
    /// Bulk-transfer unit size.
    pub xfer_unit_bytes: u64,
    /// Workstation-local memory copy cost per KB (68010 block move).
    pub local_memcpy_per_kb: SimDuration,
    /// Demos/MP-style forwarding addresses (ablation A2): the old host
    /// keeps a per-logical-host forwarding entry after migration and
    /// relays misdirected requests, sending the requester an address
    /// update. V's own design needs no such residual state (§5).
    pub use_forwarding_addresses: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            retransmit_interval: calib::RETRANSMIT_INTERVAL,
            retransmit_backoff: calib::RETRANSMIT_BACKOFF,
            retransmit_max_interval: calib::RETRANSMIT_MAX_INTERVAL,
            retransmits_before_rebind: calib::RETRANSMITS_BEFORE_REBIND,
            max_retransmits: calib::MAX_RETRANSMITS,
            hard_retransmit_cap: 200,
            reply_retention: calib::REPLY_RETENTION,
            broadcast_new_binding: true,
            xfer_unit_bytes: XFER_UNIT_BYTES,
            local_memcpy_per_kb: SimDuration::from_micros(500),
            use_forwarding_addresses: false,
        }
    }
}

/// Kernel counters; experiment E6 reports the overhead-bearing ones.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Send operations issued by local processes.
    pub sends: u64,
    /// Sends resolved to a process on this workstation.
    pub local_sends: u64,
    /// Sends that went remote.
    pub remote_sends: u64,
    /// Sends addressed to global groups.
    pub group_sends: u64,
    /// Request messages delivered to local processes.
    pub deliveries: u64,
    /// Reply operations issued by local processes.
    pub replies: u64,
    /// Request retransmissions sent.
    pub retransmissions: u64,
    /// Reply-pending packets sent.
    pub reply_pendings_sent: u64,
    /// Reply-pending packets received.
    pub reply_pendings_received: u64,
    /// Replies discarded because the addressee's logical host was frozen.
    pub replies_discarded_frozen: u64,
    /// Requests deferred because the target logical host was frozen.
    pub deferred_requests: u64,
    /// Requests for processes that do not exist here (dropped).
    pub dead_letters: u64,
    /// Unicast packets for logical hosts not resident here (stale
    /// bindings; dropped).
    pub not_here: u64,
    /// Replies that matched no outstanding Send (duplicates, or extra
    /// group responses beyond the first).
    pub late_replies: u64,
    /// Freeze-state checks performed (13 µs each, §4.1).
    pub freeze_checks: u64,
    /// Local-group (kernel server / program manager) id resolutions
    /// (100 µs each, §4.1).
    pub group_lookups: u64,
    /// Requests sent by broadcast for lack of a binding.
    pub broadcast_requests: u64,
    /// NewBinding broadcasts sent on unfreeze.
    pub new_binding_broadcasts: u64,
    /// Bulk units transmitted (first attempts).
    pub bulk_units_sent: u64,
    /// Bulk unit retransmissions.
    pub bulk_units_retransmitted: u64,
    /// Bulk payload bytes transmitted (including retransmissions).
    pub bulk_bytes_sent: u64,
    /// Bulk units received and applied.
    pub bulk_units_received: u64,
    /// Sends that failed with an error.
    pub send_failures: u64,
    /// Requests relayed via a forwarding address (Demos/MP mode only).
    pub forwarded_requests: u64,
    /// CopyFrom pulls served for other kernels.
    pub pulls_served: u64,
    /// Outstanding Sends abandoned at the hard retransmission cap while
    /// reply-pending packets were still arriving — the server accepted the
    /// request but never replied (orphaned transaction). Cumulative; see
    /// [`KernelStats::orphans_resolved`] for how many were later cleared
    /// by renewed contact with the serving logical host.
    pub orphaned_transactions: u64,
    /// Orphaned transactions later resolved: the serving logical host
    /// answered a subsequent Send (it rebooted, recovered, or the
    /// partition healed), proving the orphan was transient rather than a
    /// leak.
    pub orphans_resolved: u64,
}

impl KernelStats {
    /// Total modeled kernel-operation overhead from the two §4.1
    /// mechanisms: 13 µs per freeze check + 100 µs per local-group lookup.
    pub fn overhead(&self) -> SimDuration {
        calib::FREEZE_CHECK_OVERHEAD * self.freeze_checks
            + calib::GROUP_ID_LOOKUP_OVERHEAD * self.group_lookups
    }
}

#[derive(Debug)]
struct Outstanding<X> {
    to: Destination,
    body: X,
    data_bytes: u64,
    /// Retransmissions since the last successful (re)bind.
    since_rebind: u32,
    total_retransmits: u32,
    rebound: bool,
    pending_seen: bool,
    is_group: bool,
}

#[derive(Debug, Clone, Copy)]
struct InProgress {
    local_requester: bool,
    target: ProcessId,
    /// The "serve" span opened when the request was delivered; closed when
    /// the reply is issued (or the transaction is aborted).
    serve_span: Option<SpanId>,
}

#[derive(Debug)]
struct PullState {
    initiator: ProcessId,
    src_host: HostAddr,
    from_lh: LogicalHostId,
    from_space: SpaceId,
    to_lh: LogicalHostId,
    to_space: SpaceId,
    pages: Vec<u32>,
    received_bytes: u64,
    highest_unit: Option<u32>,
    retries: u32,
}

#[derive(Debug)]
struct Retained<X> {
    from: ProcessId,
    body: X,
    data_bytes: u64,
    deadline: SimTime,
}

/// Serialized IPC state of an outstanding Send, carried in a migration
/// record.
#[derive(Debug, Clone)]
pub struct OutstandingDesc<X> {
    /// Blocked sender.
    pub from: ProcessId,
    /// Transaction.
    pub seq: SendSeq,
    /// Destination.
    pub to: Destination,
    /// Message body (retransmissions rebuild the packet from it).
    pub body: X,
    /// Appended data bytes.
    pub data_bytes: u64,
    /// Whether a reply-pending had been seen.
    pub pending_seen: bool,
    /// Whether this was a group send.
    pub is_group: bool,
    /// The client-side "ipc" span of the transaction, so the target kernel
    /// can keep tracking (and eventually close) it after migration.
    pub span: SpanContext,
}

/// Everything the kernel knows about a logical host, for migration: the
/// §3.1.3 "state in the kernel server and program manager".
#[derive(Debug, Clone)]
pub struct MigrationRecord<X> {
    /// Process table, spaces, seq counter.
    pub desc: LhDescriptor,
    /// Outstanding Sends issued by the logical host's processes.
    pub outstanding: Vec<OutstandingDesc<X>>,
    /// Requests being served by its processes: (requester, seq, target,
    /// serve span). The span context carries the serving kernel's open
    /// "serve" span so the new kernel closes it when the reply goes out.
    pub in_progress: Vec<(ProcessId, SendSeq, ProcessId, SpanContext)>,
    /// Replies its processes issued and still retain: (requester, seq,
    /// replier, body, data bytes).
    pub retained: Vec<(ProcessId, SendSeq, ProcessId, X, u64)>,
}

impl<X> MigrationRecord<X> {
    /// The paper's cost for copying this state: 14 ms + 9 ms per process
    /// and address space.
    pub fn copy_cost(&self) -> SimDuration {
        calib::KERNEL_STATE_COPY_BASE
            + calib::KERNEL_STATE_COPY_PER_OBJECT * self.desc.object_count()
    }
}

/// The kernel of one workstation.
pub struct Kernel<X> {
    host: HostAddr,
    cfg: KernelConfig,
    lhs: BTreeMap<LogicalHostId, LogicalHost<X>>,
    cache: BindingCache,
    well_known: BTreeMap<u32, ProcessId>,
    group_routes: BTreeMap<GroupId, McastGroup>,
    group_members: BTreeMap<GroupId, BTreeSet<ProcessId>>,
    outstanding: BTreeMap<(ProcessId, SendSeq), Outstanding<X>>,
    in_progress: BTreeMap<(ProcessId, SendSeq), Vec<InProgress>>,
    reply_cache: BTreeMap<(ProcessId, SendSeq), Retained<X>>,
    xfers: BTreeMap<XferId, OutXfer>,
    local_xfers: BTreeMap<XferId, (ProcessId, u64)>,
    pulls: BTreeMap<XferId, PullState>,
    forwarding: BTreeMap<LogicalHostId, HostAddr>,
    next_xfer: u64,
    stats: KernelStats,
    metrics: Metrics,
    trace: Trace,
    /// Time of the last public entry point, so interior paths without a
    /// `now` parameter (retransmit timers, deferrals) can stamp trace
    /// records.
    now: SimTime,
    /// Deterministic allocator for this kernel's spans (actor = physical
    /// host, offset so it never collides with cluster-level actors).
    spans: SpanIdGen,
    /// Parent context for the *next* Send issued here; set by instrumented
    /// callers (e.g. the migration driver) and consumed by exactly one
    /// send so unrelated traffic is never mis-parented.
    span_parent: SpanContext,
    /// Client "ipc" spans still open, by transaction. Closed on SendDone
    /// (success or failure); migrated with their logical host.
    open_sends: BTreeMap<(ProcessId, SendSeq), SpanId>,
    /// Unresolved orphaned transactions per serving logical host. An entry
    /// is cleared (and counted in `stats.orphans_resolved`) when that
    /// logical host answers a later Send — renewed contact proves the
    /// server came back rather than leaked.
    orphaned_by_lh: BTreeMap<u32, u64>,
    ctr_sends: CounterId,
    ctr_replies: CounterId,
    ctr_deliveries: CounterId,
    ctr_retransmissions: CounterId,
    ctr_deferred: CounterId,
    ctr_reply_pendings: CounterId,
    ctr_binding_hits: CounterId,
    ctr_binding_misses: CounterId,
    ctr_orphaned: CounterId,
}

impl<X: Clone + std::fmt::Debug> Kernel<X> {
    /// Boots a kernel on physical host `host`.
    pub fn new(host: HostAddr, cfg: KernelConfig) -> Self {
        let mut metrics = Metrics::new();
        let ctr_sends = metrics.counter(Subsystem::Kernel, "sends");
        let ctr_replies = metrics.counter(Subsystem::Kernel, "replies");
        let ctr_deliveries = metrics.counter(Subsystem::Kernel, "deliveries");
        let ctr_retransmissions = metrics.counter(Subsystem::Kernel, "retransmissions");
        let ctr_deferred = metrics.counter(Subsystem::Kernel, "deferred_requests");
        let ctr_reply_pendings = metrics.counter(Subsystem::Kernel, "reply_pendings_sent");
        let ctr_binding_hits = metrics.counter(Subsystem::Kernel, "binding_cache_hits");
        let ctr_binding_misses = metrics.counter(Subsystem::Kernel, "binding_cache_misses");
        let ctr_orphaned = metrics.counter(Subsystem::Kernel, "orphaned_transactions");
        Kernel {
            host,
            cfg,
            lhs: BTreeMap::new(),
            cache: BindingCache::new(),
            well_known: BTreeMap::new(),
            group_routes: BTreeMap::new(),
            group_members: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            in_progress: BTreeMap::new(),
            reply_cache: BTreeMap::new(),
            xfers: BTreeMap::new(),
            local_xfers: BTreeMap::new(),
            pulls: BTreeMap::new(),
            forwarding: BTreeMap::new(),
            next_xfer: 0,
            stats: KernelStats::default(),
            metrics,
            trace: Trace::quiet(),
            now: SimTime::ZERO,
            spans: SpanIdGen::new(0x100 + host.0 as u64),
            span_parent: SpanContext::NONE,
            open_sends: BTreeMap::new(),
            orphaned_by_lh: BTreeMap::new(),
            ctr_sends,
            ctr_replies,
            ctr_deliveries,
            ctr_retransmissions,
            ctr_deferred,
            ctr_reply_pendings,
            ctr_binding_hits,
            ctr_binding_misses,
            ctr_orphaned,
        }
    }

    /// This kernel's physical host address.
    pub fn host(&self) -> HostAddr {
        self.host
    }

    /// The configuration in effect.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The kernel's metrics registry (mirrors the overhead-bearing
    /// [`KernelStats`] fields as typed counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The kernel's trace (retransmissions and reply-pending deferrals).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace handle, e.g. to raise the retained level or drain
    /// records into a cluster-wide trace.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The binding cache (for inspection).
    pub fn binding_cache(&self) -> &BindingCache {
        &self.cache
    }

    /// Parents the *next* Send issued on this kernel under `ctx`: its
    /// client "ipc" span (and therefore the remote "serve" span) becomes a
    /// child of the caller's span. Consumed by exactly one send.
    pub fn set_span_parent(&mut self, ctx: SpanContext) {
        self.span_parent = ctx;
    }

    /// The client span of an outstanding Send, for stamping packets.
    fn send_span_ctx(&self, pid: ProcessId, seq: SendSeq) -> SpanContext {
        self.open_sends
            .get(&(pid, seq))
            .map(|s| s.ctx())
            .unwrap_or(SpanContext::NONE)
    }

    /// Opens a "serve" span for a request delivered to a local process,
    /// parented on the client's propagated context.
    fn open_serve_span(&mut self, parent: SpanContext) -> SpanId {
        let sid = self.spans.next();
        sid.open(
            &mut self.trace,
            TraceLevel::Detail,
            self.now,
            Subsystem::Kernel,
            parent,
            "serve",
            self.host.0,
        );
        sid
    }

    /// Learns a logical-host binding out of band (e.g. from a service
    /// reply that names the chosen migration target).
    pub fn learn_binding(&mut self, lh: LogicalHostId, host: HostAddr) {
        self.cache.learn(lh, host);
    }

    /// True if `lh` is resident on this kernel.
    pub fn is_resident(&self, lh: LogicalHostId) -> bool {
        self.lhs.contains_key(&lh)
    }

    /// A resident logical host.
    pub fn logical_host(&self, lh: LogicalHostId) -> Option<&LogicalHost<X>> {
        self.lhs.get(&lh)
    }

    /// Mutable access to a resident logical host.
    pub fn logical_host_mut(&mut self, lh: LogicalHostId) -> Option<&mut LogicalHost<X>> {
        self.lhs.get_mut(&lh)
    }

    /// Ids of all resident logical hosts.
    pub fn resident_lhs(&self) -> Vec<LogicalHostId> {
        self.lhs.keys().copied().collect()
    }

    /// Creates an empty logical host here.
    ///
    /// # Panics
    ///
    /// Panics if the id is already resident.
    pub fn create_logical_host(&mut self, id: LogicalHostId) -> &mut LogicalHost<X> {
        assert!(
            !self.lhs.contains_key(&id),
            "logical host {id} already resident"
        );
        self.lhs.entry(id).or_insert_with(|| LogicalHost::new(id))
    }

    /// Registers the workstation's kernel-server or program-manager
    /// process for well-known local-group resolution.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a well-known index.
    pub fn register_well_known(&mut self, index: u32, pid: ProcessId) {
        assert!(
            matches!(index, KERNEL_SERVER_INDEX | PROGRAM_MANAGER_INDEX),
            "not a well-known index: {index}"
        );
        self.well_known.insert(index, pid);
    }

    /// Declares the Ethernet multicast route for a global group.
    pub fn set_group_route(&mut self, gid: GroupId, mcast: McastGroup) {
        self.group_routes.insert(gid, mcast);
    }

    /// Adds a local process to a global group.
    pub fn join_group(&mut self, gid: GroupId, pid: ProcessId) -> Vec<KernelOutput<X>> {
        let members = self.group_members.entry(gid).or_default();
        let first = members.is_empty();
        members.insert(pid);
        match (first, self.group_routes.get(&gid)) {
            (true, Some(&m)) => vec![KernelOutput::JoinMcast(m)],
            _ => Vec::new(),
        }
    }

    /// Removes a local process from a global group.
    pub fn leave_group(&mut self, gid: GroupId, pid: ProcessId) -> Vec<KernelOutput<X>> {
        if let Some(members) = self.group_members.get_mut(&gid) {
            members.remove(&pid);
            if members.is_empty() {
                if let Some(&m) = self.group_routes.get(&gid) {
                    return vec![KernelOutput::LeaveMcast(m)];
                }
            }
        }
        Vec::new()
    }

    // --- IPC primitives. ---

    /// Send: blocks `from` awaiting a reply and routes the message.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a live resident process.
    pub fn send(
        &mut self,
        now: SimTime,
        from: ProcessId,
        to: Destination,
        body: X,
        data_bytes: u64,
    ) -> Vec<KernelOutput<X>> {
        self.send_with_seq(now, from, to, body, data_bytes).1
    }

    /// Like [`Kernel::send`], also returning the allocated transaction
    /// number so callers can correlate the eventual completion.
    pub fn send_with_seq(
        &mut self,
        now: SimTime,
        from: ProcessId,
        to: Destination,
        body: X,
        data_bytes: u64,
    ) -> (SendSeq, Vec<KernelOutput<X>>) {
        self.now = now;
        self.stats.sends += 1;
        self.metrics.inc(self.ctr_sends);
        self.stats.freeze_checks += 1;
        let seq = {
            let lh = self
                .lhs
                .get_mut(&from.lh)
                .expect("send: sender's logical host not resident");
            let seq = lh.alloc_seq();
            let p = lh
                .process_mut(from.index)
                .filter(|p| p.is_alive())
                .expect("send: no such sender process");
            p.state = ProcessState::AwaitingReply { seq };
            seq
        };
        let parent = std::mem::replace(&mut self.span_parent, SpanContext::NONE);
        let sid = self.spans.next();
        sid.open(
            &mut self.trace,
            TraceLevel::Detail,
            now,
            Subsystem::Kernel,
            parent,
            "ipc",
            self.host.0,
        );
        self.open_sends.insert((from, seq), sid);
        let mut out = Vec::new();
        self.route_send(
            now,
            seq,
            from,
            to,
            body,
            data_bytes,
            false,
            sid.ctx(),
            &mut out,
        );
        (seq, out)
    }

    /// Reply: completes a previously delivered request.
    ///
    /// If the request is unknown (e.g. the requester gave up) this is a
    /// no-op.
    pub fn reply(
        &mut self,
        now: SimTime,
        from: ProcessId,
        requester: ProcessId,
        seq: SendSeq,
        body: X,
        data_bytes: u64,
    ) -> Vec<KernelOutput<X>> {
        self.now = now;
        self.stats.replies += 1;
        self.metrics.inc(self.ctr_replies);
        self.stats.freeze_checks += 1;
        let mut out = Vec::new();
        let key = (requester, seq);
        let Some(entries) = self.in_progress.get_mut(&key) else {
            self.stats.late_replies += 1;
            return out;
        };
        let Some(pos) = entries.iter().position(|e| e.target == from) else {
            self.stats.late_replies += 1;
            return out;
        };
        let entry = entries.remove(pos);
        if entries.is_empty() {
            self.in_progress.remove(&key);
        }
        if let Some(s) = entry.serve_span {
            s.close(&mut self.trace, TraceLevel::Detail, now, Subsystem::Kernel);
        }

        // Retain the reply for retransmitted requests (§3.1.3).
        self.reply_cache.insert(
            key,
            Retained {
                from,
                body: body.clone(),
                data_bytes,
                deadline: now + self.cfg.reply_retention,
            },
        );
        out.push(KernelOutput::SetTimer {
            key: TimerKey::ReplyRetention(requester, seq),
            after: self.cfg.reply_retention,
        });

        if entry.local_requester && self.lhs.contains_key(&requester.lh) {
            // A group send may also have gone out by multicast; the first
            // reply (this one) wins and later remote replies are late.
            self.outstanding.remove(&(requester, seq));
            self.complete_local_send(requester, seq, from, body, data_bytes, &mut out);
        } else {
            let pkt = Packet::Reply {
                seq,
                from,
                to: requester,
                body,
                data_bytes,
            };
            self.transmit_routed(requester.lh, pkt, &mut out);
        }
        out
    }

    /// CopyTo: copies `pages` worth of address-space content into
    /// `(to_lh, to_space)`, locally or across the network.
    ///
    /// For a remote destination the binding must already be cached (the
    /// migration protocol learns it from the target-selection reply).
    pub fn copy_pages(
        &mut self,
        _now: SimTime,
        initiator: ProcessId,
        to_lh: LogicalHostId,
        to_space: SpaceId,
        pages: Vec<u32>,
    ) -> (XferId, Vec<KernelOutput<X>>) {
        self.stats.freeze_checks += 1;
        let xfer = XferId(self.next_xfer);
        self.next_xfer += 1;
        let mut out = Vec::new();
        let bytes = pages.len() as u64 * PAGE_BYTES;

        if pages.is_empty() {
            out.push(KernelOutput::CopyDone {
                xfer,
                initiator,
                result: Ok(0),
            });
            return (xfer, out);
        }

        if self.lhs.contains_key(&to_lh) {
            // Workstation-local copy: charge the 68010 block-move cost.
            let kb = bytes.div_ceil(1024);
            self.local_xfers.insert(xfer, (initiator, bytes));
            out.push(KernelOutput::SetTimer {
                key: TimerKey::LocalCopyDone(xfer),
                after: self.cfg.local_memcpy_per_kb * kb,
            });
            return (xfer, out);
        }

        let Some(dst_host) = self.cache.lookup(to_lh) else {
            out.push(KernelOutput::CopyDone {
                xfer,
                initiator,
                result: Err(SendError::NoBinding),
            });
            return (xfer, out);
        };

        let units = split_units(&pages, self.cfg.xfer_unit_bytes);
        let x = OutXfer::new(xfer, initiator, to_lh, to_space, dst_host, units);
        self.xfers.insert(xfer, x);
        self.send_current_unit(xfer, &mut out);
        (xfer, out)
    }

    /// CopyFrom: asks the kernel hosting `from_lh` to blast `pages` of
    /// `from_space` into the local `(to_lh, to_space)`. Completion is
    /// reported as a [`KernelOutput::CopyDone`] with the pull's id.
    ///
    /// Requires a cached binding for `from_lh`; `to_lh` must be resident.
    #[allow(clippy::too_many_arguments)]
    pub fn pull_pages(
        &mut self,
        _now: SimTime,
        initiator: ProcessId,
        from_lh: LogicalHostId,
        from_space: SpaceId,
        to_lh: LogicalHostId,
        to_space: SpaceId,
        pages: Vec<u32>,
    ) -> (XferId, Vec<KernelOutput<X>>) {
        self.stats.freeze_checks += 1;
        let pull = XferId(self.next_xfer);
        self.next_xfer += 1;
        let mut out = Vec::new();
        if pages.is_empty() {
            out.push(KernelOutput::CopyDone {
                xfer: pull,
                initiator,
                result: Ok(0),
            });
            return (pull, out);
        }
        assert!(self.lhs.contains_key(&to_lh), "pull into non-resident lh");
        let Some(src_host) = self.cache.lookup(from_lh) else {
            out.push(KernelOutput::CopyDone {
                xfer: pull,
                initiator,
                result: Err(SendError::NoBinding),
            });
            return (pull, out);
        };
        self.pulls.insert(
            pull,
            PullState {
                initiator,
                src_host,
                from_lh,
                from_space,
                to_lh,
                to_space,
                pages: pages.clone(),
                received_bytes: 0,
                highest_unit: None,
                retries: 0,
            },
        );
        let pkt = Packet::BulkPull {
            pull,
            from_lh,
            from_space,
            to_lh,
            to_space,
            pages,
        };
        let bytes = pkt.wire_bytes();
        out.push(KernelOutput::Transmit(Frame::unicast(
            self.host, src_host, bytes, pkt,
        )));
        out.push(KernelOutput::SetTimer {
            key: TimerKey::PullStart(pull),
            after: self.cfg.retransmit_interval,
        });
        (pull, out)
    }

    // --- Migration support. ---

    /// Freezes a resident logical host (§3.1: suspend execution, defer
    /// external interactions).
    ///
    /// # Panics
    ///
    /// Panics if `lh` is not resident.
    pub fn freeze(&mut self, lh: LogicalHostId) {
        self.lhs
            .get_mut(&lh)
            .expect("freeze: logical host not resident")
            .freeze();
    }

    /// Unfreezes a logical host in place (migration aborted): deferred
    /// requests are delivered locally.
    pub fn unfreeze_in_place(&mut self, now: SimTime, lh: LogicalHostId) -> Vec<KernelOutput<X>> {
        let mut out = Vec::new();
        let deferred = {
            let l = self
                .lhs
                .get_mut(&lh)
                .expect("unfreeze: logical host not resident");
            l.unfreeze();
            l.take_deferred()
        };
        for d in deferred {
            self.route_send(
                now,
                d.seq,
                d.from,
                d.dest,
                d.body,
                d.data_bytes,
                false,
                d.span,
                &mut out,
            );
        }
        out
    }

    /// Unfreezes a freshly migrated logical host on its **new** host:
    /// optionally broadcasts the new binding (§3.1.4 optimization) and
    /// delivers any requests deferred while the final copy completed.
    pub fn unfreeze_migrated(&mut self, now: SimTime, lh: LogicalHostId) -> Vec<KernelOutput<X>> {
        let mut out = Vec::new();
        if self.cfg.broadcast_new_binding {
            self.stats.new_binding_broadcasts += 1;
            let pkt = Packet::NewBinding {
                lh,
                host: self.host,
            };
            let bytes = pkt.wire_bytes();
            out.push(KernelOutput::Transmit(Frame::broadcast(
                self.host, bytes, pkt,
            )));
        }
        out.extend(self.unfreeze_in_place(now, lh));
        out
    }

    /// Snapshot of a logical host's kernel state for migration, including
    /// in-flight IPC. Does not modify anything: the original keeps running
    /// (or stays frozen) until [`Kernel::delete_logical_host`].
    ///
    /// # Panics
    ///
    /// Panics if `lh` is not resident.
    pub fn extract_migration_record(&self, lh: LogicalHostId) -> MigrationRecord<X> {
        let l = self.lhs.get(&lh).expect("extract: not resident");
        let desc = l.descriptor();
        // Sort everything pulled out of hash maps so the record — and the
        // timer/packet order it produces at install time — is a pure
        // function of kernel state, not of hashing.
        let mut outstanding: Vec<OutstandingDesc<X>> = self
            .outstanding
            .iter()
            .filter(|((from, _), _)| from.lh == lh)
            .map(|(&(from, seq), o)| OutstandingDesc {
                from,
                seq,
                to: o.to,
                body: o.body.clone(),
                data_bytes: o.data_bytes,
                pending_seen: o.pending_seen,
                is_group: o.is_group,
                span: self.send_span_ctx(from, seq),
            })
            .collect();
        outstanding.sort_by_key(|o| (o.from.lh.0, o.from.index, o.seq.0));
        let mut in_progress: Vec<(ProcessId, SendSeq, ProcessId, SpanContext)> = self
            .in_progress
            .iter()
            .flat_map(|(&(req, seq), entries)| {
                entries.iter().filter(|e| e.target.lh == lh).map(move |e| {
                    let span = e.serve_span.map(|s| s.ctx()).unwrap_or(SpanContext::NONE);
                    (req, seq, e.target, span)
                })
            })
            .collect();
        in_progress.sort_by_key(|&(req, seq, t, _)| (req.lh.0, req.index, seq.0, t.lh.0, t.index));
        let mut retained: Vec<(ProcessId, SendSeq, ProcessId, X, u64)> = self
            .reply_cache
            .iter()
            .filter(|(_, r)| r.from.lh == lh)
            .map(|(&(req, seq), r)| (req, seq, r.from, r.body.clone(), r.data_bytes))
            .collect();
        retained.sort_by_key(|&(req, seq, ..)| (req.lh.0, req.index, seq.0));
        MigrationRecord {
            desc,
            outstanding,
            in_progress,
            retained,
        }
    }

    /// Installs a migration record over the pre-copied target logical host
    /// `temp`, renaming it to the original id and leaving it **frozen**
    /// (the "two frozen identical copies" state of §3.1.3).
    ///
    /// # Panics
    ///
    /// Panics if `temp` is not resident or the original id already is.
    pub fn install_migration_record(
        &mut self,
        now: SimTime,
        temp: LogicalHostId,
        record: &MigrationRecord<X>,
    ) -> Vec<KernelOutput<X>> {
        let mut out = Vec::new();
        let mut l = self.lhs.remove(&temp).expect("install: temp not resident");
        assert!(
            !self.lhs.contains_key(&record.desc.id),
            "install: original id already resident here"
        );
        l.adopt(&record.desc);
        l.freeze();
        self.lhs.insert(record.desc.id, l);

        for o in &record.outstanding {
            self.outstanding.insert(
                (o.from, o.seq),
                Outstanding {
                    to: o.to,
                    body: o.body.clone(),
                    data_bytes: o.data_bytes,
                    since_rebind: 0,
                    total_retransmits: 0,
                    rebound: false,
                    pending_seen: o.pending_seen,
                    is_group: o.is_group,
                },
            );
            // The client span re-homes here: this kernel closes it when
            // the migrated transaction finally completes.
            if let Some(sid) = o.span.span_id() {
                self.open_sends.insert((o.from, o.seq), sid);
            }
            out.push(KernelOutput::SetTimer {
                key: TimerKey::Retransmit(o.from, o.seq),
                after: self.cfg.retransmit_interval,
            });
        }
        for &(req, seq, target, span) in &record.in_progress {
            self.in_progress
                .entry((req, seq))
                .or_default()
                .push(InProgress {
                    local_requester: req.lh == record.desc.id,
                    target,
                    serve_span: span.span_id(),
                });
        }
        for (req, seq, from, body, data_bytes) in &record.retained {
            self.reply_cache.insert(
                (*req, *seq),
                Retained {
                    from: *from,
                    body: body.clone(),
                    data_bytes: *data_bytes,
                    deadline: now + self.cfg.reply_retention,
                },
            );
            out.push(KernelOutput::SetTimer {
                key: TimerKey::ReplyRetention(*req, *seq),
                after: self.cfg.reply_retention,
            });
        }
        out
    }

    /// Deletes a logical host (after successful migration, or to destroy a
    /// program). Queued/deferred messages are discarded; local senders'
    /// Sends are restarted (and now route remotely); remote senders
    /// recover by retransmission (§3.1.3).
    pub fn delete_logical_host(&mut self, now: SimTime, lh: LogicalHostId) -> Vec<KernelOutput<X>> {
        let mut out = Vec::new();
        let Some(mut l) = self.lhs.remove(&lh) else {
            return out;
        };
        let deferred = l.take_deferred();
        drop(l);

        // Drop IPC state belonging to the departed logical host. Open
        // spans are dropped without a close record: after a migration the
        // re-homed copy of the transaction closes them on the new kernel,
        // and on outright destruction they are left unclosed (a query, not
        // a violation — the transaction really never completed here).
        self.outstanding.retain(|(from, _), _| from.lh != lh);
        self.open_sends.retain(|(from, _), _| from.lh != lh);
        self.in_progress.retain(|_, entries| {
            entries.retain(|e| e.target.lh != lh);
            !entries.is_empty()
        });
        self.reply_cache.retain(|_, r| r.from.lh != lh);

        // Restart local senders; remote senders will retransmit.
        for d in deferred {
            if d.local_sender && self.lhs.contains_key(&d.from.lh) {
                self.route_send(
                    now,
                    d.seq,
                    d.from,
                    d.dest,
                    d.body,
                    d.data_bytes,
                    false,
                    d.span,
                    &mut out,
                );
            }
        }
        out
    }

    /// Demos/MP-mode deletion: like [`Kernel::delete_logical_host`] but
    /// leaves a forwarding address behind — the residual dependency the
    /// paper's design avoids (§5).
    pub fn delete_logical_host_with_forwarding(
        &mut self,
        now: SimTime,
        lh: LogicalHostId,
        new_host: HostAddr,
    ) -> Vec<KernelOutput<X>> {
        let out = self.delete_logical_host(now, lh);
        if self.cfg.use_forwarding_addresses {
            self.forwarding.insert(lh, new_host);
        }
        out
    }

    /// Drops all forwarding addresses — what a reboot of the old host does
    /// to Demos/MP-style residual state.
    pub fn clear_forwarding(&mut self) {
        self.forwarding.clear();
    }

    /// Number of live forwarding entries (residual state held for other
    /// hosts' benefit).
    pub fn forwarding_entries(&self) -> usize {
        self.forwarding.len()
    }

    /// Outstanding client Sends — requester, sequence number, and the
    /// destination logical host where one is known (`None` for global
    /// groups) — sorted. Input to the cluster-wide transaction-drain
    /// audit.
    pub fn outstanding_sends(&self) -> Vec<(ProcessId, SendSeq, Option<LogicalHostId>)> {
        let mut v: Vec<_> = self
            .outstanding
            .iter()
            .map(|(&(from, seq), o)| (from, seq, o.to.routing_lh()))
            .collect();
        v.sort_by_key(|&(from, seq, _)| (from.lh.0, from.index, seq.0));
        v
    }

    /// Orphaned transactions not yet resolved by renewed contact with
    /// their serving logical host, summed over servers. Non-zero at the
    /// end of a run means a server this kernel charged with an orphan
    /// never came back (it was destroyed, or stayed partitioned).
    pub fn unresolved_orphans(&self) -> u64 {
        self.orphaned_by_lh.values().sum()
    }

    /// Number of bulk transfers this kernel is currently a party to:
    /// outgoing copies, local fills awaiting completion, and pulls being
    /// served for other kernels.
    pub fn active_transfers(&self) -> usize {
        self.xfers.len() + self.local_xfers.len() + self.pulls.len()
    }

    /// Re-arms timing state after the workstation reboots.
    ///
    /// A crash loses every pending timer callback: without this,
    /// outstanding Sends would never retransmit again and bulk transfers
    /// would hang forever. Re-arms a retransmission timer per outstanding
    /// Send and a retention timer per retained reply, and fails bulk
    /// transfers that were in flight (their pacing state is gone;
    /// initiators recover by retrying at a higher level).
    pub fn reboot_recover(&mut self, now: SimTime) -> Vec<KernelOutput<X>> {
        self.now = now;
        let mut out = Vec::new();

        let mut sends: Vec<(ProcessId, SendSeq)> = self.outstanding.keys().copied().collect();
        sends.sort_by_key(|(p, s)| (p.lh.0, p.index, s.0));
        for (pid, seq) in sends {
            out.push(KernelOutput::SetTimer {
                key: TimerKey::Retransmit(pid, seq),
                after: self.cfg.retransmit_interval,
            });
        }

        let mut retained: Vec<(ProcessId, SendSeq)> = self.reply_cache.keys().copied().collect();
        retained.sort_by_key(|(p, s)| (p.lh.0, p.index, s.0));
        for (pid, seq) in retained {
            out.push(KernelOutput::SetTimer {
                key: TimerKey::ReplyRetention(pid, seq),
                after: self.cfg.reply_retention,
            });
        }

        let mut pushes: Vec<XferId> = self.xfers.keys().copied().collect();
        pushes.sort();
        for id in pushes {
            let x = self.xfers.remove(&id).expect("listed");
            // Pull-serving transfers are simply dropped: the puller's own
            // watchdog notices the stall and re-requests.
            if x.pull_tag.is_none() {
                out.push(KernelOutput::CopyDone {
                    xfer: id,
                    initiator: x.initiator,
                    result: Err(SendError::Timeout),
                });
            }
        }
        let mut locals: Vec<XferId> = self.local_xfers.keys().copied().collect();
        locals.sort();
        for id in locals {
            let (initiator, _) = self.local_xfers.remove(&id).expect("listed");
            out.push(KernelOutput::CopyDone {
                xfer: id,
                initiator,
                result: Err(SendError::Timeout),
            });
        }
        let mut pulls: Vec<XferId> = self.pulls.keys().copied().collect();
        pulls.sort();
        for id in pulls {
            let p = self.pulls.remove(&id).expect("listed");
            out.push(KernelOutput::CopyDone {
                xfer: id,
                initiator: p.initiator,
                result: Err(SendError::Timeout),
            });
        }
        out
    }

    /// Drops in-progress request state targeting `server` (a service
    /// process that crash-restarted and will never reply to requests it
    /// had accepted). The requesters' retransmissions then re-deliver
    /// those requests to the restarted server instead of drawing
    /// reply-pending packets forever. Returns how many were dropped.
    pub fn abort_server_transactions(&mut self, server: ProcessId) -> usize {
        let mut dropped = 0;
        let mut aborted_spans: Vec<SpanId> = Vec::new();
        self.in_progress.retain(|_, entries| {
            let before = entries.len();
            entries.retain(|e| {
                if e.target == server {
                    aborted_spans.extend(e.serve_span);
                    false
                } else {
                    true
                }
            });
            dropped += before - entries.len();
            !entries.is_empty()
        });
        // Sorted so the trace is independent of hash-map iteration order.
        aborted_spans.sort();
        for s in aborted_spans {
            s.close(
                &mut self.trace,
                TraceLevel::Detail,
                self.now,
                Subsystem::Kernel,
            );
        }
        dropped
    }

    // --- Event handlers. ---

    /// Processes a frame delivered by the network.
    pub fn handle_frame(&mut self, now: SimTime, frame: Frame<Packet<X>>) -> Vec<KernelOutput<X>> {
        self.now = now;
        let mut out = Vec::new();
        let src = frame.src;
        // "The cache is also updated based on incoming requests" (§3.1.4):
        // any packet naming a source logical host refreshes its binding —
        // but only if that logical host is not resident here (it may be
        // mid-migration *to* here, in which case routing prefers residency
        // anyway).
        if let Some(lh) = frame.payload.source_lh() {
            if !self.lhs.contains_key(&lh) {
                self.cache.learn(lh, src);
            }
        }
        match frame.payload {
            Packet::Request {
                seq,
                from,
                to,
                body,
                data_bytes,
                retransmission,
                span,
            } => self.on_request(
                now,
                src,
                seq,
                from,
                to,
                body,
                data_bytes,
                retransmission,
                span,
                &mut out,
            ),
            Packet::Reply {
                seq,
                from,
                to,
                body,
                data_bytes,
            } => self.on_reply(seq, from, to, body, data_bytes, &mut out),
            Packet::ReplyPending { seq, to, .. } => {
                if let Some(o) = self.outstanding.get_mut(&(to, seq)) {
                    o.pending_seen = true;
                    self.stats.reply_pendings_received += 1;
                }
            }
            Packet::BulkData {
                xfer,
                unit,
                last,
                bytes,
                to_lh,
                to_space,
                pull,
                ..
            } => {
                self.stats.bulk_units_received += 1;
                let ok = self
                    .lhs
                    .get_mut(&to_lh)
                    .and_then(|l| l.space_mut(to_space))
                    .map(|space| {
                        // Content arrives; size is what the model tracks.
                        debug_assert!(bytes > 0);
                        space.total_pages() > 0
                    })
                    .unwrap_or(false);
                let pkt = Packet::BulkAck {
                    xfer,
                    unit,
                    refused: !ok,
                };
                let b = pkt.wire_bytes();
                out.push(KernelOutput::Transmit(Frame::unicast(
                    self.host, src, b, pkt,
                )));
                // CopyFrom completion tracking at the puller.
                if let Some(pid) = pull {
                    if let Some(p) = self.pulls.get_mut(&pid) {
                        let new_unit = p.highest_unit.map(|h| unit > h).unwrap_or(true);
                        if new_unit {
                            p.highest_unit = Some(unit);
                            p.received_bytes += bytes;
                        }
                        if last && ok {
                            let p = self.pulls.remove(&pid).expect("checked");
                            out.push(KernelOutput::CopyDone {
                                xfer: pid,
                                initiator: p.initiator,
                                result: Ok(p.received_bytes),
                            });
                        }
                    }
                }
            }
            Packet::BulkAck {
                xfer,
                unit,
                refused,
            } => self.on_bulk_ack(xfer, unit, refused, &mut out),
            Packet::BulkPull {
                pull,
                from_lh,
                from_space,
                to_lh,
                to_space,
                pages,
            } => {
                // Serve a CopyFrom: start an ordinary push transfer back,
                // tagged with the puller's id. Duplicate BulkPulls (the
                // puller's watchdog retransmits) are ignored while a
                // tagged transfer is already running.
                let already = self.xfers.values().any(|x| x.pull_tag == Some(pull));
                let have_src = self
                    .lhs
                    .get(&from_lh)
                    .and_then(|l| l.space(from_space))
                    .is_some();
                if !have_src {
                    let pkt: Packet<X> = Packet::BulkPullNak { pull };
                    let b = pkt.wire_bytes();
                    out.push(KernelOutput::Transmit(Frame::unicast(
                        self.host, src, b, pkt,
                    )));
                } else if !already {
                    self.stats.pulls_served += 1;
                    self.cache.learn(to_lh, src);
                    let xfer = XferId(self.next_xfer);
                    self.next_xfer += 1;
                    let units = split_units(&pages, self.cfg.xfer_unit_bytes);
                    let server = ProcessId::new(from_lh, 0);
                    let mut x = OutXfer::new(xfer, server, to_lh, to_space, src, units);
                    x.pull_tag = Some(pull);
                    self.xfers.insert(xfer, x);
                    self.send_current_unit(xfer, &mut out);
                }
            }
            Packet::BulkPullNak { pull } => {
                if let Some(p) = self.pulls.remove(&pull) {
                    out.push(KernelOutput::CopyDone {
                        xfer: pull,
                        initiator: p.initiator,
                        result: Err(SendError::Refused),
                    });
                }
            }
            Packet::NewBinding { lh, host } => {
                if !self.lhs.contains_key(&lh) {
                    self.cache.learn(lh, host);
                }
            }
        }
        out
    }

    /// Processes a timer callback.
    pub fn handle_timer(&mut self, now: SimTime, key: TimerKey) -> Vec<KernelOutput<X>> {
        self.now = now;
        let mut out = Vec::new();
        match key {
            TimerKey::Retransmit(pid, seq) => self.on_retransmit_timer(pid, seq, &mut out),
            TimerKey::ReplyRetention(pid, seq) => {
                let expired = self
                    .reply_cache
                    .get(&(pid, seq))
                    .map(|r| now >= r.deadline)
                    .unwrap_or(false);
                if expired {
                    self.reply_cache.remove(&(pid, seq));
                } else if let Some(r) = self.reply_cache.get(&(pid, seq)) {
                    // The retention deadline moved (sender retransmitted);
                    // re-arm for the remainder.
                    out.push(KernelOutput::SetTimer {
                        key,
                        after: r.deadline.saturating_since(now),
                    });
                }
            }
            TimerKey::XferPace(xfer, unit) => {
                let advance = self
                    .xfers
                    .get_mut(&xfer)
                    .map(|x| x.paced(unit))
                    .unwrap_or(false);
                if advance {
                    self.advance_xfer(xfer, &mut out);
                }
            }
            TimerKey::XferAckTimeout(xfer, unit) => self.on_xfer_ack_timeout(xfer, unit, &mut out),
            TimerKey::LocalCopyDone(xfer) => {
                if let Some((initiator, bytes)) = self.local_xfers.remove(&xfer) {
                    out.push(KernelOutput::CopyDone {
                        xfer,
                        initiator,
                        result: Ok(bytes),
                    });
                }
            }
            TimerKey::PullStart(pull) => {
                // No data yet: re-send the BulkPull, bounded.
                let retry = {
                    let Some(p) = self.pulls.get_mut(&pull) else {
                        return out;
                    };
                    if p.highest_unit.is_some() {
                        None // Data is flowing; the sender's acks drive it.
                    } else if p.retries >= self.cfg.max_retransmits {
                        Some(false)
                    } else {
                        p.retries += 1;
                        Some(true)
                    }
                };
                match retry {
                    Some(true) => {
                        let p = self.pulls.get(&pull).expect("checked");
                        let pkt: Packet<X> = Packet::BulkPull {
                            pull,
                            from_lh: p.from_lh,
                            from_space: p.from_space,
                            to_lh: p.to_lh,
                            to_space: p.to_space,
                            pages: p.pages.clone(),
                        };
                        let b = pkt.wire_bytes();
                        let dst = p.src_host;
                        out.push(KernelOutput::Transmit(Frame::unicast(
                            self.host, dst, b, pkt,
                        )));
                        out.push(KernelOutput::SetTimer {
                            key: TimerKey::PullStart(pull),
                            after: self.cfg.retransmit_interval,
                        });
                    }
                    Some(false) => {
                        let p = self.pulls.remove(&pull).expect("checked");
                        out.push(KernelOutput::CopyDone {
                            xfer: pull,
                            initiator: p.initiator,
                            result: Err(SendError::Timeout),
                        });
                    }
                    None => {}
                }
            }
        }
        out
    }

    // --- Internals. ---

    #[allow(clippy::too_many_arguments)]
    fn route_send(
        &mut self,
        _now: SimTime,
        seq: SendSeq,
        from: ProcessId,
        to: Destination,
        body: X,
        data_bytes: u64,
        retransmission: bool,
        span: SpanContext,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        match to.routing_lh() {
            Some(lh) if self.lhs.contains_key(&lh) => {
                self.stats.local_sends += 1;
                self.deliver_local(
                    seq,
                    from,
                    to,
                    lh,
                    body,
                    data_bytes,
                    true,
                    retransmission,
                    span,
                    out,
                );
            }
            Some(lh) => {
                self.stats.remote_sends += 1;
                self.outstanding.insert(
                    (from, seq),
                    Outstanding {
                        to,
                        body: body.clone(),
                        data_bytes,
                        since_rebind: 0,
                        total_retransmits: 0,
                        rebound: false,
                        pending_seen: false,
                        is_group: false,
                    },
                );
                let pkt = Packet::Request {
                    seq,
                    from,
                    to,
                    body,
                    data_bytes,
                    retransmission,
                    span,
                };
                self.transmit_routed(lh, pkt, out);
                out.push(KernelOutput::SetTimer {
                    key: TimerKey::Retransmit(from, seq),
                    after: self.cfg.retransmit_interval,
                });
            }
            None => {
                let Destination::Group(gid) = to else {
                    unreachable!("routing_lh() is None only for global groups");
                };
                self.stats.group_sends += 1;
                self.outstanding.insert(
                    (from, seq),
                    Outstanding {
                        to,
                        body: body.clone(),
                        data_bytes,
                        since_rebind: 0,
                        total_retransmits: 0,
                        rebound: false,
                        pending_seen: false,
                        is_group: true,
                    },
                );
                // Local members hear it too.
                let members: Vec<ProcessId> = self
                    .group_members
                    .get(&gid)
                    .map(|m| m.iter().copied().filter(|&p| p != from).collect())
                    .unwrap_or_default();
                for m in members {
                    self.stats.deliveries += 1;
                    self.metrics.inc(self.ctr_deliveries);
                    let serve = self.open_serve_span(span);
                    self.in_progress
                        .entry((from, seq))
                        .or_default()
                        .push(InProgress {
                            local_requester: true,
                            target: m,
                            serve_span: Some(serve),
                        });
                    out.push(KernelOutput::Deliver(MsgIn {
                        to: m,
                        from,
                        seq,
                        body: body.clone(),
                        data_bytes,
                    }));
                }
                let mcast = *self
                    .group_routes
                    .get(&gid)
                    .expect("send to unrouted global group");
                let pkt = Packet::Request {
                    seq,
                    from,
                    to,
                    body,
                    data_bytes,
                    retransmission,
                    span,
                };
                let bytes = pkt.wire_bytes();
                out.push(KernelOutput::Transmit(
                    Frame::multicast(self.host, mcast, bytes, pkt).with_span(span),
                ));
                out.push(KernelOutput::SetTimer {
                    key: TimerKey::Retransmit(from, seq),
                    after: self.cfg.retransmit_interval,
                });
            }
        }
    }

    /// Delivers (or defers) a request whose routing logical host is
    /// resident here.
    #[allow(clippy::too_many_arguments)]
    fn deliver_local(
        &mut self,
        seq: SendSeq,
        from: ProcessId,
        dest: Destination,
        lh: LogicalHostId,
        body: X,
        data_bytes: u64,
        local_sender: bool,
        retransmission: bool,
        span: SpanContext,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        self.stats.freeze_checks += 1;
        // Resolve the target process: direct, or via the well-known local
        // group of this workstation (kernel server / program manager).
        let target = match dest {
            Destination::Process(p) => p,
            Destination::Group(g) => {
                self.stats.group_lookups += 1;
                match self.well_known.get(&g.0.index) {
                    Some(&p) => p,
                    None => {
                        self.stats.dead_letters += 1;
                        if local_sender {
                            self.fail_local_send(from, seq, SendError::Refused, out);
                        }
                        return;
                    }
                }
            }
        };

        // Freeze defers requests addressed *to processes* of the frozen
        // logical host (§3.1.3: the message is queued for the recipient).
        // Requests addressed through the lh's well-known *local groups*
        // target the workstation's kernel server / program manager, which
        // are not frozen — they must still be reachable (that is how a
        // suspended program gets resumed, and how migration is driven).
        let frozen = matches!(dest, Destination::Process(_))
            && self.lhs.get(&lh).map(|l| l.is_frozen()).unwrap_or(false);
        if frozen {
            let l = self.lhs.get_mut(&lh).expect("checked resident");
            let already = l.deferred_iter().any(|d| d.from == from && d.seq == seq);
            if !already {
                self.stats.deferred_requests += 1;
                self.metrics.inc(self.ctr_deferred);
                self.trace.emit(
                    TraceLevel::Detail,
                    self.now,
                    Subsystem::Kernel,
                    TraceEvent::ReplyDeferred { lh: lh.0 },
                );
                let l = self.lhs.get_mut(&lh).expect("checked resident");
                l.defer(DeferredRequest {
                    seq,
                    from,
                    dest,
                    to: target,
                    body,
                    data_bytes,
                    local_sender,
                    span,
                });
            }
            // "A reply-pending packet is sent to the sender on each
            // retransmission" (§3.1.3).
            if !local_sender && (retransmission || already) {
                self.stats.reply_pendings_sent += 1;
                self.metrics.inc(self.ctr_reply_pendings);
                let pkt = Packet::ReplyPending {
                    seq,
                    from: target,
                    to: from,
                };
                self.transmit_routed(from.lh, pkt, out);
            }
            return;
        }

        // Is the target process alive? (The target lives on the
        // workstation; for well-known groups it is outside `lh`.)
        let alive = self
            .lhs
            .get(&target.lh)
            .and_then(|l| l.process(target.index))
            .map(|p| p.is_alive())
            .unwrap_or(false);
        if !alive {
            self.stats.dead_letters += 1;
            if local_sender {
                self.fail_local_send(from, seq, SendError::Refused, out);
            }
            return;
        }

        self.stats.deliveries += 1;
        self.metrics.inc(self.ctr_deliveries);
        let serve = self.open_serve_span(span);
        self.in_progress
            .entry((from, seq))
            .or_default()
            .push(InProgress {
                local_requester: local_sender,
                target,
                serve_span: Some(serve),
            });
        out.push(KernelOutput::Deliver(MsgIn {
            to: target,
            from,
            seq,
            body,
            data_bytes,
        }));
    }

    #[allow(clippy::too_many_arguments)]
    fn on_request(
        &mut self,
        _now: SimTime,
        _src: HostAddr,
        seq: SendSeq,
        from: ProcessId,
        to: Destination,
        body: X,
        data_bytes: u64,
        retransmission: bool,
        span: SpanContext,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        match to.routing_lh() {
            Some(lh) if self.lhs.contains_key(&lh) => {
                // Duplicate suppression: retained reply? (lost-reply
                // recovery, §3.1.3.)
                if let Some(r) = self.reply_cache.get_mut(&(from, seq)) {
                    r.deadline = r.deadline.max(_now + self.cfg.reply_retention);
                    let pkt = Packet::Reply {
                        seq,
                        from: r.from,
                        to: from,
                        body: r.body.clone(),
                        data_bytes: r.data_bytes,
                    };
                    self.transmit_routed(from.lh, pkt, out);
                    return;
                }
                // Already delivered and being served: reply-pending.
                if let Some(entries) = self.in_progress.get(&(from, seq)) {
                    if let Some(e) = entries.first() {
                        self.stats.reply_pendings_sent += 1;
                        let pkt = Packet::ReplyPending {
                            seq,
                            from: e.target,
                            to: from,
                        };
                        self.transmit_routed(from.lh, pkt, out);
                    }
                    return;
                }
                self.deliver_local(
                    seq,
                    from,
                    to,
                    lh,
                    body,
                    data_bytes,
                    false,
                    retransmission,
                    span,
                    out,
                );
            }
            Some(lh) => {
                if let Some(&fw) = self.forwarding.get(&lh) {
                    // Demos/MP mode: relay the request and send the
                    // requester an address update.
                    self.stats.forwarded_requests += 1;
                    let pkt = Packet::Request {
                        seq,
                        from,
                        to,
                        body,
                        data_bytes,
                        retransmission,
                        span,
                    };
                    let bytes = pkt.wire_bytes();
                    out.push(KernelOutput::Transmit(
                        Frame::unicast(self.host, fw, bytes, pkt).with_span(span),
                    ));
                    let update = Packet::NewBinding { lh, host: fw };
                    let ub = update.wire_bytes();
                    out.push(KernelOutput::Transmit(Frame::unicast(
                        self.host, _src, ub, update,
                    )));
                } else {
                    // Stale binding or broadcast probe for a logical host
                    // that is not here: drop; the sender recovers by
                    // rebinding (§3.1.4).
                    self.stats.not_here += 1;
                }
            }
            None => {
                let Destination::Group(gid) = to else {
                    unreachable!();
                };
                if self.in_progress.contains_key(&(from, seq)) {
                    return; // Duplicate multicast.
                }
                let members: Vec<ProcessId> = self
                    .group_members
                    .get(&gid)
                    .map(|m| m.iter().copied().collect())
                    .unwrap_or_default();
                for m in members {
                    self.stats.deliveries += 1;
                    self.metrics.inc(self.ctr_deliveries);
                    let serve = self.open_serve_span(span);
                    self.in_progress
                        .entry((from, seq))
                        .or_default()
                        .push(InProgress {
                            local_requester: false,
                            target: m,
                            serve_span: Some(serve),
                        });
                    out.push(KernelOutput::Deliver(MsgIn {
                        to: m,
                        from,
                        seq,
                        body: body.clone(),
                        data_bytes,
                    }));
                }
            }
        }
    }

    fn on_reply(
        &mut self,
        seq: SendSeq,
        from: ProcessId,
        to: ProcessId,
        body: X,
        data_bytes: u64,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        if !self.outstanding.contains_key(&(to, seq)) {
            self.stats.late_replies += 1;
            return;
        }
        // Replies to frozen logical hosts are discarded; the sender's
        // retransmissions keep the replier's retention alive (§3.1.3).
        let frozen = self.lhs.get(&to.lh).map(|l| l.is_frozen()).unwrap_or(false);
        if frozen {
            self.stats.replies_discarded_frozen += 1;
            return;
        }
        self.outstanding.remove(&(to, seq));
        // Renewed contact: a reply from a logical host we had charged with
        // orphaned transactions proves the server came back (reboot
        // recovery, partition heal) — resolve them instead of warning
        // forever.
        if let Some(count) = self.orphaned_by_lh.remove(&from.lh.0) {
            self.stats.orphans_resolved += count;
            self.trace.emit(
                TraceLevel::Info,
                self.now,
                Subsystem::Kernel,
                TraceEvent::OrphansResolved {
                    lh: from.lh.0,
                    count,
                },
            );
        }
        self.complete_local_send(to, seq, from, body, data_bytes, out);
    }

    fn complete_local_send(
        &mut self,
        pid: ProcessId,
        seq: SendSeq,
        from: ProcessId,
        body: X,
        data_bytes: u64,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        // Duplicate completions are already excluded upstream (the
        // outstanding entry or in-progress record is consumed exactly
        // once). Server processes multiplex several logical transactions
        // over one pid — in real V they would be teams of worker
        // processes — so the process state is updated best-effort only.
        if let Some(p) = self
            .lhs
            .get_mut(&pid.lh)
            .and_then(|l| l.process_mut(pid.index))
        {
            if matches!(p.state, ProcessState::AwaitingReply { seq: s } if s == seq) {
                p.state = ProcessState::Ready;
            }
        }
        if let Some(sid) = self.open_sends.remove(&(pid, seq)) {
            sid.close(
                &mut self.trace,
                TraceLevel::Detail,
                self.now,
                Subsystem::Kernel,
            );
        }
        out.push(KernelOutput::SendDone {
            pid,
            seq,
            result: Ok(ReplyIn {
                from,
                body,
                data_bytes,
            }),
        });
    }

    fn fail_local_send(
        &mut self,
        pid: ProcessId,
        seq: SendSeq,
        err: SendError,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        self.stats.send_failures += 1;
        if let Some(l) = self.lhs.get_mut(&pid.lh) {
            if let Some(p) = l.process_mut(pid.index) {
                if matches!(p.state, ProcessState::AwaitingReply { seq: s } if s == seq) {
                    p.state = ProcessState::Ready;
                }
            }
        }
        if let Some(sid) = self.open_sends.remove(&(pid, seq)) {
            sid.close(
                &mut self.trace,
                TraceLevel::Detail,
                self.now,
                Subsystem::Kernel,
            );
        }
        out.push(KernelOutput::SendDone {
            pid,
            seq,
            result: Err(err),
        });
    }

    /// Delay before the next retransmission of `(pid, seq)` after `tries`
    /// retries have already gone out: capped exponential backoff on the
    /// base interval with ±10% jitter. The jitter is a pure function of
    /// (host, sender, transaction, try), so synchronized senders
    /// de-correlate identically on every replay of a seed.
    fn retransmit_delay(&self, pid: ProcessId, seq: SendSeq, tries: u32) -> SimDuration {
        let base = self.cfg.retransmit_interval;
        if tries == 0 || self.cfg.retransmit_backoff <= 1.0 {
            return base;
        }
        let backed = base.mul_f64(self.cfg.retransmit_backoff.powi(tries as i32));
        let capped = backed.min(self.cfg.retransmit_max_interval).max(base);
        let key = (self.host.0 as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(((pid.lh.0 as u64) << 32) | pid.index as u64)
            .wrapping_add(seq.0.rotate_left(17))
            .wrapping_add(tries as u64);
        let u = DetRng::seed(key).unit();
        capped.mul_f64(0.9 + 0.2 * u)
    }

    fn on_retransmit_timer(
        &mut self,
        pid: ProcessId,
        seq: SendSeq,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        let Some(o) = self.outstanding.get_mut(&(pid, seq)) else {
            return; // Completed; stale timer.
        };
        o.total_retransmits += 1;
        o.since_rebind += 1;
        let tries = o.total_retransmits;

        let (give_up, orphaned) = if o.pending_seen {
            let g = o.total_retransmits > self.cfg.hard_retransmit_cap;
            (g, g)
        } else {
            (o.total_retransmits > self.cfg.max_retransmits, false)
        };
        if give_up {
            let lh = o.to.routing_lh().map_or(pid.lh.0, |l| l.0);
            self.outstanding.remove(&(pid, seq));
            if orphaned {
                // The server kept signalling reply-pending but never
                // replied: the transaction is orphaned, likely because the
                // serving logical host vanished mid-request.
                self.stats.orphaned_transactions += 1;
                *self.orphaned_by_lh.entry(lh).or_insert(0) += 1;
                self.metrics.inc(self.ctr_orphaned);
                self.trace.emit(
                    TraceLevel::Warn,
                    self.now,
                    Subsystem::Kernel,
                    TraceEvent::OrphanedTransaction { lh, tries },
                );
            }
            self.fail_local_send(pid, seq, SendError::Timeout, out);
            return;
        }

        // Invalidate the binding after a small number of retransmissions
        // and fall back to broadcasting the reference (§3.1.4).
        let (to, body, data_bytes, is_group) = (o.to, o.body.clone(), o.data_bytes, o.is_group);
        if !is_group && o.since_rebind >= self.cfg.retransmits_before_rebind && !o.rebound {
            o.rebound = true;
            o.since_rebind = 0;
            if let Some(lh) = to.routing_lh() {
                self.cache.invalidate(lh);
            }
        }

        self.stats.retransmissions += 1;
        self.metrics.inc(self.ctr_retransmissions);
        self.trace.emit(
            TraceLevel::Detail,
            self.now,
            Subsystem::Kernel,
            TraceEvent::Retransmit {
                lh: to.routing_lh().map_or(pid.lh.0, |l| l.0),
                tries,
            },
        );
        let span = self.send_span_ctx(pid, seq);
        let pkt = Packet::Request {
            seq,
            from: pid,
            to,
            body,
            data_bytes,
            retransmission: true,
            span,
        };
        if is_group {
            let Destination::Group(gid) = to else {
                unreachable!();
            };
            let mcast = *self.group_routes.get(&gid).expect("unrouted group");
            let bytes = pkt.wire_bytes();
            out.push(KernelOutput::Transmit(
                Frame::multicast(self.host, mcast, bytes, pkt).with_span(span),
            ));
        } else {
            let lh = to.routing_lh().expect("non-group send routes by lh");
            self.transmit_routed(lh, pkt, out);
        }
        out.push(KernelOutput::SetTimer {
            key: TimerKey::Retransmit(pid, seq),
            after: self.retransmit_delay(pid, seq, tries),
        });
    }

    fn on_bulk_ack(
        &mut self,
        xfer: XferId,
        unit: u32,
        refused: bool,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        let Some(x) = self.xfers.get_mut(&xfer) else {
            return;
        };
        if refused {
            let initiator = x.initiator;
            self.xfers.remove(&xfer);
            out.push(KernelOutput::CopyDone {
                xfer,
                initiator,
                result: Err(SendError::Refused),
            });
            return;
        }
        if x.ack(unit) {
            self.advance_xfer(xfer, out);
        }
    }

    fn on_xfer_ack_timeout(&mut self, xfer: XferId, unit: u32, out: &mut Vec<KernelOutput<X>>) {
        let retry = {
            let Some(x) = self.xfers.get_mut(&xfer) else {
                return;
            };
            if x.current_unit() != unit || x.current_acked() {
                return; // Stale, or already acked (pace pending).
            }
            x.retries += 1;
            if x.retries > self.cfg.max_retransmits {
                None
            } else {
                Some(())
            }
        };
        match retry {
            None => {
                let x = self.xfers.remove(&xfer).expect("checked above");
                out.push(KernelOutput::CopyDone {
                    xfer,
                    initiator: x.initiator,
                    result: Err(SendError::Timeout),
                });
            }
            Some(()) => {
                self.stats.bulk_units_retransmitted += 1;
                self.retransmit_current_unit(xfer, out);
            }
        }
    }

    fn advance_xfer(&mut self, xfer: XferId, out: &mut Vec<KernelOutput<X>>) {
        let more = {
            let x = self.xfers.get_mut(&xfer).expect("advancing unknown xfer");
            x.advance()
        };
        if more {
            self.send_current_unit(xfer, out);
        } else {
            let x = self.xfers.remove(&xfer).expect("xfer vanished");
            out.push(KernelOutput::CopyDone {
                xfer,
                initiator: x.initiator,
                result: Ok(x.total_bytes()),
            });
        }
    }

    fn send_current_unit(&mut self, xfer: XferId, out: &mut Vec<KernelOutput<X>>) {
        let (frame, pace, ack_to) = {
            let x = self.xfers.get(&xfer).expect("sending on unknown xfer");
            let unit = x.unit();
            self.stats.bulk_units_sent += 1;
            self.stats.bulk_bytes_sent += unit.bytes;
            let pkt: Packet<X> = Packet::BulkData {
                xfer,
                unit: x.current_unit(),
                last: x.on_last_unit(),
                bytes: unit.bytes,
                to_lh: x.to_lh,
                to_space: x.to_space,
                pages: unit.pages.clone(),
                pull: x.pull_tag,
            };
            let bytes = pkt.wire_bytes();
            let pace = calib::bulk_copy_time(unit.bytes);
            (
                Frame::unicast(self.host, x.dst_host, bytes, pkt),
                pace,
                pace + self.cfg.retransmit_interval,
            )
        };
        let x = self.xfers.get(&xfer).expect("checked");
        let unit = x.current_unit();
        out.push(KernelOutput::Transmit(frame));
        out.push(KernelOutput::SetTimer {
            key: TimerKey::XferPace(xfer, unit),
            after: pace,
        });
        out.push(KernelOutput::SetTimer {
            key: TimerKey::XferAckTimeout(xfer, unit),
            after: ack_to,
        });
    }

    fn retransmit_current_unit(&mut self, xfer: XferId, out: &mut Vec<KernelOutput<X>>) {
        let (frame, unit) = {
            let x = self.xfers.get(&xfer).expect("retransmitting unknown xfer");
            let unit = x.unit();
            self.stats.bulk_bytes_sent += unit.bytes;
            let pkt: Packet<X> = Packet::BulkData {
                xfer,
                unit: x.current_unit(),
                last: x.on_last_unit(),
                bytes: unit.bytes,
                to_lh: x.to_lh,
                to_space: x.to_space,
                pages: unit.pages.clone(),
                pull: x.pull_tag,
            };
            let bytes = pkt.wire_bytes();
            (
                Frame::unicast(self.host, x.dst_host, bytes, pkt),
                x.current_unit(),
            )
        };
        out.push(KernelOutput::Transmit(frame));
        out.push(KernelOutput::SetTimer {
            key: TimerKey::XferAckTimeout(xfer, unit),
            after: self.cfg.retransmit_interval,
        });
    }

    /// Transmits a packet routed by logical host: unicast when the binding
    /// cache knows the physical host, broadcast otherwise.
    fn transmit_routed(
        &mut self,
        lh: LogicalHostId,
        pkt: Packet<X>,
        out: &mut Vec<KernelOutput<X>>,
    ) {
        let bytes = pkt.wire_bytes();
        let span = match &pkt {
            Packet::Request { span, .. } => *span,
            _ => SpanContext::NONE,
        };
        match self.cache.lookup(lh) {
            Some(h) => {
                self.metrics.inc(self.ctr_binding_hits);
                out.push(KernelOutput::Transmit(
                    Frame::unicast(self.host, h, bytes, pkt).with_span(span),
                ))
            }
            None => {
                self.metrics.inc(self.ctr_binding_misses);
                self.stats.broadcast_requests += 1;
                out.push(KernelOutput::Transmit(
                    Frame::broadcast(self.host, bytes, pkt).with_span(span),
                ));
            }
        }
    }
}
