//! A miniature multi-kernel test rig.
//!
//! Wires several [`Kernel`]s to one simulated [`Ethernet`] segment and an
//! event engine, with optional auto-responder closures standing in for
//! server processes. Used by this crate's protocol tests and by downstream
//! crates' unit tests; the production event loop lives in `vcluster`.

use std::collections::BTreeMap;

use vnet::{Delivery, Ethernet, Frame, HostAddr, LossModel};
use vsim::{DetRng, Engine, SimDuration, SimTime};

use crate::ids::ProcessId;
use crate::kernel::{Kernel, KernelConfig, KernelOutput, MsgIn, ReplyIn, SendError, TimerKey};
use crate::packet::{Packet, SendSeq, XferId};

/// Events flowing through the rig.
#[derive(Debug)]
pub enum RigEvent<X> {
    /// A frame reached a station.
    Frame {
        /// Receiving station.
        to: HostAddr,
        /// The frame.
        frame: Frame<Packet<X>>,
    },
    /// A kernel timer fired.
    Timer {
        /// The kernel's station.
        host: HostAddr,
        /// Timer key.
        key: TimerKey,
    },
}

/// Application-level outcomes observed by the rig.
#[derive(Debug)]
pub enum AppEvent<X> {
    /// A request was delivered to a process.
    Delivered(MsgIn<X>),
    /// A Send completed.
    SendDone {
        /// Unblocked sender.
        pid: ProcessId,
        /// Transaction.
        seq: SendSeq,
        /// Outcome.
        result: Result<ReplyIn<X>, SendError>,
    },
    /// A CopyTo completed.
    CopyDone {
        /// Transfer.
        xfer: XferId,
        /// Initiator.
        initiator: ProcessId,
        /// Outcome.
        result: Result<u64, SendError>,
    },
}

type Responder<X> = Box<dyn FnMut(&MsgIn<X>) -> Option<X>>;

/// The rig.
pub struct Rig<X> {
    /// The event engine (public so tests can inspect time).
    pub engine: Engine<RigEvent<X>>,
    /// The wire.
    pub net: Ethernet<Packet<X>>,
    kernels: Vec<Kernel<X>>,
    /// Observed application events, with their times.
    pub log: Vec<(SimTime, AppEvent<X>)>,
    responders: BTreeMap<ProcessId, Responder<X>>,
}

impl<X: Clone + std::fmt::Debug> Rig<X> {
    /// Builds a rig with `n` kernels on a lossless wire.
    pub fn new(n: usize) -> Self {
        Self::with_loss(n, LossModel::None, KernelConfig::default())
    }

    /// Builds a rig with a loss model and kernel configuration.
    pub fn with_loss(n: usize, loss: LossModel, cfg: KernelConfig) -> Self {
        let mut net = Ethernet::new(loss, DetRng::seed(0xF00D));
        let mut kernels = Vec::with_capacity(n);
        for _ in 0..n {
            let host = net.attach();
            kernels.push(Kernel::new(host, cfg.clone()));
        }
        Rig {
            engine: Engine::new(),
            net,
            kernels,
            log: Vec::new(),
            responders: BTreeMap::new(),
        }
    }

    /// The kernel at station index `i`.
    pub fn kernel(&self, i: usize) -> &Kernel<X> {
        &self.kernels[i]
    }

    /// Mutable kernel access.
    pub fn kernel_mut(&mut self, i: usize) -> &mut Kernel<X> {
        &mut self.kernels[i]
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Always false; rigs have at least one kernel in practice.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Registers an auto-responder: whenever a request is delivered to
    /// `pid`, the closure runs and, if it returns a body, the process
    /// replies immediately.
    pub fn respond(&mut self, pid: ProcessId, f: impl FnMut(&MsgIn<X>) -> Option<X> + 'static) {
        self.responders.insert(pid, Box::new(f));
    }

    /// Invokes `f` on kernel `i` and feeds its outputs into the rig.
    pub fn drive(
        &mut self,
        i: usize,
        f: impl FnOnce(&mut Kernel<X>, SimTime) -> Vec<KernelOutput<X>>,
    ) {
        let now = self.engine.now();
        let outs = f(&mut self.kernels[i], now);
        self.apply(i, outs);
    }

    fn host_index(&self, host: HostAddr) -> usize {
        host.0 as usize
    }

    fn apply(&mut self, i: usize, outs: Vec<KernelOutput<X>>) {
        let host = self.kernels[i].host();
        for o in outs {
            match o {
                KernelOutput::Transmit(frame) => {
                    let now = self.engine.now();
                    for Delivery { to, at, frame } in self.net.transmit(now, frame) {
                        self.engine.schedule_at(at, RigEvent::Frame { to, frame });
                    }
                }
                KernelOutput::SetTimer { key, after } => {
                    self.engine
                        .schedule_after(after, RigEvent::Timer { host, key });
                }
                KernelOutput::Deliver(msg) => {
                    let now = self.engine.now();
                    let reply = self
                        .responders
                        .get_mut(&msg.to)
                        .and_then(|f| f(&msg))
                        .map(|body| (msg.to, msg.from, msg.seq, body));
                    self.log.push((now, AppEvent::Delivered(msg)));
                    if let Some((from, requester, seq, body)) = reply {
                        self.drive(i, |k, t| k.reply(t, from, requester, seq, body, 0));
                    }
                }
                KernelOutput::SendDone { pid, seq, result } => {
                    let now = self.engine.now();
                    self.log
                        .push((now, AppEvent::SendDone { pid, seq, result }));
                }
                KernelOutput::CopyDone {
                    xfer,
                    initiator,
                    result,
                } => {
                    let now = self.engine.now();
                    self.log.push((
                        now,
                        AppEvent::CopyDone {
                            xfer,
                            initiator,
                            result,
                        },
                    ));
                }
                KernelOutput::JoinMcast(g) => self.net.join(g, host),
                KernelOutput::LeaveMcast(g) => self.net.leave(g, host),
            }
        }
    }

    /// Runs until the event queue drains or `limit` is reached.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some((_, ev)) = self.engine.step_due(limit) {
            match ev {
                RigEvent::Frame { to, frame } => {
                    let i = self.host_index(to);
                    self.drive(i, |k, t| k.handle_frame(t, frame));
                }
                RigEvent::Timer { host, key } => {
                    let i = self.host_index(host);
                    self.drive(i, |k, t| k.handle_timer(t, key));
                }
            }
        }
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let limit = self.engine.now() + d;
        self.run_until(limit);
    }

    /// Completed sends observed so far, as `(pid, seq, ok)` triples.
    pub fn send_results(&self) -> Vec<(ProcessId, SendSeq, bool)> {
        self.log
            .iter()
            .filter_map(|(_, e)| match e {
                AppEvent::SendDone { pid, seq, result } => Some((*pid, *seq, result.is_ok())),
                _ => None,
            })
            .collect()
    }

    /// Requests delivered so far, as `(to, from)` pairs.
    pub fn deliveries(&self) -> Vec<(ProcessId, ProcessId)> {
        self.log
            .iter()
            .filter_map(|(_, e)| match e {
                AppEvent::Delivered(m) => Some((m.to, m.from)),
                _ => None,
            })
            .collect()
    }
}
