//! Interkernel protocol tests: Send/Reply over the wire, retransmission,
//! reply retention, freeze semantics, groups, bulk copy and the kernel-level
//! migration record — the §3.1 machinery, exercised end to end on the
//! two-to-three kernel test rig.

use vkernel::testkit::{AppEvent, Rig};
use vkernel::{
    Destination, GroupId, KernelConfig, LogicalHostId, Priority, ProcessId, SendError,
    PROGRAM_MANAGER_INDEX,
};
use vmem::SpaceLayout;
use vnet::{HostAddr, LossModel, McastGroup};
use vsim::{SimDuration, SimTime, Trace, TraceEvent, TraceLevel};

type Body = u32;

/// Creates a one-process logical host `lh` on kernel `i`; returns its pid.
fn spawn(rig: &mut Rig<Body>, i: usize, lh: u32) -> ProcessId {
    let l = rig.kernel_mut(i).create_logical_host(LogicalHostId(lh));
    let team = l.create_space(SpaceLayout::tiny());
    l.create_process(team, Priority::LOCAL, false)
}

fn run_all(rig: &mut Rig<Body>) {
    rig.run_until(SimTime::MAX);
}

#[test]
fn local_send_reply_round_trip() {
    let mut rig: Rig<Body> = Rig::new(1);
    let a = spawn(&mut rig, 0, 1);
    let b = {
        let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(2));
        let team = l.create_space(SpaceLayout::tiny());
        l.create_process(team, Priority::LOCAL, false)
    };
    rig.respond(b, |m| Some(m.body + 1));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 41, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2, "local send should succeed");
    // No frames were needed.
    assert_eq!(rig.net.stats().frames_sent, 0);
    assert_eq!(rig.kernel(0).stats().local_sends, 1);
}

#[test]
fn remote_send_with_cached_binding() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body * 2));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 21, 0));
    run_all(&mut rig);
    assert_eq!(rig.send_results(), vec![(a, vkernel::SendSeq(0), true)]);
    // One request frame, one reply frame.
    assert_eq!(rig.net.stats().frames_sent, 2);
    assert_eq!(rig.kernel(1).stats().deliveries, 1);
    // The reply taught kernel 0 nothing new, but kernel 1 learned lh1's
    // binding from the incoming request.
    assert_eq!(
        rig.kernel(1).binding_cache().peek(LogicalHostId(1)),
        Some(HostAddr(0))
    );
}

#[test]
fn remote_send_without_binding_broadcasts_and_learns() {
    let mut rig: Rig<Body> = Rig::new(3);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 2, 2);
    rig.respond(b, |m| Some(m.body));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 7, 0));
    run_all(&mut rig);
    assert_eq!(rig.send_results().len(), 1);
    assert!(rig.send_results()[0].2);
    assert_eq!(rig.kernel(0).stats().broadcast_requests, 1);
    // The reply taught kernel 0 where lh2 lives.
    assert_eq!(
        rig.kernel(0).binding_cache().peek(LogicalHostId(2)),
        Some(HostAddr(2))
    );
    // Kernel 1 heard the broadcast but does not host lh2: dropped.
    assert_eq!(rig.kernel(1).stats().not_here, 1);
}

#[test]
fn lost_request_recovered_by_retransmission() {
    // Drop exactly the first delivery (the request); the retransmission
    // gets through and the exchange completes.
    let mut rig: Rig<Body> = Rig::with_loss(2, LossModel::FirstN(1), KernelConfig::default());
    *rig.kernel_mut(0).trace_mut() = Trace::new(TraceLevel::Detail);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    run_all(&mut rig);
    assert_eq!(rig.send_results(), vec![(a, vkernel::SendSeq(0), true)]);
    // The retransmission is visible as a typed trace event, not a log line.
    assert!(
        rig.kernel(0)
            .trace()
            .count_matching(|e| matches!(e, TraceEvent::Retransmit { lh: 2, .. }))
            >= 1
    );
    // Exactly one application-level delivery despite the loss.
    assert_eq!(rig.kernel(1).stats().deliveries, 1);
}

#[test]
fn lost_reply_served_from_reply_cache() {
    // Delivery 1 = request (passes: drop the 2nd only), delivery 2 = reply
    // (DROPPED). The sender retransmits; the replier answers from its
    // reply cache without re-delivering to the application.
    let mut rig: Rig<Body> = Rig::with_loss(
        2,
        LossModel::EveryNth(2),
        KernelConfig {
            // With EveryNth(2) every second delivery drops; request (odd)
            // passes, reply (even) drops, retransmitted request (odd)
            // passes, cached reply (even) drops, ... until an odd slot
            // carries the reply. Insert a jitter-free warm-up so phases
            // shift: simplest is to accept several rounds; retransmission
            // interval is 0.5 s so give it time.
            ..KernelConfig::default()
        },
    );
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    // With a strict alternating drop pattern, each retransmission round is
    // request(pass) + reply(drop) + reply-pending? No: the reply comes from
    // the cache as a single frame, so rounds are 2 deliveries and the
    // pattern never breaks... except ReplyPending/odd-even drift from the
    // retention-refresh traffic. Run long enough and assert on stats
    // instead of completion below; then switch phase with FirstN to prove
    // completion.
    rig.run_for(SimDuration::from_secs(3));
    assert!(rig.kernel(0).stats().retransmissions >= 1);
    assert_eq!(
        rig.kernel(1).stats().deliveries,
        1,
        "reply cache must suppress re-delivery"
    );

    // Deterministic completion variant: drop only the reply (delivery 2).
    let mut rig: Rig<Body> = Rig::with_loss(2, LossModel::EveryNth(0), KernelConfig::default());
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body));
    // Make the 2nd delivery (the reply) the only loss by sending one
    // sacrificial ping first so the counter sits at 2 when FirstN-like
    // behaviour is needed. EveryNth(0) never drops, so emulate by dropping
    // the reply at the receiver: freeze the *sender* instead (§3.1.3
    // discard path), then unfreeze.
    rig.drive(0, |k, t| k.send(t, a, b.into(), 2, 0));
    rig.kernel_mut(0).freeze(LogicalHostId(1));
    rig.run_for(SimDuration::from_secs(2));
    assert!(rig.kernel(0).stats().replies_discarded_frozen >= 1);
    rig.kernel_mut(0)
        .logical_host_mut(LogicalHostId(1))
        .expect("lh")
        .unfreeze();
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2, "reply recovered from the reply cache");
    assert_eq!(rig.kernel(1).stats().deliveries, 1);
}

#[test]
fn unresponsive_target_times_out() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    // No responder for b: request delivered, never answered — but an
    // in-progress request earns ReplyPending on each retransmission, so
    // the sender does NOT give up (§3.1). To observe a timeout, address a
    // process that does not exist at all.
    let ghost = ProcessId::new(LogicalHostId(9), 16);
    let _ = b;
    rig.drive(0, |k, t| k.send(t, a, ghost.into(), 1, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(!results[0].2, "send to a ghost must fail");
    let max = rig.kernel(0).config().max_retransmits;
    assert_eq!(rig.kernel(0).stats().retransmissions as u32, max);
}

#[test]
fn busy_server_reply_pending_prevents_abort() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    // b never replies: the request stays in progress forever.
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    let horizon = SimTime::ZERO + SimDuration::from_secs(30);
    rig.run_until(horizon);
    // Well past max_retransmits * interval (10 * 0.5 s = 5 s), yet no
    // failure: reply-pending packets kept it alive.
    assert!(rig.send_results().is_empty(), "send must still be pending");
    assert!(rig.kernel(0).stats().reply_pendings_received > 5);
    assert!(rig.kernel(1).stats().reply_pendings_sent > 5);
    // The hard cap eventually fires (200 * 0.5 s = 100 s).
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(!results[0].2);
}

#[test]
fn freeze_defers_and_unfreeze_in_place_delivers() {
    let mut rig: Rig<Body> = Rig::new(2);
    *rig.kernel_mut(1).trace_mut() = Trace::new(TraceLevel::Detail);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body + 100));
    rig.kernel_mut(1).freeze(LogicalHostId(2));

    rig.drive(0, |k, t| k.send(t, a, b.into(), 5, 0));
    rig.run_for(SimDuration::from_secs(2));
    assert!(rig.send_results().is_empty(), "deferred while frozen");
    // The deferral shows up as a structured event on the frozen host.
    assert_eq!(
        rig.kernel(1)
            .trace()
            .count_matching(|e| matches!(e, TraceEvent::ReplyDeferred { lh: 2 })),
        1
    );
    // Retransmissions to the frozen host drew reply-pending packets.
    assert!(rig.kernel(1).stats().reply_pendings_sent >= 1);
    assert_eq!(rig.kernel(1).stats().deliveries, 0);

    rig.drive(1, |k, t| k.unfreeze_in_place(t, LogicalHostId(2)));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2, "deferred request completes after unfreeze");
    assert_eq!(rig.kernel(1).stats().deliveries, 1);
}

#[test]
fn reply_to_frozen_sender_is_discarded_then_recovered() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body + 1));
    // Freeze the *sender's* logical host right after issuing the send.
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    rig.kernel_mut(0).freeze(LogicalHostId(1));
    rig.run_for(SimDuration::from_secs(3));
    // The reply arrived and was discarded; the kernel kept retransmitting
    // on behalf of the frozen awaiting process (§3.1.3).
    assert!(rig.kernel(0).stats().replies_discarded_frozen >= 1);
    assert!(rig.send_results().is_empty());
    // Unfreeze: the next retransmission is answered from b's reply cache.
    rig.kernel_mut(0)
        .logical_host_mut(LogicalHostId(1))
        .expect("lh")
        .unfreeze();
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2, "reply recovered after unfreeze");
    // The application-level delivery happened exactly once.
    assert_eq!(rig.kernel(1).stats().deliveries, 1);
}

#[test]
fn global_group_send_first_reply_wins() {
    let mut rig: Rig<Body> = Rig::new(3);
    let gid = GroupId::PROGRAM_MANAGERS;
    let mcast = McastGroup(1);
    for i in 0..3 {
        rig.kernel_mut(i).set_group_route(gid, mcast);
    }
    let client = spawn(&mut rig, 0, 1);
    let pm1 = spawn(&mut rig, 1, 2);
    let pm2 = spawn(&mut rig, 2, 3);
    rig.drive(1, |k, _| k.join_group(gid, pm1));
    rig.drive(2, |k, _| k.join_group(gid, pm2));
    rig.respond(pm1, |_| Some(111));
    rig.respond(pm2, |_| Some(222));

    rig.drive(0, |k, t| k.send(t, client, gid.into(), 0, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1, "exactly one completion");
    assert!(results[0].2);
    // Both members were delivered the query.
    assert_eq!(
        rig.kernel(1).stats().deliveries + rig.kernel(2).stats().deliveries,
        2
    );
    // The second response was counted as late/extra.
    assert_eq!(rig.kernel(0).stats().late_replies, 1);
}

#[test]
fn group_member_on_same_host_also_hears_query() {
    let mut rig: Rig<Body> = Rig::new(2);
    let gid = GroupId::PROGRAM_MANAGERS;
    let mcast = McastGroup(1);
    rig.kernel_mut(0).set_group_route(gid, mcast);
    rig.kernel_mut(1).set_group_route(gid, mcast);
    let client = spawn(&mut rig, 0, 1);
    let local_pm = spawn(&mut rig, 0, 2);
    let remote_pm = spawn(&mut rig, 1, 3);
    rig.drive(0, |k, _| k.join_group(gid, local_pm));
    rig.drive(1, |k, _| k.join_group(gid, remote_pm));
    rig.respond(local_pm, |_| Some(1));
    rig.respond(remote_pm, |_| Some(2));
    rig.drive(0, |k, t| k.send(t, client, gid.into(), 0, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2);
    assert_eq!(rig.deliveries().len(), 2, "both members heard the query");
}

#[test]
fn well_known_local_group_reaches_program_manager() {
    let mut rig: Rig<Body> = Rig::new(2);
    let client = spawn(&mut rig, 0, 1);
    // Workstation 1 has a system logical host with its program manager.
    let pm = spawn(&mut rig, 1, 2);
    rig.kernel_mut(1)
        .register_well_known(PROGRAM_MANAGER_INDEX, pm);
    // A program on lh3 (also workstation 1) is what the client knows.
    let prog = spawn(&mut rig, 1, 3);
    let _ = prog;
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(3), HostAddr(1));
    rig.respond(pm, |m| Some(m.body + 1000));

    // Address "the program manager of whatever host runs lh3".
    let dest = Destination::Group(GroupId::program_manager_of(LogicalHostId(3)));
    rig.drive(0, |k, t| k.send(t, client, dest, 1, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2);
    assert_eq!(rig.deliveries(), vec![(pm, client)]);
    assert_eq!(rig.kernel(1).stats().group_lookups, 1);
}

#[test]
fn bulk_copy_remote_takes_three_seconds_per_megabyte() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    // Target logical host with a 1 MB space on kernel 1.
    let layout = SpaceLayout {
        code_bytes: 0,
        init_data_bytes: 0,
        heap_bytes: 1024 * 1024,
        stack_bytes: 0,
    };
    let (tlh, tspace) = {
        let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
        let s = l.create_space(layout);
        (LogicalHostId(50), s)
    };
    rig.kernel_mut(0).learn_binding(tlh, HostAddr(1));
    let pages: Vec<u32> = (0..512).collect(); // 512 * 2 KB = 1 MB.
    rig.drive(0, |k, t| k.copy_pages(t, a, tlh, tspace, pages).1);
    run_all(&mut rig);
    let done: Vec<_> = rig
        .log
        .iter()
        .filter_map(|(t, e)| match e {
            AppEvent::CopyDone { result, .. } => Some((*t, *result)),
            _ => None,
        })
        .collect();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, Ok(1024 * 1024));
    let secs = done[0].0.as_secs_f64();
    assert!((secs - 3.0).abs() < 0.2, "1 MB copy took {secs:.3}s");
    assert_eq!(rig.kernel(0).stats().bulk_units_sent, 32);
}

#[test]
fn bulk_copy_survives_packet_loss() {
    let mut rig: Rig<Body> = Rig::with_loss(2, LossModel::EveryNth(7), KernelConfig::default());
    let a = spawn(&mut rig, 0, 1);
    let layout = SpaceLayout {
        code_bytes: 0,
        init_data_bytes: 0,
        heap_bytes: 256 * 1024,
        stack_bytes: 0,
    };
    let (tlh, tspace) = {
        let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
        let s = l.create_space(layout);
        (LogicalHostId(50), s)
    };
    rig.kernel_mut(0).learn_binding(tlh, HostAddr(1));
    let pages: Vec<u32> = (0..128).collect(); // 256 KB.
    rig.drive(0, |k, t| k.copy_pages(t, a, tlh, tspace, pages).1);
    run_all(&mut rig);
    let ok = rig
        .log
        .iter()
        .any(|(_, e)| matches!(e, AppEvent::CopyDone { result: Ok(b), .. } if *b == 256 * 1024));
    assert!(ok, "copy must complete despite loss");
    assert!(rig.kernel(0).stats().bulk_units_retransmitted >= 1);
}

#[test]
fn bulk_copy_to_missing_space_is_refused() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(50), HostAddr(1));
    rig.drive(0, |k, t| {
        k.copy_pages(t, a, LogicalHostId(50), vmem::SpaceId(9), vec![0, 1])
            .1
    });
    run_all(&mut rig);
    let refused = rig.log.iter().any(|(_, e)| {
        matches!(
            e,
            AppEvent::CopyDone {
                result: Err(SendError::Refused),
                ..
            }
        )
    });
    assert!(refused);
}

#[test]
fn bulk_copy_without_binding_fails_fast() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    rig.drive(0, |k, t| {
        k.copy_pages(t, a, LogicalHostId(77), vmem::SpaceId(0), vec![0])
            .1
    });
    let failed = rig.log.iter().any(|(_, e)| {
        matches!(
            e,
            AppEvent::CopyDone {
                result: Err(SendError::NoBinding),
                ..
            }
        )
    });
    assert!(failed);
}

#[test]
fn local_copy_charges_memcpy_cost() {
    let mut rig: Rig<Body> = Rig::new(1);
    let a = spawn(&mut rig, 0, 1);
    let layout = SpaceLayout {
        code_bytes: 0,
        init_data_bytes: 0,
        heap_bytes: 64 * 1024,
        stack_bytes: 0,
    };
    let (tlh, tspace) = {
        let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(50));
        let s = l.create_space(layout);
        (LogicalHostId(50), s)
    };
    let pages: Vec<u32> = (0..32).collect(); // 64 KB.
    rig.drive(0, |k, t| k.copy_pages(t, a, tlh, tspace, pages).1);
    run_all(&mut rig);
    let done: Vec<_> = rig
        .log
        .iter()
        .filter_map(|(t, e)| match e {
            AppEvent::CopyDone { result, .. } => Some((*t, *result)),
            _ => None,
        })
        .collect();
    assert_eq!(done[0].1, Ok(64 * 1024));
    // 64 KB at 500 us/KB = 32 ms.
    assert_eq!(done[0].0, SimTime::ZERO + SimDuration::from_millis(32));
    assert_eq!(rig.net.stats().frames_sent, 0, "no network traffic");
}

#[test]
fn empty_copy_completes_immediately() {
    let mut rig: Rig<Body> = Rig::new(1);
    let a = spawn(&mut rig, 0, 1);
    rig.drive(0, |k, t| {
        k.copy_pages(t, a, LogicalHostId(50), vmem::SpaceId(0), vec![])
            .1
    });
    assert!(rig
        .log
        .iter()
        .any(|(_, e)| matches!(e, AppEvent::CopyDone { result: Ok(0), .. })));
}

/// Kernel-level migration: move lh1 from kernel 0 to kernel 1 by hand and
/// verify a third party's references rebind without forwarding state.
#[test]
fn manual_migration_rebinds_references() {
    let mut rig: Rig<Body> = Rig::new(3);
    let victim = spawn(&mut rig, 0, 10); // lh10 on kernel 0.
    let client = spawn(&mut rig, 2, 1); // client on kernel 2.
    rig.kernel_mut(2)
        .learn_binding(LogicalHostId(10), HostAddr(0));
    rig.respond(victim, |m| Some(m.body + 7));

    // Client talks to the victim once (works via kernel 0).
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 1, 0));
    run_all(&mut rig);
    assert_eq!(rig.send_results().len(), 1);

    // --- Migrate lh10 to kernel 1. ---
    // Target init: temp logical host with matching space.
    let temp = LogicalHostId(900);
    {
        let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
        // (Bulk page copy elided here; it is exercised above.)
        rig.kernel_mut(0).freeze(LogicalHostId(10));
        let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
        rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
        rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
        rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    }
    run_all(&mut rig);

    // The victim's pid is unchanged and reachable; the NewBinding
    // broadcast updated the client's cache.
    assert_eq!(
        rig.kernel(2).binding_cache().peek(LogicalHostId(10)),
        Some(HostAddr(1))
    );
    rig.respond(victim, |m| Some(m.body + 7));
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 2, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.2));
    // Kernel 0 holds no residue for lh10.
    assert!(!rig.kernel(0).is_resident(LogicalHostId(10)));
}

/// Without the NewBinding broadcast, a client with a stale cache recovers
/// by invalidate-and-broadcast (§3.1.4) — the Demos/MP contrast: no
/// forwarding address needed on the old host.
#[test]
fn stale_binding_recovers_by_broadcast() {
    let cfg = KernelConfig {
        broadcast_new_binding: false,
        ..KernelConfig::default()
    };
    let mut rig: Rig<Body> = Rig::with_loss(3, LossModel::None, cfg);
    let victim = spawn(&mut rig, 0, 10);
    let client = spawn(&mut rig, 2, 1);
    rig.kernel_mut(2)
        .learn_binding(LogicalHostId(10), HostAddr(0));
    rig.respond(victim, |m| Some(m.body));

    // Migrate silently.
    let temp = LogicalHostId(900);
    rig.kernel_mut(0).freeze(LogicalHostId(10));
    let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
    {
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
    }
    rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
    rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
    rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    run_all(&mut rig);

    // Client sends with a stale cache: first transmissions go to kernel 0
    // and are dropped; after `retransmits_before_rebind` the entry is
    // invalidated and the request is broadcast; kernel 1 answers.
    rig.drive(2, |k, t| k.send(t, client, victim.into(), 5, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert!(results[0].2, "stale binding must recover");
    assert!(rig.kernel(0).stats().not_here >= 1);
    assert_eq!(rig.kernel(2).stats().broadcast_requests, 1);
    assert_eq!(
        rig.kernel(2).binding_cache().peek(LogicalHostId(10)),
        Some(HostAddr(1))
    );
    assert_eq!(rig.kernel(2).binding_cache().stats().invalidations, 1);
}

/// An outstanding Send survives migration: the blocked process's
/// transaction is reinstalled on the new kernel and completes there.
#[test]
fn outstanding_send_migrates_with_logical_host() {
    let mut rig: Rig<Body> = Rig::new(3);
    let sender = spawn(&mut rig, 0, 10);
    let server = spawn(&mut rig, 2, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(2));

    // The server receives the request but is slow: no reply before the
    // sender migrates.
    rig.drive(0, |k, t| k.send(t, sender, server.into(), 9, 0));
    rig.run_for(SimDuration::from_millis(100));
    let (req_from, req_seq, req_body) = {
        let delivered: Vec<_> = rig
            .log
            .iter()
            .filter_map(|(_, e)| match e {
                AppEvent::Delivered(m) => Some((m.from, m.seq, m.body)),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), 1, "request reached the server");
        delivered[0]
    };

    // Migrate lh10 (with its outstanding send) to kernel 1.
    let temp = LogicalHostId(900);
    rig.kernel_mut(0).freeze(LogicalHostId(10));
    let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
    assert_eq!(record.outstanding.len(), 1, "send captured in record");
    {
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
    }
    rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
    rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
    rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    rig.run_for(SimDuration::from_millis(50));

    // The server finally replies to the transaction it received.
    rig.drive(2, |k, t| {
        k.reply(t, server, req_from, req_seq, req_body * 10, 0)
    });
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, sender);
    assert!(results[0].2, "send completes on the new host");
}

#[test]
fn delete_restarts_local_senders_remotely() {
    let mut rig: Rig<Body> = Rig::new(2);
    // lh10 (victim) and lh1 (local client) on kernel 0.
    let victim = spawn(&mut rig, 0, 10);
    let local_client = spawn(&mut rig, 0, 1);
    rig.respond(victim, |m| Some(m.body + 1));

    // Freeze the victim, then have the local client send to it: deferred.
    rig.kernel_mut(0).freeze(LogicalHostId(10));
    rig.drive(0, |k, t| k.send(t, local_client, victim.into(), 3, 0));
    assert_eq!(
        rig.kernel(0)
            .logical_host(LogicalHostId(10))
            .expect("resident")
            .deferred_count(),
        1
    );

    // Migrate the victim to kernel 1 and delete the old copy: the local
    // client's Send must restart and now route remotely.
    let temp = LogicalHostId(900);
    let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
    {
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
    }
    rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
    rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    rig.run_for(SimDuration::from_millis(10)); // NewBinding reaches kernel 0.
    rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
    run_all(&mut rig);

    let results = rig.send_results();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, local_client);
    assert!(results[0].2, "restarted send completes remotely");
    assert!(rig.kernel(0).stats().remote_sends >= 1);
}

#[test]
fn migration_preserves_seq_uniqueness() {
    // A process sends from host A (seq 0), migrates, then sends from host
    // B: the new transaction must not collide with the old one.
    let mut rig: Rig<Body> = Rig::new(3);
    let p = spawn(&mut rig, 0, 10);
    let server = spawn(&mut rig, 2, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(2));
    rig.respond(server, |m| Some(m.body));
    rig.drive(0, |k, t| k.send(t, p, server.into(), 1, 0));
    run_all(&mut rig);

    let temp = LogicalHostId(900);
    rig.kernel_mut(0).freeze(LogicalHostId(10));
    let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
    {
        let l = rig.kernel_mut(1).create_logical_host(temp);
        for &(sid, layout) in &record.desc.spaces {
            l.create_space_with_id(sid, layout);
        }
    }
    rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
    rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
    rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
    run_all(&mut rig);

    rig.drive(1, |k, t| k.send(t, p, server.into(), 2, 0));
    run_all(&mut rig);
    let results = rig.send_results();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.2));
    assert_ne!(results[0].1, results[1].1, "sequence numbers must differ");
}

#[test]
fn retained_replies_expire() {
    // §3.1.3: the replier retains a reply for retransmissions — but only
    // for a bounded retention period; afterwards the cache entry is gone
    // and a duplicate request is re-delivered to the application.
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    rig.respond(b, |m| Some(m.body));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    run_all(&mut rig);
    assert_eq!(rig.kernel(1).stats().deliveries, 1);

    // Replay the original request long after the retention period: the
    // reply cache no longer answers, so the application sees it afresh.
    let retention = rig.kernel(1).config().reply_retention;
    rig.run_for(retention + SimDuration::from_secs(2));
    let forged = vkernel::Packet::Request {
        seq: vkernel::SendSeq(0),
        from: a,
        to: b.into(),
        body: 1,
        data_bytes: 0,
        retransmission: true,
        span: vsim::SpanContext::NONE,
    };
    let frame = vnet::Frame::unicast(HostAddr(0), HostAddr(1), 64, forged);
    rig.drive(1, |k, t| k.handle_frame(t, frame));
    run_all(&mut rig);
    assert_eq!(
        rig.kernel(1).stats().deliveries,
        2,
        "expired cache means re-delivery"
    );
}

#[test]
fn group_leave_stops_delivery() {
    let mut rig: Rig<Body> = Rig::new(2);
    let gid = GroupId::PROGRAM_MANAGERS;
    let mcast = McastGroup(1);
    rig.kernel_mut(0).set_group_route(gid, mcast);
    rig.kernel_mut(1).set_group_route(gid, mcast);
    let client = spawn(&mut rig, 0, 1);
    let member = spawn(&mut rig, 1, 2);
    rig.drive(1, |k, _| k.join_group(gid, member));
    rig.respond(member, |_| Some(1));

    rig.drive(0, |k, t| k.send(t, client, gid.into(), 0, 0));
    run_all(&mut rig);
    assert_eq!(rig.kernel(1).stats().deliveries, 1);

    // Leave; the next group query gets no members and times out.
    rig.drive(1, |k, _| k.leave_group(gid, member));
    rig.drive(0, |k, t| k.send(t, client, gid.into(), 0, 0));
    run_all(&mut rig);
    assert_eq!(rig.kernel(1).stats().deliveries, 1, "no further delivery");
    let results = rig.send_results();
    assert_eq!(results.len(), 2);
    assert!(!results[1].2, "unanswered group query fails");
}

#[test]
fn destroyed_logical_host_drops_inflight_replies() {
    // A reply arriving for a deleted logical host must be counted late
    // and dropped, never panic.
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    // Delay the reply: no responder yet.
    rig.drive(0, |k, t| k.send(t, a, b.into(), 5, 0));
    rig.run_for(SimDuration::from_millis(10));
    let delivered = rig.deliveries();
    assert_eq!(delivered.len(), 1);

    // The sender's logical host is destroyed while the request is open.
    rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(1)));
    // Now the server answers; the reply finds no outstanding transaction.
    let (from, seq) = (delivered[0].1, vkernel::SendSeq(0));
    rig.drive(1, |k, t| k.reply(t, b, from, seq, 99, 0));
    run_all(&mut rig);
    assert!(
        rig.send_results().is_empty(),
        "no completion for the dead lh"
    );
    assert!(rig.kernel(0).stats().late_replies >= 1);
}

#[test]
fn copy_from_pulls_pages_at_the_same_rate() {
    // CopyFrom (§2.1's other bulk primitive): kernel 0 pulls 256 KB from a
    // space on kernel 1; the data flows at the calibrated 3 s/MB.
    let mut rig: Rig<Body> = Rig::new(2);
    let puller = spawn(&mut rig, 0, 1);
    // A local space to receive into.
    let dst_space = {
        let l = rig
            .kernel_mut(0)
            .logical_host_mut(LogicalHostId(1))
            .expect("lh");
        l.create_space(vmem::SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 256 * 1024,
            stack_bytes: 0,
        })
    };
    // The remote source.
    let (src_lh, src_space) = {
        let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
        let s = l.create_space(vmem::SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 256 * 1024,
            stack_bytes: 0,
        });
        (LogicalHostId(50), s)
    };
    rig.kernel_mut(0).learn_binding(src_lh, HostAddr(1));
    let pages: Vec<u32> = (0..128).collect();
    rig.drive(0, |k, t| {
        k.pull_pages(
            t,
            puller,
            src_lh,
            src_space,
            LogicalHostId(1),
            dst_space,
            pages,
        )
        .1
    });
    run_all(&mut rig);
    // Two CopyDone events exist: the serving kernel's outbound transfer
    // and the puller's completion; assert on the puller's.
    let done: Vec<_> = rig
        .log
        .iter()
        .filter_map(|(t, e)| match e {
            AppEvent::CopyDone {
                initiator, result, ..
            } if *initiator == puller => Some((*t, *result)),
            _ => None,
        })
        .collect();
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, Ok(256 * 1024));
    // 256 KB at ~3 s/MB = ~0.75 s.
    let secs = done[0].0.as_secs_f64();
    assert!((secs - 0.75).abs() < 0.1, "pull took {secs:.3}s");
    assert_eq!(rig.kernel(1).stats().pulls_served, 1);
}

#[test]
fn copy_from_unknown_space_is_refused() {
    let mut rig: Rig<Body> = Rig::new(2);
    let puller = spawn(&mut rig, 0, 1);
    rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(50), HostAddr(1));
    rig.drive(0, |k, t| {
        k.pull_pages(
            t,
            puller,
            LogicalHostId(50),
            vmem::SpaceId(7),
            LogicalHostId(1),
            vmem::SpaceId(0),
            vec![0, 1],
        )
        .1
    });
    run_all(&mut rig);
    assert!(rig.log.iter().any(|(_, e)| matches!(
        e,
        AppEvent::CopyDone {
            result: Err(SendError::Refused),
            ..
        }
    )));
}

#[test]
fn copy_from_survives_lost_pull_request() {
    // Drop the first delivery (the BulkPull itself): the watchdog
    // retransmits it and the pull completes.
    let mut rig: Rig<Body> = Rig::with_loss(2, LossModel::FirstN(1), KernelConfig::default());
    let puller = spawn(&mut rig, 0, 1);
    let dst_space = {
        let l = rig
            .kernel_mut(0)
            .logical_host_mut(LogicalHostId(1))
            .expect("lh");
        l.create_space(vmem::SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 64 * 1024,
            stack_bytes: 0,
        })
    };
    let (src_lh, src_space) = {
        let l = rig.kernel_mut(1).create_logical_host(LogicalHostId(50));
        let s = l.create_space(vmem::SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 64 * 1024,
            stack_bytes: 0,
        });
        (LogicalHostId(50), s)
    };
    rig.kernel_mut(0).learn_binding(src_lh, HostAddr(1));
    let pages: Vec<u32> = (0..32).collect();
    rig.drive(0, |k, t| {
        k.pull_pages(
            t,
            puller,
            src_lh,
            src_space,
            LogicalHostId(1),
            dst_space,
            pages,
        )
        .1
    });
    run_all(&mut rig);
    assert!(rig
        .log
        .iter()
        .any(|(_, e)| matches!(e, AppEvent::CopyDone { result: Ok(b), .. } if *b == 64 * 1024)));
}

#[test]
fn orphaned_transactions_resolve_on_renewed_contact() {
    let mut rig: Rig<Body> = Rig::new(2);
    let a = spawn(&mut rig, 0, 1);
    let b = spawn(&mut rig, 1, 2);
    rig.kernel_mut(0)
        .learn_binding(LogicalHostId(2), HostAddr(1));
    // b accepts the request but never replies: reply-pending packets keep
    // the send alive until the hard cap, where the transaction is charged
    // as orphaned against serving logical host 2.
    rig.drive(0, |k, t| k.send(t, a, b.into(), 1, 0));
    run_all(&mut rig);
    assert_eq!(rig.kernel(0).stats().orphaned_transactions, 1);
    assert_eq!(rig.kernel(0).unresolved_orphans(), 1);
    assert_eq!(rig.kernel(0).stats().orphans_resolved, 0);

    // The server comes back to life: a later request to the same logical
    // host is answered, proving the orphan was transient (a recovered
    // server, not a leak) — the charge resolves instead of warning forever.
    rig.respond(b, |m| Some(m.body + 1));
    rig.drive(0, |k, t| k.send(t, a, b.into(), 2, 0));
    run_all(&mut rig);
    assert!(
        rig.send_results().last().expect("send completed").2,
        "renewed-contact send succeeds"
    );
    assert_eq!(rig.kernel(0).stats().orphans_resolved, 1);
    assert_eq!(rig.kernel(0).unresolved_orphans(), 0);
    // The cumulative charge counter keeps its history.
    assert_eq!(rig.kernel(0).stats().orphaned_transactions, 1);
}
