//! Randomized protocol tests: arbitrary message traffic over lossy wires,
//! with migrations injected at arbitrary points. The reliable-IPC
//! invariants must hold for every seed:
//!
//! 1. every Send eventually completes (reply or clean failure);
//! 2. no transaction is delivered to the application more than once;
//! 3. migration preserves all of the above.
//!
//! Cases are generated from a seeded [`DetRng`], so each run covers the
//! same deterministic set of scenarios.

use vkernel::testkit::{AppEvent, Rig};
use vkernel::{KernelConfig, LogicalHostId, Priority, ProcessId, SendSeq};
use vmem::SpaceLayout;
use vnet::{HostAddr, LossModel};
use vsim::{DetRng, SimDuration, SimTime};

fn spawn(rig: &mut Rig<u32>, i: usize, lh: u32) -> ProcessId {
    let l = rig.kernel_mut(i).create_logical_host(LogicalHostId(lh));
    let team = l.create_space(SpaceLayout::tiny());
    l.create_process(team, Priority::LOCAL, false)
}

#[test]
fn every_send_completes_exactly_once_under_loss() {
    let mut rng = DetRng::seed(0xF00D);
    for _case in 0..24 {
        let seed = rng.range_u64(0, 10_000);
        let loss_pct = rng.range_u64(0, 20) as u32;
        let n_sends = rng.index(29) + 1;
        let cfg = KernelConfig::default();
        let mut rig: Rig<u32> = Rig::with_loss(
            4,
            if loss_pct == 0 {
                LossModel::None
            } else {
                LossModel::Bernoulli(loss_pct as f64 / 100.0)
            },
            cfg,
        );
        // One server per kernel, each echoing the body.
        let servers: Vec<ProcessId> = (0..4).map(|i| spawn(&mut rig, i, 10 + i as u32)).collect();
        let clients: Vec<ProcessId> = (0..4).map(|i| spawn(&mut rig, i, 20 + i as u32)).collect();
        for &s in &servers {
            rig.respond(s, |m| Some(m.body + 1));
        }
        // Seed some (possibly stale-able) bindings.
        for i in 0..4usize {
            for j in 0..4usize {
                rig.kernel_mut(i)
                    .learn_binding(LogicalHostId(10 + j as u32), HostAddr(j as u16));
            }
        }

        let mut issued: Vec<(ProcessId, SendSeq, u32)> = Vec::new();
        for k in 0..n_sends {
            let from_i = (seed as usize + k) % 4;
            let to_i = (seed as usize + k * 7 + 1) % 4;
            let from = clients[from_i];
            let to = servers[to_i];
            let body = k as u32;
            let mut seq = None;
            rig.drive(from_i, |kk, t| {
                let (s, outs) = kk.send_with_seq(t, from, to.into(), body, 0);
                seq = Some(s);
                outs
            });
            issued.push((from, seq.expect("send issued"), body));
            // Interleave some progress so traffic overlaps.
            if k % 3 == 0 {
                rig.run_for(SimDuration::from_millis(5));
            }
        }
        rig.run_until(SimTime::MAX);

        // 1. Every send completed exactly once.
        let results = rig.send_results();
        for &(pid, seq, _) in &issued {
            let n = results
                .iter()
                .filter(|(p, s, _)| *p == pid && *s == seq)
                .count();
            assert_eq!(n, 1, "transaction {pid:?}/{seq:?} completed {n} times");
        }
        // 2. With loss < hard limits, everything should actually succeed
        //    (servers always answer; reply-pending + retransmission carry
        //    the rest) — allow failures only at extreme loss.
        if loss_pct <= 5 {
            assert!(
                results.iter().all(|r| r.2),
                "a send failed at {loss_pct}% loss"
            );
        }
        // 3. Each transaction reached the application at most once.
        let mut seen = std::collections::BTreeMap::new();
        for (_, e) in &rig.log {
            if let AppEvent::Delivered(m) = e {
                *seen.entry((m.from, m.seq)).or_insert(0) += 1;
            }
        }
        for (k, v) in seen {
            assert_eq!(v, 1, "transaction {k:?} delivered {v} times");
        }
    }
}

#[test]
fn migration_amid_random_traffic_preserves_invariants() {
    let mut rng = DetRng::seed(0xBEEF);
    for _case in 0..24 {
        let seed = rng.range_u64(0, 10_000);
        let migrate_after_ms = rng.range_u64(1, 50);
        let n_sends = rng.index(14) + 2;
        let mut rig: Rig<u32> = Rig::new(3);
        let victim = spawn(&mut rig, 0, 10); // Will migrate 0 -> 1.
        let clients: Vec<ProcessId> = (0..3).map(|i| spawn(&mut rig, i, 20 + i as u32)).collect();
        rig.respond(victim, |m| Some(m.body * 2));
        for i in 0..3usize {
            rig.kernel_mut(i)
                .learn_binding(LogicalHostId(10), HostAddr(0));
        }

        // Fire sends toward the victim from all hosts, staggered.
        let mut issued = Vec::new();
        for k in 0..n_sends {
            let i = (seed as usize + k) % 3;
            let from = clients[i];
            let mut seq = None;
            rig.drive(i, |kk, t| {
                let (s, outs) = kk.send_with_seq(t, from, victim.into(), k as u32, 0);
                seq = Some(s);
                outs
            });
            issued.push((from, seq.expect("issued")));
            rig.run_for(SimDuration::from_millis(2));
        }

        // Migrate at an arbitrary point.
        rig.run_for(SimDuration::from_millis(migrate_after_ms));
        let temp = LogicalHostId(900);
        rig.kernel_mut(0).freeze(LogicalHostId(10));
        let record = rig.kernel(0).extract_migration_record(LogicalHostId(10));
        {
            let l = rig.kernel_mut(1).create_logical_host(temp);
            for &(sid, layout) in &record.desc.spaces {
                l.create_space_with_id(sid, layout);
            }
        }
        rig.drive(1, |k, t| k.install_migration_record(t, temp, &record));
        rig.drive(0, |k, t| k.delete_logical_host(t, LogicalHostId(10)));
        rig.drive(1, |k, t| k.unfreeze_migrated(t, LogicalHostId(10)));
        // Keep the responder alive on the new host (the rig routes by
        // pid, which did not change).
        rig.respond(victim, |m| Some(m.body * 2));
        rig.run_until(SimTime::MAX);

        let results = rig.send_results();
        for &(pid, seq) in &issued {
            let n = results
                .iter()
                .filter(|(p, s, _)| *p == pid && *s == seq)
                .count();
            assert_eq!(n, 1, "transaction {pid:?}/{seq:?} completed {n} times");
        }
        // Post-migration the old host holds nothing for lh10.
        assert!(!rig.kernel(0).is_resident(LogicalHostId(10)));
        assert_eq!(rig.kernel(0).forwarding_entries(), 0);
        // And a fresh send still works.
        let from = clients[2];
        rig.drive(2, |kk, t| kk.send(t, from, victim.into(), 99, 0));
        rig.run_until(SimTime::MAX);
        let last = rig.send_results();
        assert!(last.last().expect("one more result").2);
    }
}
