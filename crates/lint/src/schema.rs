//! Schema-drift audit over the telemetry naming surface.
//!
//! Every metric and time-series name in this workspace is a string
//! literal at its registration site — `metrics.counter(Subsystem::Net,
//! "frames_sent")`, `series.manual(Subsystem::Cluster,
//! "ready_programs", "programs")` — and again in the documentation
//! table in EXPERIMENTS.md, in sweep specs, and in artifact consumers.
//! Nothing ties those copies together, so renames rot silently. This
//! pass extracts the emitted inventory from the token stream and
//! cross-checks every other copy against it.
//!
//! Rules:
//!
//! * `schema-undocumented` — a name is emitted but absent from the
//!   `<!-- vlint:schema -->` table in the configured docs;
//! * `schema-stale-doc` — a documented row is no longer emitted (or a
//!   unit drifted, or the doc block itself is missing);
//! * `schema-snake-case` — an emitted name is not `snake_case`;
//! * `schema-kind-conflict` — one `(subsystem, name)` is registered as
//!   two different metric kinds (series are a separate namespace: a
//!   gauge may also be enrolled as a series under the same name);
//! * `schema-series-ref` — a `"subsystem/name"` literal in non-test
//!   code names a series that is never enrolled;
//! * `schema-plan-unknown` — a sweep spec references a fault-plan name
//!   that `FaultPlan::names()` does not export;
//! * `schema-fault-matrix` — the configured fault-matrix test no longer
//!   iterates `fault_points()`.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::ast::ParsedFile;
use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::{Report, Violation};

/// Metric namespace a name was registered in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Value distribution.
    Histogram,
    /// Enrolled or manual time series.
    Series,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Series => "series",
        }
    }

    fn from_label(s: &str) -> Option<Kind> {
        match s {
            "counter" => Some(Kind::Counter),
            "gauge" => Some(Kind::Gauge),
            "histogram" => Some(Kind::Histogram),
            "series" => Some(Kind::Series),
            _ => None,
        }
    }
}

/// One registration site found in the source.
#[derive(Debug, Clone)]
pub struct Emission {
    /// Lower-case subsystem label (`Subsystem::Net` → `net`).
    pub subsystem: String,
    /// Metric namespace.
    pub kind: Kind,
    /// The registered name literal.
    pub name: String,
    /// Unit literal when the call carries one (histogram / series).
    pub unit: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the name literal.
    pub line: usize,
}

/// One row of the documented schema table.
#[derive(Debug, Clone)]
pub struct DocRow {
    /// `(subsystem, kind, name)` key.
    pub key: (String, Kind, String),
    /// Documented unit column (may be `-`).
    pub unit: String,
    /// Line of the row in the doc file.
    pub line: usize,
}

/// Runs the schema audit. `lib_files` selects which scanned files count
/// as emitting library code; doc / sweep / test cross-checks read from
/// `root`.
pub fn check(
    files: &BTreeMap<String, ParsedFile>,
    lib_files: &BTreeSet<String>,
    root: &Path,
    cfg: &Config,
    report: &mut Report,
) {
    let inert = cfg.schema.docs.is_empty()
        && cfg.schema.sweeps.is_none()
        && cfg.schema.plan_names.is_none()
        && cfg.schema.fault_matrix.is_none();
    if inert {
        return;
    }

    let emissions = collect_emissions(files, lib_files);
    check_names(&emissions, report);

    for doc in &cfg.schema.docs {
        match std::fs::read_to_string(root.join(doc)) {
            Ok(text) => match parse_doc_table(&text, doc) {
                Ok(rows) => check_docs(&emissions, &rows, doc, report),
                Err(v) => report.violations.push(v),
            },
            Err(e) => report.violations.push(Violation {
                rule: "schema-stale-doc",
                file: doc.clone(),
                line: 0,
                message: format!("cannot read schema doc: {e}"),
                hint: "fix the [schema] docs path in lint.toml",
            }),
        }
    }

    check_series_refs(files, &emissions, report);

    if let Some((pfile, pfn)) = &cfg.schema.plan_names {
        let plans = plan_name_set(files, pfile, pfn, report);
        if let (Some(plans), Some(dir)) = (plans, cfg.schema.sweeps.as_deref()) {
            check_sweeps(root, dir, &plans, report);
        }
    }

    if let Some(fm) = &cfg.schema.fault_matrix {
        check_fault_matrix(root, fm, report);
    }
}

/// Method names that register a metric or series.
const EMIT_FNS: &[(&str, Kind)] = &[
    ("counter", Kind::Counter),
    ("gauge", Kind::Gauge),
    ("histogram", Kind::Histogram),
    ("enroll", Kind::Series),
    ("manual", Kind::Series),
];

/// Snapshot struct literals that carry `(subsystem, name)` directly.
const SNAPSHOT_TYPES: &[(&str, Kind)] = &[
    ("CounterSnapshot", Kind::Counter),
    ("GaugeSnapshot", Kind::Gauge),
    ("HistogramSnapshot", Kind::Histogram),
];

/// Extracts every literal registration site from non-test library code.
pub fn collect_emissions(
    files: &BTreeMap<String, ParsedFile>,
    lib_files: &BTreeSet<String>,
) -> Vec<Emission> {
    let mut out = Vec::new();
    for (rel, pf) in files {
        if !lib_files.contains(rel) {
            continue;
        }
        let toks = &pf.toks;
        for i in 0..toks.len() {
            if pf.in_test(i) || toks[i].kind != TokKind::Ident {
                continue;
            }
            // `.counter(Subsystem::X, "name"[, "unit"])` and friends.
            if let Some(&(_, kind)) = EMIT_FNS.iter().find(|(n, _)| toks[i].is_ident(n)) {
                if i > 0
                    && toks[i - 1].is_punct(".")
                    && i + 7 < toks.len()
                    && toks[i + 1].is_punct("(")
                    && toks[i + 2].is_ident("Subsystem")
                    && toks[i + 3].is_punct("::")
                    && toks[i + 4].kind == TokKind::Ident
                    && toks[i + 5].is_punct(",")
                    && toks[i + 6].kind == TokKind::Str
                {
                    let unit = (i + 8 < toks.len()
                        && toks[i + 7].is_punct(",")
                        && toks[i + 8].kind == TokKind::Str)
                        .then(|| toks[i + 8].text.clone());
                    out.push(Emission {
                        subsystem: toks[i + 4].text.to_lowercase(),
                        kind,
                        name: toks[i + 6].text.clone(),
                        unit,
                        file: rel.clone(),
                        line: toks[i + 6].line,
                    });
                }
                continue;
            }
            // `GaugeSnapshot { subsystem: Subsystem::X, name: "…", … }`.
            if let Some(&(_, kind)) = SNAPSHOT_TYPES.iter().find(|(n, _)| toks[i].is_ident(n)) {
                // Skip struct definitions (`struct GaugeSnapshot {`),
                // path tails, and return types (`-> GaugeSnapshot {`
                // opens the fn body, not a literal).
                let def_site = i > 0
                    && (toks[i - 1].is_ident("struct")
                        || toks[i - 1].is_punct("::")
                        || toks[i - 1].is_punct("->")
                        || toks[i - 1].is_punct(":"));
                if i + 1 < toks.len() && toks[i + 1].is_punct("{") && !def_site {
                    let end = crate::ast::block_end(toks, i + 1);
                    if let Some(em) = snapshot_emission(pf, rel, i + 2, end, kind) {
                        out.push(em);
                    }
                }
            }
        }
    }
    out
}

/// Reads `subsystem: Subsystem::X` and `name: "…"` fields out of a
/// snapshot struct literal; both must be literal for the site to count.
fn snapshot_emission(
    pf: &ParsedFile,
    rel: &str,
    lo: usize,
    hi: usize,
    kind: Kind,
) -> Option<Emission> {
    let toks = &pf.toks;
    let mut subsystem = None;
    let mut name = None;
    for j in lo..hi {
        if toks[j].is_ident("subsystem")
            && j + 4 < hi
            && toks[j + 1].is_punct(":")
            && toks[j + 2].is_ident("Subsystem")
            && toks[j + 3].is_punct("::")
            && toks[j + 4].kind == TokKind::Ident
        {
            subsystem = Some(toks[j + 4].text.to_lowercase());
        }
        if toks[j].is_ident("name")
            && j + 2 < hi
            && toks[j + 1].is_punct(":")
            && toks[j + 2].kind == TokKind::Str
        {
            name = Some((toks[j + 2].text.clone(), toks[j + 2].line));
        }
    }
    let (name, line) = name?;
    Some(Emission {
        subsystem: subsystem?,
        kind,
        name,
        unit: None,
        file: rel.to_string(),
        line,
    })
}

/// Snake-case and kind-uniqueness checks over the emitted inventory.
fn check_names(emissions: &[Emission], report: &mut Report) {
    for em in emissions {
        let ok = em.name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && em
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !ok {
            report.violations.push(Violation {
                rule: "schema-snake-case",
                file: em.file.clone(),
                line: em.line,
                message: format!(
                    "{} `{}/{}` is not snake_case",
                    em.kind.label(),
                    em.subsystem,
                    em.name
                ),
                hint: "telemetry names are stable artifact keys; use lower_snake_case",
            });
        }
    }
    // Counter / gauge / histogram share one namespace per subsystem;
    // series are registered separately and may shadow a gauge name.
    let mut kinds: BTreeMap<(String, String), BTreeSet<Kind>> = BTreeMap::new();
    for em in emissions.iter().filter(|e| e.kind != Kind::Series) {
        kinds
            .entry((em.subsystem.clone(), em.name.clone()))
            .or_default()
            .insert(em.kind);
    }
    for em in emissions.iter().filter(|e| e.kind != Kind::Series) {
        let set = &kinds[&(em.subsystem.clone(), em.name.clone())];
        if set.len() > 1 && set.iter().next() != Some(&em.kind) {
            report.violations.push(Violation {
                rule: "schema-kind-conflict",
                file: em.file.clone(),
                line: em.line,
                message: format!(
                    "`{}/{}` is registered as {}",
                    em.subsystem,
                    em.name,
                    set.iter()
                        .map(|k| k.label())
                        .collect::<Vec<_>>()
                        .join(" and ")
                ),
                hint: "one (subsystem, name) pair must map to exactly one metric kind",
            });
        }
    }
}

/// Parses the `<!-- vlint:schema -->` … `<!-- vlint:end -->` table.
///
/// # Errors
///
/// Returns a single `schema-stale-doc` violation when the markers or the
/// table are missing or malformed.
pub fn parse_doc_table(text: &str, origin: &str) -> Result<Vec<DocRow>, Violation> {
    let stale = |line: usize, message: String| Violation {
        rule: "schema-stale-doc",
        file: origin.to_string(),
        line,
        message,
        hint: "regenerate the block: a markdown table of | subsystem | kind | name | unit | \
               between <!-- vlint:schema --> and <!-- vlint:end -->",
    };
    let mut rows = Vec::new();
    let mut inside = false;
    let mut seen_block = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let t = raw.trim();
        if t.starts_with("<!-- vlint:schema") {
            inside = true;
            seen_block = true;
            continue;
        }
        if t.starts_with("<!-- vlint:end") {
            inside = false;
            continue;
        }
        if !inside || !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() != 4 {
            return Err(stale(line, format!("expected 4 columns, got {}", cells.len())));
        }
        if cells[0] == "subsystem" || cells[0].chars().all(|c| c == '-' || c == ':') {
            continue;
        }
        let Some(kind) = Kind::from_label(cells[1]) else {
            return Err(stale(line, format!("unknown kind `{}`", cells[1])));
        };
        rows.push(DocRow {
            key: (cells[0].to_string(), kind, cells[2].to_string()),
            unit: cells[3].to_string(),
            line,
        });
    }
    if !seen_block {
        return Err(stale(0, "no <!-- vlint:schema --> block found".to_string()));
    }
    Ok(rows)
}

/// Two-way diff between emitted inventory and documented rows.
fn check_docs(emissions: &[Emission], rows: &[DocRow], origin: &str, report: &mut Report) {
    let documented: BTreeMap<&(String, Kind, String), &DocRow> =
        rows.iter().map(|r| (&r.key, r)).collect();
    let mut reported: BTreeSet<(String, Kind, String)> = BTreeSet::new();
    for em in emissions {
        let key = (em.subsystem.clone(), em.kind, em.name.clone());
        match documented.get(&key) {
            None => {
                if reported.insert(key) {
                    report.violations.push(Violation {
                        rule: "schema-undocumented",
                        file: em.file.clone(),
                        line: em.line,
                        message: format!(
                            "{} `{}/{}` is not documented in {origin}",
                            em.kind.label(),
                            em.subsystem,
                            em.name
                        ),
                        hint: "add a row to the vlint:schema table (or remove the emission)",
                    });
                }
            }
            Some(row) => {
                if let Some(unit) = &em.unit {
                    if *unit != row.unit {
                        report.violations.push(Violation {
                            rule: "schema-stale-doc",
                            file: origin.to_string(),
                            line: row.line,
                            message: format!(
                                "`{}/{}` unit documented as `{}` but emitted as `{unit}` at {}:{}",
                                em.subsystem, em.name, row.unit, em.file, em.line
                            ),
                            hint: "update the unit column to match the registration site",
                        });
                    }
                }
            }
        }
    }
    let emitted: BTreeSet<(String, Kind, String)> = emissions
        .iter()
        .map(|e| (e.subsystem.clone(), e.kind, e.name.clone()))
        .collect();
    for row in rows {
        if !emitted.contains(&row.key) {
            report.violations.push(Violation {
                rule: "schema-stale-doc",
                file: origin.to_string(),
                line: row.line,
                message: format!(
                    "documented {} `{}/{}` is never emitted",
                    row.key.1.label(),
                    row.key.0,
                    row.key.2
                ),
                hint: "delete the row, or restore the registration it described",
            });
        }
    }
}

/// `"subsystem/name"` literals in non-test code must name an enrolled
/// series. Only strings whose prefix is a known subsystem label are
/// considered, so path-like strings never match.
fn check_series_refs(
    files: &BTreeMap<String, ParsedFile>,
    emissions: &[Emission],
    report: &mut Report,
) {
    let labels: BTreeSet<&str> = emissions.iter().map(|e| e.subsystem.as_str()).collect();
    if labels.is_empty() {
        return;
    }
    let series: BTreeSet<(String, String)> = emissions
        .iter()
        .filter(|e| e.kind == Kind::Series)
        .map(|e| (e.subsystem.clone(), e.name.clone()))
        .collect();
    for (rel, pf) in files {
        for (i, tok) in pf.toks.iter().enumerate() {
            if tok.kind != TokKind::Str || pf.in_test(i) {
                continue;
            }
            let Some((sub, name)) = tok.text.split_once('/') else {
                continue;
            };
            if !labels.contains(sub) || name.is_empty() || name.contains('/') {
                continue;
            }
            let snake = name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if !snake {
                continue;
            }
            if !series.contains(&(sub.to_string(), name.to_string())) {
                report.violations.push(Violation {
                    rule: "schema-series-ref",
                    file: rel.clone(),
                    line: tok.line,
                    message: format!("`{}` does not name an enrolled series", tok.text),
                    hint: "series references must match a live enroll()/manual() registration",
                });
            }
        }
    }
}

/// The string literals inside the configured `names()` fn body.
fn plan_name_set(
    files: &BTreeMap<String, ParsedFile>,
    pfile: &str,
    pfn: &str,
    report: &mut Report,
) -> Option<BTreeSet<String>> {
    let gone = |message: String| Violation {
        rule: "schema-plan-unknown",
        file: pfile.to_string(),
        line: 0,
        message,
        hint: "fix the [schema] plan_names site in lint.toml",
    };
    let Some(pf) = files.get(pfile) else {
        report.violations.push(gone(format!("plan_names file `{pfile}` was not scanned")));
        return None;
    };
    let Some(f) = pf.fns.iter().find(|f| f.name == pfn && !f.in_test) else {
        report
            .violations
            .push(gone(format!("plan_names fn `{pfn}` not found in `{pfile}`")));
        return None;
    };
    Some(
        (f.body.0..f.body.1)
            .filter(|&i| pf.toks[i].kind == TokKind::Str)
            .map(|i| pf.toks[i].text.clone())
            .collect(),
    )
}

/// Every `plan = …` value in `sweeps/*.toml` must be a known plan name.
fn check_sweeps(root: &Path, dir: &str, plans: &BTreeSet<String>, report: &mut Report) {
    let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
        report.violations.push(Violation {
            rule: "schema-plan-unknown",
            file: dir.to_string(),
            line: 0,
            message: format!("sweeps directory `{dir}` is missing"),
            hint: "fix the [schema] sweeps path in lint.toml",
        });
        return;
    };
    let mut paths: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    for path in paths {
        let rel = format!(
            "{dir}/{}",
            path.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
        );
        let doc = match crate::toml::TomlDoc::load(&path) {
            Ok(d) => d,
            Err(e) => {
                report.violations.push(Violation {
                    rule: "schema-plan-unknown",
                    file: rel,
                    line: 0,
                    message: format!("cannot parse sweep spec: {e}"),
                    hint: "sweep specs are part of the audited schema surface",
                });
                continue;
            }
        };
        for table in &doc.tables {
            for (key, value, line) in &table.entries {
                if key != "plan" {
                    continue;
                }
                let mut named = Vec::new();
                match value {
                    crate::toml::TomlValue::Str(s) => named.push(s.clone()),
                    crate::toml::TomlValue::List(items) => {
                        named.extend(items.iter().filter_map(|v| v.as_str().map(str::to_string)));
                    }
                    _ => {}
                }
                for plan in named {
                    if !plans.contains(&plan) {
                        report.violations.push(Violation {
                            rule: "schema-plan-unknown",
                            file: rel.clone(),
                            line: *line,
                            message: format!("fault plan `{plan}` is not in FaultPlan::names()"),
                            hint: "sweep plan axes must use exported plan names",
                        });
                    }
                }
            }
        }
    }
}

/// The fault-matrix test must still iterate the `fault_points()` registry.
fn check_fault_matrix(root: &Path, rel: &str, report: &mut Report) {
    let missing = |message: String| Violation {
        rule: "schema-fault-matrix",
        file: rel.to_string(),
        line: 0,
        message,
        hint: "the matrix test is the proof that every registered fault point fires; keep it \
               iterating fault_points()",
    };
    match std::fs::read_to_string(root.join(rel)) {
        Ok(text) => {
            let lexed = crate::lexer::lex(&text);
            if !lexed.toks.iter().any(|t| t.is_ident("fault_points")) {
                report
                    .violations
                    .push(missing("file no longer references fault_points()".to_string()));
            }
        }
        Err(e) => report.violations.push(missing(format!("cannot read file: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn emissions_of(src: &str) -> Vec<Emission> {
        let mut files = BTreeMap::new();
        files.insert("a.rs".to_string(), ast::parse(src));
        let libs: BTreeSet<String> = ["a.rs".to_string()].into();
        collect_emissions(&files, &libs)
    }

    #[test]
    fn collects_call_pattern_emissions() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics) {\n    let c = m.counter(Subsystem::Net, \"frames_sent\");\n    let h = m.histogram(Subsystem::Migration, \"freeze_ms\", \"ms\");\n    let s = m.manual(Subsystem::Cluster, \"ready\", \"programs\");\n}\n",
        );
        assert_eq!(ems.len(), 3);
        assert_eq!(ems[0].subsystem, "net");
        assert_eq!(ems[0].kind, Kind::Counter);
        assert_eq!(ems[0].name, "frames_sent");
        assert_eq!(ems[0].unit, None);
        assert_eq!(ems[0].line, 2);
        assert_eq!(ems[1].unit.as_deref(), Some("ms"));
        assert_eq!(ems[2].kind, Kind::Series);
        assert_eq!(ems[2].unit.as_deref(), Some("programs"));
    }

    #[test]
    fn collects_multiline_enroll() {
        let ems = emissions_of(
            "fn f(s: &mut Store, g: GaugeHandle) {\n    s.enroll(\n        Subsystem::Engine,\n        \"queue_depth\",\n        \"events\",\n        Probe::Gauge(g),\n    );\n}\n",
        );
        assert_eq!(ems.len(), 1);
        assert_eq!(ems[0].kind, Kind::Series);
        assert_eq!(ems[0].name, "queue_depth");
        assert_eq!(ems[0].line, 4);
    }

    #[test]
    fn collects_snapshot_literals_but_not_struct_defs() {
        let ems = emissions_of(
            "pub struct GaugeSnapshot { pub subsystem: Subsystem, pub name: String }\nfn f(v: f64) -> GaugeSnapshot {\n    GaugeSnapshot { subsystem: Subsystem::Cluster, name: \"cpu_utilization\", value: v }\n}\n",
        );
        assert_eq!(ems.len(), 1);
        assert_eq!(ems[0].kind, Kind::Gauge);
        assert_eq!(ems[0].subsystem, "cluster");
        assert_eq!(ems[0].name, "cpu_utilization");
        assert_eq!(ems[0].line, 3);
    }

    #[test]
    fn dynamic_and_test_emissions_are_skipped() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics, sub: Subsystem, n: &str) { m.counter(sub, n); }\n#[cfg(test)]\nmod t {\n    fn g(m: &mut super::Metrics) { m.counter(Subsystem::Net, \"only_in_tests\"); }\n}\n",
        );
        assert!(ems.is_empty(), "{ems:?}");
    }

    #[test]
    fn snake_case_and_kind_conflicts_are_flagged() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics) {\n    m.counter(Subsystem::Net, \"framesSent\");\n    m.counter(Subsystem::Net, \"x\");\n    m.gauge(Subsystem::Net, \"x\");\n}\n",
        );
        let mut report = Report::default();
        check_names(&ems, &mut report);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"schema-snake-case"), "{rules:?}");
        assert!(rules.contains(&"schema-kind-conflict"), "{rules:?}");
    }

    #[test]
    fn gauge_plus_series_is_not_a_conflict() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics, s: &mut Store, g: GaugeHandle) {\n    m.gauge(Subsystem::Engine, \"queue_depth\");\n    s.enroll(Subsystem::Engine, \"queue_depth\", \"events\", Probe::Gauge(g));\n}\n",
        );
        let mut report = Report::default();
        check_names(&ems, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    const DOC: &str = "# Names\n\n<!-- vlint:schema -->\n| subsystem | kind | name | unit |\n| --- | --- | --- | --- |\n| net | counter | frames_sent | frames |\n| migration | histogram | freeze_ms | ms |\n<!-- vlint:end -->\n";

    #[test]
    fn doc_table_round_trips() {
        let rows = parse_doc_table(DOC, "EXPERIMENTS.md").expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].key,
            ("net".to_string(), Kind::Counter, "frames_sent".to_string())
        );
        assert_eq!(rows[0].unit, "frames");
        assert_eq!(rows[0].line, 6);
        assert!(parse_doc_table("no markers here\n", "X.md").is_err());
        assert!(parse_doc_table(
            "<!-- vlint:schema -->\n| a | b | c |\n<!-- vlint:end -->\n",
            "X.md"
        )
        .is_err());
    }

    #[test]
    fn doc_diff_finds_both_directions_and_unit_drift() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics) {\n    m.counter(Subsystem::Net, \"frames_sent\");\n    m.histogram(Subsystem::Migration, \"freeze_ms\", \"us\");\n    m.counter(Subsystem::Net, \"frames_dropped\");\n}\n",
        );
        let rows = parse_doc_table(DOC, "EXPERIMENTS.md").expect("parses");
        let mut report = Report::default();
        check_docs(&ems, &rows, "EXPERIMENTS.md", &mut report);
        let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
        // frames_dropped undocumented; freeze_ms unit drift (doc says ms).
        assert_eq!(
            rules
                .iter()
                .filter(|r| **r == "schema-undocumented")
                .count(),
            1
        );
        assert_eq!(rules.iter().filter(|r| **r == "schema-stale-doc").count(), 1);
        let stale = report
            .violations
            .iter()
            .find(|v| v.rule == "schema-stale-doc")
            .unwrap();
        assert!(stale.message.contains("unit"), "{}", stale.message);
    }

    #[test]
    fn stale_doc_row_is_flagged_at_its_line() {
        let ems = emissions_of(
            "fn f(m: &mut Metrics) { m.counter(Subsystem::Net, \"frames_sent\"); }\n",
        );
        let rows = parse_doc_table(DOC, "EXPERIMENTS.md").expect("parses");
        let mut report = Report::default();
        check_docs(&ems, &rows, "EXPERIMENTS.md", &mut report);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "schema-stale-doc");
        assert_eq!(report.violations[0].line, 7);
    }

    #[test]
    fn series_refs_must_name_enrolled_series() {
        let src = "fn f(m: &mut Store) {\n    m.manual(Subsystem::Cluster, \"ready\", \"programs\");\n    query(\"cluster/ready\");\n    query(\"cluster/gone\");\n    open(\"target/release\");\n}\n";
        let mut files = BTreeMap::new();
        files.insert("a.rs".to_string(), ast::parse(src));
        let libs: BTreeSet<String> = ["a.rs".to_string()].into();
        let ems = collect_emissions(&files, &libs);
        let mut report = Report::default();
        check_series_refs(&files, &ems, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "schema-series-ref");
        assert!(report.violations[0].message.contains("cluster/gone"));
        assert_eq!(report.violations[0].line, 4);
    }

    #[test]
    fn plan_names_come_from_the_fn_body() {
        let src = "pub fn names() -> &'static [&'static str] {\n    &[\"none\", \"random\"]\n}\n";
        let mut files = BTreeMap::new();
        files.insert("faults.rs".to_string(), ast::parse(src));
        let mut report = Report::default();
        let plans = plan_name_set(&files, "faults.rs", "names", &mut report).unwrap();
        assert_eq!(
            plans,
            ["none".to_string(), "random".to_string()].into()
        );
        assert!(report.violations.is_empty());
        assert!(plan_name_set(&files, "faults.rs", "gone", &mut report).is_none());
        assert_eq!(report.violations[0].rule, "schema-plan-unknown");
    }
}
