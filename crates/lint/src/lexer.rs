//! A hand-rolled Rust tokenizer — the foundation of the v2 auditor.
//!
//! One pass over the source produces two views the rule passes share:
//!
//! * a token stream ([`Tok`]) with line numbers, which the AST-lite
//!   ([`crate::ast`]) and the flow passes ([`crate::taint`],
//!   [`crate::dispatch`], [`crate::schema`]) consume; and
//! * a *blanked* copy of the source (comments and literal contents
//!   replaced by spaces, line structure preserved) that keeps the
//!   original line-oriented rules working unchanged.
//!
//! The lexer understands everything the old line scanner mis-handled:
//! nested block comments, raw strings of any hash depth (`r##"…"##`),
//! byte and raw-byte strings, raw identifiers (`r#match`), char
//! literals vs lifetimes, and numeric literals with suffixes. It is
//! deliberately not a full Rust lexer — no float-exponent pedantry, no
//! shebang handling — but it is exact on everything this workspace's
//! rules match against.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `match`, `Subsystem`, …).
    Ident,
    /// String literal — [`Tok::text`] holds the *contents* (no quotes),
    /// which is how the schema pass reads metric names.
    Str,
    /// Char literal (contents, no quotes).
    Char,
    /// Numeric literal, suffix included (`0xff`, `1_000u64`).
    Num,
    /// Lifetime (`'a`, without the quote).
    Life,
    /// Punctuation; compound operators (`::`, `=>`, `..=`) are one token.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// The lexer's combined output.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, comments skipped.
    pub toks: Vec<Tok>,
    /// The source with comments and literal contents blanked to spaces
    /// (string quotes kept), newlines preserved.
    pub blanked: String,
}

/// Compound punctuation, longest first so maximal munch wins.
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `src`, producing the stream and the blanked text.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed {
        toks: Vec::new(),
        blanked: String::with_capacity(src.len()),
    };
    let mut line = 1usize;
    let mut i = 0usize;

    // Copies a char to the blanked output verbatim.
    fn keep(l: &mut Lexed, c: char) {
        l.blanked.push(c);
    }
    // Blanks a char in the output, preserving newlines.
    fn blank(l: &mut Lexed, c: char) {
        l.blanked.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            keep(&mut out, c);
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            keep(&mut out, c);
            i += 1;
            continue;
        }
        // Line comments (incl. doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Nested block comments.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw identifiers, raw strings, byte strings: r#ident, r"…",
        // r#"…"#, b"…", br#"…"#.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut is_byte = false;
            if b[j] == 'b' {
                is_byte = true;
                j += 1;
            }
            let has_r = j < n && b[j] == 'r';
            if has_r {
                j += 1;
            }
            let mut hashes = 0usize;
            let mut k = j;
            while k < n && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            let raw_ident = !is_byte && has_r && hashes == 1 && k < n && is_ident_start(b[k]);
            let raw_str = has_r && k < n && b[k] == '"';
            let byte_str = is_byte && !has_r && hashes == 0 && j < n && b[j] == '"';
            if raw_ident {
                // r#match — lex the ident, keep `r#` visible in blanked.
                keep(&mut out, b[i]);
                keep(&mut out, b[i + 1]);
                i += 2;
                lex_ident(&b, &mut i, n, &mut out, line);
                continue;
            }
            if raw_str || byte_str {
                let start_line = line;
                let open = if raw_str { k } else { j };
                for &ch in &b[i..=open] {
                    blank(&mut out, ch);
                }
                i = open + 1;
                let mut text = String::new();
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == '"' {
                        if raw_str {
                            let mut h = 0usize;
                            let mut e = i + 1;
                            while e < n && h < hashes && b[e] == '#' {
                                h += 1;
                                e += 1;
                            }
                            if h == hashes {
                                for &ch in &b[i..e] {
                                    blank(&mut out, ch);
                                }
                                i = e;
                                break;
                            }
                        } else {
                            blank(&mut out, b[i]);
                            i += 1;
                            break;
                        }
                    }
                    if !raw_str && b[i] == '\\' && i + 1 < n {
                        text.push(b[i]);
                        text.push(b[i + 1]);
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                        continue;
                    }
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    blank(&mut out, b[i]);
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                continue;
            }
            // Plain identifier starting with r/b.
            lex_ident(&b, &mut i, n, &mut out, line);
            continue;
        }
        // Ordinary string literal.
        if c == '"' {
            let start_line = line;
            keep(&mut out, '"');
            i += 1;
            let mut text = String::new();
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    text.push(b[i]);
                    text.push(b[i + 1]);
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '"' {
                    keep(&mut out, '"');
                    i += 1;
                    break;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    text.push(b[i]);
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal '\n', '\u{..}'.
                keep(&mut out, '\'');
                i += 1;
                let mut text = String::new();
                while i < n && b[i] != '\'' {
                    text.push(b[i]);
                    blank(&mut out, b[i]);
                    i += 1;
                }
                if i < n {
                    keep(&mut out, '\'');
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                });
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                // Plain char literal 'x'.
                keep(&mut out, '\'');
                blank(&mut out, b[i + 1]);
                keep(&mut out, '\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i + 1].to_string(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime 'a.
            keep(&mut out, '\'');
            i += 1;
            let start = i;
            while i < n && is_ident_char(b[i]) {
                keep(&mut out, b[i]);
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Life,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal (suffixes and `.` between digits included).
        if c.is_ascii_digit() {
            let start = i;
            while i < n {
                let d = b[i];
                let cont_dot = d == '.'
                    && i + 1 < n
                    && b[i + 1].is_ascii_digit()
                    && !(i > start && b[i - 1] == '.');
                if d.is_ascii_alphanumeric() || d == '_' || cont_dot {
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = b[start..i].iter().collect();
            for ch in text.chars() {
                keep(&mut out, ch);
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            lex_ident(&b, &mut i, n, &mut out, line);
            continue;
        }
        // Punctuation, compound first.
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= n && b[i..i + pl].iter().collect::<String>() == **p {
                for &ch in &b[i..i + pl] {
                    keep(&mut out, ch);
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                i += pl;
                matched = true;
                break;
            }
        }
        if !matched {
            keep(&mut out, c);
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_ident(b: &[char], i: &mut usize, n: usize, out: &mut Lexed, line: usize) {
    let start = *i;
    while *i < n && is_ident_char(b[*i]) {
        out.blanked.push(b[*i]);
        *i += 1;
    }
    out.toks.push(Tok {
        kind: TokKind::Ident,
        text: b[start..*i].iter().collect(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_compound_punct_and_paths() {
        let toks = kinds("a::b => c..=d");
        assert_eq!(toks[1], (TokKind::Punct, "::".to_string()));
        assert_eq!(toks[3], (TokKind::Punct, "=>".to_string()));
        assert_eq!(toks[5], (TokKind::Punct, "..=".to_string()));
    }

    #[test]
    fn string_tokens_keep_contents() {
        let toks = kinds(r#"counter(Subsystem::Net, "frames_sent")"#);
        assert!(toks.contains(&(TokKind::Str, "frames_sent".to_string())));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds("let s = r##\"inner \"# quote\"##; done");
        assert!(toks.contains(&(TokKind::Str, "inner \"# quote".to_string())));
        assert!(toks.iter().any(|t| t.1 == "done"));
    }

    #[test]
    fn raw_idents_are_idents() {
        let toks = kinds("r#match + r#fn");
        assert_eq!(toks[0], (TokKind::Ident, "match".to_string()));
        assert_eq!(toks[2], (TokKind::Ident, "fn".to_string()));
    }

    #[test]
    fn nested_block_comments_vanish() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(l.toks.len(), 2);
        assert!(!l.blanked.contains('y'));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'h'; }");
        assert!(toks.contains(&(TokKind::Life, "a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "h".to_string())));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let l = lex("let a = r#\"two\nlines\"#;\nlet b = 1;");
        let b_tok = l.toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn blanked_preserves_code_and_line_structure() {
        let src = "x.unwrap(); // comment\nlet s = \"dot.dot\";\n";
        let l = lex(src);
        assert_eq!(l.blanked.lines().count(), src.lines().count());
        assert!(l.blanked.contains(".unwrap()"));
        assert!(!l.blanked.contains("comment"));
        assert!(!l.blanked.contains("dot.dot"));
    }
}
