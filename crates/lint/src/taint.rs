//! Determinism taint: host-time and environment values must not reach
//! the simulation.
//!
//! The name-based `det-time` rule flags `Instant`/`SystemTime` by
//! mention; this pass tracks *flow*. A value originating from a host
//! clock or the environment (`Instant::now()`, `SystemTime::now()`,
//! `HostClock::now_ns()`, `env::var`, a `WallClock`) may be stored,
//! added to, or wrapped — but the moment it flows into an
//! `Engine::schedule`-family call, an event payload, or a timeseries
//! sample inside a library crate, the run is no longer a pure function
//! of the seed, and `det-taint` fires at the sink's line.
//!
//! The analysis is deliberately over-approximate and file-local:
//!
//! * **let bindings** — `let t = clock.now_ns();` taints every
//!   identifier bound by the pattern;
//! * **assignments and struct fields** — `x = t + 5;` taints `x`;
//!   `S { when: t }` and `self.when = t` taint the *field name*
//!   (globally per file, not per struct — over-approximation #1);
//! * **returns** — a fn whose return (or tail) expression is tainted
//!   becomes a file-local source, so helpers cannot launder a clock
//!   read (cross-file flows are out of scope; the name-based rules
//!   still cover raw host-clock mentions there);
//! * any tainted identifier appearing anywhere in a sink's argument
//!   list trips the rule, with no attempt at path-sensitivity.
//!
//! Sites are ratcheted by `[allow.det-taint]` in `lint.toml`; genuinely
//! host-facing files (the bench harness, the wall-clock `HostClock`
//! impl, the engine self-profiler) stay under `[determinism] allow`,
//! which skips the whole file.

use std::collections::BTreeSet;

use crate::ast::ParsedFile;
use crate::lexer::{Tok, TokKind};

/// Built-in taint sources, as dotted call paths (`[taint] sources`
/// extends the list). A leading `.` means "as a method call".
const SOURCES: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "UNIX_EPOCH",
    ".now_ns",
    "env::var",
    "env::var_os",
    "WallClock",
];

/// Built-in taint sinks (`[taint] sinks` extends the list): the
/// schedule family plus timeseries/metrics sample recording.
const SINKS: &[&str] = &[
    ".schedule",
    ".schedule_at",
    ".schedule_after",
    ".record",
    ".sample",
];

/// A compiled dotted pattern: token texts matched in sequence, plus
/// whether the first token must follow a `.` (method position).
#[derive(Debug, Clone)]
pub struct Pat {
    method: bool,
    seq: Vec<String>,
    /// The original spec, for diagnostics.
    pub spec: String,
}

/// Compiles `"Instant::now"` / `".now_ns"`-style specs.
pub fn compile(spec: &str) -> Pat {
    let method = spec.starts_with('.');
    let body = spec.trim_start_matches('.');
    let mut seq = Vec::new();
    for part in body.split("::") {
        if !seq.is_empty() {
            seq.push("::".to_string());
        }
        seq.push(part.to_string());
    }
    Pat {
        method,
        seq,
        spec: spec.to_string(),
    }
}

impl Pat {
    /// True when the pattern matches starting at token index `i`.
    fn matches_at(&self, toks: &[Tok], i: usize) -> bool {
        if self.method {
            if !(i > 0 && toks[i - 1].is_punct(".")) {
                return false;
            }
        } else if i > 0 && toks[i - 1].is_punct(".") {
            // `x.var(…)` is not `env::var`.
            return false;
        }
        for (k, want) in self.seq.iter().enumerate() {
            let Some(t) = toks.get(i + k) else {
                return false;
            };
            let kind_ok = if want == "::" {
                t.kind == TokKind::Punct
            } else {
                t.kind == TokKind::Ident
            };
            if !kind_ok || t.text != *want {
                return false;
            }
        }
        true
    }
}

/// One taint finding: a sink whose arguments carry host state.
#[derive(Debug, Clone)]
pub struct TaintSite {
    /// 1-based line of the sink call.
    pub line: usize,
    /// The sink spec that matched (`".schedule"`, …).
    pub sink: String,
    /// The tainted identifier (or source) observed in the arguments.
    pub evidence: String,
}

/// Per-file taint state shared across the fixpoint.
struct State {
    sources: Vec<Pat>,
    sinks: Vec<Pat>,
    /// Tainted struct-field names (file-global).
    fields: BTreeSet<String>,
    /// Fns whose return value is tainted (file-local sources).
    fns: BTreeSet<String>,
}

/// Runs the taint analysis over one parsed file.
pub fn analyze(
    pf: &ParsedFile,
    extra_sources: &[String],
    extra_sinks: &[String],
) -> Vec<TaintSite> {
    let mut st = State {
        sources: SOURCES
            .iter()
            .map(|s| compile(s))
            .chain(extra_sources.iter().map(|s| compile(s)))
            .collect(),
        sinks: SINKS
            .iter()
            .map(|s| compile(s))
            .chain(extra_sinks.iter().map(|s| compile(s)))
            .collect(),
        fields: BTreeSet::new(),
        fns: BTreeSet::new(),
    };

    // File-level fixpoint: fn-return and field taint feed back into
    // every function until nothing new appears (bounded for safety).
    for _ in 0..8 {
        let mut changed = false;
        for f in pf.fns.iter().filter(|f| !f.in_test && f.body.1 > f.body.0) {
            let flow = fn_taint(pf, f.body, &st);
            for nf in flow.fields {
                changed |= st.fields.insert(nf);
            }
            if flow.returns_taint {
                changed |= st.fns.insert(f.name.clone());
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for f in pf.fns.iter().filter(|f| !f.in_test && f.body.1 > f.body.0) {
        let flow = fn_taint(pf, f.body, &st);
        collect_sinks(pf, f.body, &st, &flow.locals, &mut out);
    }
    out.sort_by_key(|a| (a.line, a.sink.clone()));
    out.dedup_by(|a, b| a.line == b.line && a.sink == b.sink);
    out
}

/// What one fn's local fixpoint produced.
struct Flow {
    locals: BTreeSet<String>,
    fields: Vec<String>,
    returns_taint: bool,
}

/// Local fixpoint over one fn body: propagates taint through lets,
/// assignments, struct-literal fields, and detects tainted returns.
fn fn_taint(pf: &ParsedFile, body: (usize, usize), st: &State) -> Flow {
    let toks = &pf.toks;
    let (lo, hi) = body;
    let mut locals: BTreeSet<String> = BTreeSet::new();
    let mut fields: Vec<String> = Vec::new();
    let mut returns_taint = false;

    for _ in 0..8 {
        let mut changed = false;
        let mut i = lo;
        while i < hi {
            let t = &toks[i];
            // let PAT = EXPR ;
            if t.is_ident("let") {
                if let Some((eq, semi)) = let_extent(toks, i, hi) {
                    if expr_tainted(toks, eq + 1, semi, st, &locals).is_some() {
                        for id in pattern_idents(toks, i + 1, eq) {
                            changed |= locals.insert(id);
                        }
                    }
                    i = semi + 1;
                    continue;
                }
            }
            // IDENT = EXPR ;   /   recv.FIELD = EXPR ;
            if t.is_punct("=") && i > lo {
                let prev = &toks[i - 1];
                if prev.kind == TokKind::Ident {
                    let semi = stmt_end(toks, i + 1, hi);
                    if expr_tainted(toks, i + 1, semi, st, &locals).is_some() {
                        if i >= 2 && toks[i - 2].is_punct(".") {
                            if !st.fields.contains(&prev.text) {
                                fields.push(prev.text.clone());
                                changed = true;
                            }
                        } else {
                            changed |= locals.insert(prev.text.clone());
                        }
                    }
                }
            }
            // Struct literal field: IDENT : EXPR (to `,` or `}`).
            if t.kind == TokKind::Ident
                && i + 1 < hi
                && toks[i + 1].is_punct(":")
                && (i == lo || !toks[i - 1].is_punct(":"))
                // `let x: T = …` is a binding, not a struct field; the
                // `let` arm above owns it.
                && !(i > lo && toks[i - 1].is_ident("let"))
                && !(i > lo + 1 && toks[i - 1].is_ident("mut") && toks[i - 2].is_ident("let"))
            {
                let end = field_init_end(toks, i + 2, hi);
                if expr_tainted(toks, i + 2, end, st, &locals).is_some()
                    && !st.fields.contains(&t.text)
                    && !fields.contains(&t.text)
                {
                    fields.push(t.text.clone());
                    changed = true;
                }
            }
            // return EXPR ;
            if t.is_ident("return") {
                let semi = stmt_end(toks, i + 1, hi);
                if expr_tainted(toks, i + 1, semi, st, &locals).is_some() {
                    returns_taint = true;
                }
            }
            i += 1;
        }
        if !changed {
            break;
        }
    }

    // Tail expression: the last statement at body depth 1, not `;`-
    // terminated, is the return value.
    if let Some((tl, th)) = tail_expr(toks, lo, hi) {
        if expr_tainted(toks, tl, th, st, &locals).is_some() {
            returns_taint = true;
        }
    }

    Flow {
        locals,
        fields,
        returns_taint,
    }
}

/// Finds sink calls in a fn body whose argument lists carry taint.
fn collect_sinks(
    pf: &ParsedFile,
    body: (usize, usize),
    st: &State,
    locals: &BTreeSet<String>,
    out: &mut Vec<TaintSite>,
) {
    let toks = &pf.toks;
    let (lo, hi) = body;
    for i in lo..hi {
        for sink in &st.sinks {
            if !sink.matches_at(toks, i) {
                continue;
            }
            let after = i + sink.seq.len();
            if after >= hi || !toks[after].is_punct("(") {
                continue;
            }
            let args_end = crate::ast::block_end(toks, after).min(hi);
            if let Some(evidence) = expr_tainted(toks, after + 1, args_end, st, locals) {
                out.push(TaintSite {
                    line: toks[i].line,
                    sink: sink.spec.clone(),
                    evidence,
                });
            }
        }
    }
}

/// Whether a token range contains a taint source or a tainted
/// identifier; returns the evidence text.
fn expr_tainted(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    st: &State,
    locals: &BTreeSet<String>,
) -> Option<String> {
    let hi = hi.min(toks.len());
    let mut i = lo;
    while i < hi {
        for src in &st.sources {
            if src.matches_at(toks, i) {
                return Some(src.spec.clone());
            }
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let after_path = i > 0 && toks[i - 1].is_punct("::");
            let before_colon = toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(":") || n.is_punct("::"));
            let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if is_call && st.fns.contains(&t.text) {
                return Some(format!("{}()", t.text));
            }
            if !after_path
                && !before_colon
                && (locals.contains(&t.text) || st.fields.contains(&t.text))
            {
                return Some(t.text.clone());
            }
        }
        i += 1;
    }
    None
}

/// For `let` at `i`: the `=` and `;` token indices at let depth.
fn let_extent(toks: &[Tok], i: usize, hi: usize) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut eq = None;
    let mut k = i + 1;
    while k < hi {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                "=" if depth == 0 && eq.is_none() => eq = Some(k),
                ";" if depth == 0 => return eq.map(|e| (e, k)),
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// First `;` at expression depth, or `hi`.
fn stmt_end(toks: &[Tok], lo: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut k = lo;
    while k < hi {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    hi
}

/// End of a struct-literal field initializer: `,` or `}` at depth 0.
fn field_init_end(toks: &[Tok], lo: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut k = lo;
    while k < hi {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    if depth == 0 {
                        return k;
                    }
                    depth -= 1;
                }
                "," | ";" if depth == 0 => return k,
                _ => {}
            }
        }
        k += 1;
    }
    hi
}

/// Identifiers bound by a `let` pattern (skips keywords, type paths,
/// and the `: Type` annotation after a top-level colon).
fn pattern_idents(toks: &[Tok], lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    for i in lo..hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                // `let x: u64 = …` — the annotation is not a binding.
                ":" if depth == 0 => break,
                _ => {}
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "mut" | "ref" | "_") {
            continue;
        }
        if i > lo && toks[i - 1].is_punct("::") {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// The tail expression of a block body, if any: the tokens after the
/// last `;` / nested block at depth 1, when not empty.
fn tail_expr(toks: &[Tok], lo: usize, hi: usize) -> Option<(usize, usize)> {
    if hi <= lo + 2 {
        return None;
    }
    let inner_hi = hi - 1; // exclude closing `}`
    let mut depth = 0i64;
    let mut start = lo + 1;
    let mut k = lo + 1;
    while k < inner_hi {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" => {
                    depth -= 1;
                    // A closing brace back at statement depth ends a
                    // block statement (`if … {}`, `match … {}`); a
                    // closing paren/bracket is part of the expression.
                    if depth == 0 {
                        start = k + 1;
                    }
                }
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => start = k + 1,
                _ => {}
            }
        }
        k += 1;
    }
    (start < inner_hi).then_some((start, inner_hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn sites(src: &str) -> Vec<TaintSite> {
        analyze(&ast::parse(src), &[], &[])
    }

    #[test]
    fn direct_source_in_sink_args() {
        let s = sites("fn f(e: &mut E, c: &mut C) { e.schedule(c.now_ns()); }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].sink, ".schedule");
    }

    #[test]
    fn taint_through_let_chain() {
        let s = sites(
            "fn f(e: &mut E, c: &mut C) {\n    let t = c.now_ns();\n    let d = t + 5;\n    e.schedule_at(d, ev);\n}",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 4);
        assert_eq!(s[0].evidence, "d");
    }

    #[test]
    fn taint_through_struct_field() {
        let s = sites(
            "fn f(e: &mut E, c: &mut C) {\n    let s = S { when: c.now_ns() };\n    e.schedule(s.when);\n}",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 3);
    }

    #[test]
    fn taint_through_helper_return() {
        let s = sites(
            "fn stamp(c: &mut C) -> u64 { c.now_ns() }\nfn f(e: &mut E, c: &mut C) {\n    e.schedule(stamp(c));\n}",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].line, 3);
        assert_eq!(s[0].evidence, "stamp()");
    }

    #[test]
    fn untainted_schedule_is_clean() {
        assert!(sites("fn f(e: &mut E) { let t = now(); e.schedule(42); }").is_empty());
    }

    #[test]
    fn sim_now_is_not_a_source() {
        // `ctx.now()` (SimTime) is fine; only `.now_ns` / `Instant::now`
        // style host reads taint.
        assert!(sites("fn f(e: &mut E, ctx: &C) { e.schedule_at(ctx.now(), ev); }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let s = sites(
            "#[cfg(test)]\nmod t {\n    fn f(e: &mut E, c: &mut C) { e.schedule(c.now_ns()); }\n}",
        );
        assert!(s.is_empty());
    }

    #[test]
    fn profiler_begin_end_shape_is_clean() {
        // The live profiler pattern: t0 from begin() flows only into
        // end(), which is not a sink.
        let s = sites(
            "fn f(p: &mut P, e: &mut E) {\n    let t0 = p.begin();\n    e.schedule(ev);\n    p.end(slot, t0);\n}",
        );
        assert!(s.is_empty());
    }
}
