//! Exhaustive-dispatch audit: every watched enum variant must be
//! handled by every registered dispatch surface, and no non-test match
//! over a watched enum may hide behind a wildcard arm.
//!
//! `lint.toml` registers each audited enum with a `[[dispatch]]` entry:
//! where it is defined, and the `file#fn` surfaces (dispatchers,
//! serializers, label fns) that must mention **every** variant as an
//! `Enum::Variant` / `Self::Variant` path. The check is textual on the
//! token stream, so it fails even when the surface uses a wildcard arm
//! and therefore still compiles after a variant is added — exactly the
//! silent-drift case rustc cannot catch.
//!
//! Rules:
//!
//! * `dispatch-enum-missing` — the configured `defined_in` file no
//!   longer defines the enum (config drift is an error, not a skip);
//! * `dispatch-surface-missing` — a configured surface fn is gone;
//! * `dispatch-missing` — a surface fn does not mention some variant;
//! * `dispatch-wildcard` — a non-test `match` whose arms name a watched
//!   enum also has an unguarded catch-all arm (`_` or a plain binding)
//!   that would silently swallow new variants. Sites are ratcheted via
//!   `[allow.dispatch-wildcard]`.

use std::collections::BTreeMap;

use crate::ast::ParsedFile;
use crate::config::{Config, DispatchSpec};
use crate::lexer::TokKind;
use crate::report::{Report, Violation};

/// Runs the dispatch audit. `files` maps workspace-relative paths to
/// parsed files; `wildcard_sites` collects ratchetable wildcard hits
/// per file for the generic ratchet machinery in [`crate::rules`].
pub fn check(
    files: &BTreeMap<String, ParsedFile>,
    cfg: &Config,
    report: &mut Report,
    wildcard_sites: &mut BTreeMap<String, Vec<usize>>,
) {
    for spec in &cfg.dispatch {
        check_spec(files, spec, report);
    }
    if !cfg.dispatch.is_empty() {
        find_wildcards(files, cfg, wildcard_sites);
    }
}

fn check_spec(files: &BTreeMap<String, ParsedFile>, spec: &DispatchSpec, report: &mut Report) {
    let Some(def_file) = files.get(&spec.defined_in) else {
        report.violations.push(Violation {
            rule: "dispatch-enum-missing",
            file: spec.defined_in.clone(),
            line: 0,
            message: format!(
                "[[dispatch]] (lint.toml:{}) points at `{}` for enum `{}`, but the file was not \
                 scanned",
                spec.line, spec.defined_in, spec.enum_name
            ),
            hint: "fix the defined_in path in lint.toml (the dispatch registry must track the \
                   code, or the audit silently lapses)",
        });
        return;
    };
    let Some(en) = def_file
        .enums
        .iter()
        .find(|e| e.name == spec.enum_name && !e.in_test)
    else {
        report.violations.push(Violation {
            rule: "dispatch-enum-missing",
            file: spec.defined_in.clone(),
            line: 0,
            message: format!(
                "enum `{}` is not defined in `{}` (lint.toml:{})",
                spec.enum_name, spec.defined_in, spec.line
            ),
            hint: "update the [[dispatch]] entry in lint.toml to the enum's new home",
        });
        return;
    };

    for (sfile, sfn) in &spec.surfaces {
        let Some(pf) = files.get(sfile) else {
            report.violations.push(Violation {
                rule: "dispatch-surface-missing",
                file: sfile.clone(),
                line: 0,
                message: format!(
                    "dispatch surface `{sfile}#{sfn}` for `{}`: file was not scanned",
                    spec.enum_name
                ),
                hint: "fix the surface path in lint.toml",
            });
            continue;
        };
        // All same-named fns contribute (e.g. several `fmt`/`label`
        // impls in one file); their bodies are unioned.
        let bodies: Vec<(usize, usize)> = pf
            .fns
            .iter()
            .filter(|f| f.name == *sfn && !f.in_test && f.body.1 > f.body.0)
            .map(|f| f.body)
            .collect();
        if bodies.is_empty() {
            report.violations.push(Violation {
                rule: "dispatch-surface-missing",
                file: sfile.clone(),
                line: 0,
                message: format!(
                    "dispatch surface fn `{sfn}` for `{}` not found in `{sfile}`",
                    spec.enum_name
                ),
                hint: "the fn was renamed or moved; update surfaces in lint.toml so the \
                       exhaustiveness audit keeps covering it",
            });
            continue;
        }
        let fn_line = pf
            .fns
            .iter()
            .find(|f| f.name == *sfn && !f.in_test)
            .map_or(0, |f| f.line);
        for v in &en.variants {
            let mentioned = bodies
                .iter()
                .any(|&b| mentions_variant(pf, b, &spec.enum_name, &v.name));
            if !mentioned {
                report.violations.push(Violation {
                    rule: "dispatch-missing",
                    file: sfile.clone(),
                    line: fn_line,
                    message: format!(
                        "`{sfn}` does not handle `{}::{}` (declared at {}:{})",
                        spec.enum_name, v.name, spec.defined_in, v.line
                    ),
                    hint: "add a match arm (or serialization case) for the variant; wildcard \
                           arms that swallow variants are flagged separately as \
                           dispatch-wildcard",
                });
            }
        }
    }
}

/// True when `Enum::Variant` or `Self::Variant` appears in the body.
fn mentions_variant(pf: &ParsedFile, body: (usize, usize), enum_name: &str, variant: &str) -> bool {
    let toks = &pf.toks;
    for i in body.0..body.1.saturating_sub(2) {
        if (toks[i].is_ident(enum_name) || toks[i].is_ident("Self"))
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident(variant)
        {
            return true;
        }
    }
    false
}

/// Flags non-test matches that name a watched enum in an arm pattern
/// yet keep an unguarded catch-all arm.
fn find_wildcards(
    files: &BTreeMap<String, ParsedFile>,
    cfg: &Config,
    sites: &mut BTreeMap<String, Vec<usize>>,
) {
    let watched: Vec<&str> = cfg.dispatch.iter().map(|d| d.enum_name.as_str()).collect();
    for (rel, pf) in files {
        for m in pf.matches.iter().filter(|m| !m.in_test) {
            let Some(ca) = m.catch_all(&pf.toks) else {
                continue;
            };
            let names_watched = m.arms.iter().any(|a| {
                (a.pat.0..a.pat.1.saturating_sub(1)).any(|i| {
                    pf.toks[i].kind == TokKind::Ident
                        && watched.contains(&pf.toks[i].text.as_str())
                        && pf.toks[i + 1].is_punct("::")
                })
            });
            if names_watched {
                sites.entry(rel.clone()).or_default().push(ca.line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn setup(src: &str, surfaces: &[(&str, &str)]) -> (Report, BTreeMap<String, Vec<usize>>) {
        let mut files = BTreeMap::new();
        files.insert("a.rs".to_string(), ast::parse(src));
        let cfg = Config {
            dispatch: vec![DispatchSpec {
                enum_name: "Ev".to_string(),
                defined_in: "a.rs".to_string(),
                surfaces: surfaces
                    .iter()
                    .map(|(f, n)| (f.to_string(), n.to_string()))
                    .collect(),
                line: 1,
            }],
            ..Config::default()
        };
        let mut report = Report::default();
        let mut sites = BTreeMap::new();
        check(&files, &cfg, &mut report, &mut sites);
        (report, sites)
    }

    #[test]
    fn complete_dispatcher_is_clean() {
        let (r, s) = setup(
            "pub enum Ev { A, B }\nfn go(e: Ev) { match e { Ev::A => {} Ev::B => {} } }",
            &[("a.rs", "go")],
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(s.is_empty());
    }

    #[test]
    fn missing_arm_is_reported_per_variant() {
        let (r, _) = setup(
            "pub enum Ev { A, B, C }\nfn go(e: Ev) { match e { Ev::A => {} Ev::B => {} _ => {} } }",
            &[("a.rs", "go")],
        );
        let missing: Vec<_> = r
            .violations
            .iter()
            .filter(|v| v.rule == "dispatch-missing")
            .collect();
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("Ev::C"), "{}", missing[0].message);
        assert_eq!(missing[0].line, 2);
    }

    #[test]
    fn self_paths_count_as_mentions() {
        let (r, _) = setup(
            "pub enum Ev { A, B }\nimpl Ev { fn go(&self) { match self { Self::A => {} Self::B => {} } } }",
            &[("a.rs", "go")],
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn wildcard_over_watched_enum_is_collected() {
        let (_, s) = setup(
            "pub enum Ev { A, B }\nfn go(e: Ev) { match e { Ev::A => {} _ => {} } }",
            &[("a.rs", "go")],
        );
        assert_eq!(s["a.rs"], vec![2]);
    }

    #[test]
    fn wildcard_over_other_enums_is_ignored() {
        let (_, s) = setup(
            "pub enum Ev { A }\nfn f(x: Other) { match x { Other::Y => {} _ => {} } }\nfn go(e: Ev) { match e { Ev::A => {} } }",
            &[("a.rs", "go")],
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn guarded_catch_all_is_not_a_wildcard() {
        let (_, s) = setup(
            "pub enum Ev { A }\nfn go(e: Ev, n: u32) { match e { Ev::A if n > 0 => {} other if n == 0 => {} Ev::A => {} } }",
            &[("a.rs", "go")],
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn vanished_surface_and_enum_are_errors() {
        let (r, _) = setup("pub enum Ev { A }\n", &[("a.rs", "gone")]);
        assert!(r
            .violations
            .iter()
            .any(|v| v.rule == "dispatch-surface-missing"));
        let (r, _) = setup("fn nothing() {}\n", &[("a.rs", "nothing")]);
        assert!(r
            .violations
            .iter()
            .any(|v| v.rule == "dispatch-enum-missing"));
    }

    #[test]
    fn test_scope_matches_are_exempt() {
        let (_, s) = setup(
            "pub enum Ev { A }\nfn go(e: Ev) { match e { Ev::A => {} } }\n#[cfg(test)]\nmod t {\n    fn f(e: super::Ev) -> u32 { match e { super::Ev::A => 1, _ => 0 } }\n}",
            &[("a.rs", "go")],
        );
        assert!(s.is_empty(), "{s:?}");
    }
}
