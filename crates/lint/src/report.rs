//! Diagnostics: violation records, text rendering, and the JSON artifact.
//!
//! Text output is `file:line: [rule-id] message` with a fix hint, so a
//! terminal (or CI log) jump-to-file works. `--json` additionally writes
//! `results/vlint.json` — serialized by a tiny hand-rolled emitter here,
//! since `vlint` depends on nothing, not even `vsim`.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier, e.g. `det-hash`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// The outcome of a full lint pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates audited.
    pub crates_audited: usize,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule id, sorted by rule id.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for v in &self.violations {
            match counts.iter_mut().find(|(r, _)| *r == v.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((v.rule, 1)),
            }
        }
        counts.sort_by_key(|&(r, _)| r);
        counts
    }

    /// Renders the human-readable diagnostic listing.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            if v.line > 0 {
                let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            } else {
                let _ = writeln!(out, "{}: [{}] {}", v.file, v.rule, v.message);
            }
            let _ = writeln!(out, "    hint: {}", v.hint);
        }
        let _ = writeln!(
            out,
            "vlint: {} violation{} ({} crates, {} files scanned)",
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" },
            self.crates_audited,
            self.files_scanned,
        );
        out
    }

    /// Serializes the report as a pretty-printed JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"vlint\",");
        let _ = writeln!(out, "  \"schema\": 2,");
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(out, "  \"crates_audited\": {},", self.crates_audited);
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"rule_counts\": {");
        let counts = self.rule_counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let _ = write!(out, "{}: {n}", json_str(rule));
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}, ", json_str(v.rule));
            let _ = write!(out, "\"file\": {}, ", json_str(&v.file));
            let _ = write!(out, "\"line\": {}, ", v.line);
            let _ = write!(out, "\"message\": {}, ", json_str(&v.message));
            let _ = write!(out, "\"hint\": {}", json_str(v.hint));
            out.push('}');
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            violations: vec![Violation {
                rule: "det-hash",
                file: "crates/net/src/ethernet.rs".to_string(),
                line: 100,
                message: "HashMap in library code".to_string(),
                hint: "use BTreeMap",
            }],
            files_scanned: 3,
            crates_audited: 2,
        }
    }

    #[test]
    fn text_has_file_line_rule_and_hint() {
        let text = sample().render_text();
        assert!(text.contains("crates/net/src/ethernet.rs:100: [det-hash]"));
        assert!(text.contains("hint: use BTreeMap"));
        assert!(text.contains("vlint: 1 violation"));
    }

    #[test]
    fn json_roundtrips_basic_fields() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\": 2"));
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("\"rule\": \"det-hash\""));
        assert!(json.contains("\"det-hash\": 1"));
        assert!(json.contains("\"line\": 100"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
