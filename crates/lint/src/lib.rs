//! `vlint` — the workspace determinism, layering, dispatch, and schema
//! auditor.
//!
//! The headline claims of this reproduction (sub-second freeze times,
//! identical-trace replay, the 32-seed chaos soak) all rest on the
//! simulation being bit-for-bit deterministic and on the telemetry
//! surface staying coherent across its many copies. Neither property
//! announces its violation at compile time: unordered `HashMap`
//! iteration once picked different migration guests per run, and a
//! wildcard match arm happily swallows an `Event` variant added years
//! later. `vlint` catches those classes of bug *before* the code runs —
//! with a hand-rolled tokenizer ([`lexer`]), an item/block-level
//! AST-lite ([`ast`]), and zero external crates, in the spirit of
//! `vsim::json`.
//!
//! Rule families, configured by `lint.toml` at the workspace root:
//!
//! * **determinism** (`det-hash`, `det-time`, `det-thread`, `det-rand`)
//!   — deny hash-ordered collections, wall-clock time, OS threads, and
//!   ambient randomness in library code.
//! * **determinism taint** (`det-taint`) — a file-local data-flow pass
//!   ([`taint`]): values derived from `Instant::now()`, `env::var`, or
//!   a host clock must not flow — through lets, struct fields, or
//!   helper returns — into `Engine::schedule*`, event payloads, or
//!   timeseries samples.
//! * **layering** (`layering-dep`, `layering-use`) — enforce the
//!   intended dependency DAG over `Cargo.toml` and `use` statements.
//! * **exhaustive dispatch** (`dispatch-missing`, `dispatch-wildcard`,
//!   `dispatch-enum-missing`, `dispatch-surface-missing`) — every
//!   variant of the enums registered under `[[dispatch]]` (`Event`,
//!   `TraceEvent`, `FaultKind`, …) must be named by every configured
//!   dispatch surface, and matches over them must not hide behind
//!   unguarded wildcard arms ([`dispatch`]).
//! * **schema drift** (`schema-undocumented`, `schema-stale-doc`,
//!   `schema-snake-case`, `schema-kind-conflict`, `schema-series-ref`,
//!   `schema-plan-unknown`, `schema-fault-matrix`) — the metric and
//!   time-series names registered in code are the source of truth; the
//!   documented schema table, sweep plan axes, series references, and
//!   the fault-matrix test are all cross-checked against them
//!   ([`schema`]).
//! * **panic budget** (`panic-budget`) — count `unwrap()` / `expect(` /
//!   `panic!` in non-test library paths against `[allow.panic-budget]`.
//! * **lossy casts** (`lossy-cast`) — flag narrowing `as` casts in the
//!   crates doing `SimTime`/byte-count arithmetic.
//! * **bench emit** (`bench-emit`) — every experiment binary must route
//!   results through `vbench::emit`.
//! * **ratchets** (`ratchet-stale`) — the per-file allowances under
//!   `[allow.<rule-id>]` may only shrink; an allowance above the actual
//!   count is itself an error.
//!
//! The binary (`cargo run -p vlint`) exits non-zero on any violation and
//! `--json` writes a `results/vlint.json` artifact (schema version 2)
//! for CI and `vrun lint`.

pub mod ast;
pub mod config;
pub mod dispatch;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod schema;
pub mod taint;
pub mod toml;

use std::path::Path;

pub use config::Config;
pub use report::{Report, Violation};

/// Runs the full lint pass over the workspace rooted at `root`.
///
/// `root` must contain a `lint.toml` and a `Cargo.toml`; member crates are
/// discovered under `root/crates/*/Cargo.toml` plus the root package
/// itself (if the root manifest has a `[package]` section).
///
/// # Errors
///
/// Returns a human-readable message when `lint.toml` is missing or
/// malformed, or when the crate tree cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(root)?;
    let crates = rules::discover_crates(root)?;
    rules::check_workspace(root, &cfg, &crates)
}
