//! `vlint` — the workspace determinism & layering auditor.
//!
//! The headline claims of this reproduction (sub-second freeze times,
//! identical-trace replay, the 32-seed chaos soak) all rest on the
//! simulation being bit-for-bit deterministic. Nondeterminism bugs do not
//! announce themselves at compile time: unordered `HashMap` iteration once
//! picked different migration guests per run and only surfaced as diverging
//! traces at runtime. `vlint` catches that class of bug *before* the code
//! runs, with a hand-rolled line/token scanner in the spirit of
//! [`vsim::json`] — no `syn`, no external crates, nothing but `std`.
//!
//! Four rule families, configured by `lint.toml` at the workspace root:
//!
//! * **determinism** (`det-hash`, `det-time`, `det-thread`, `det-rand`) —
//!   deny hash-ordered collections, wall-clock time, OS threads, and
//!   ambient randomness in library code. Simulation state must iterate in
//!   a deterministic order and draw time/randomness only from
//!   `vsim::SimTime` / `vsim::rng`.
//! * **layering** (`layering-dep`, `layering-use`) — parse each crate's
//!   `Cargo.toml` and `use` statements and enforce the intended dependency
//!   DAG (`vsim` depends on nothing, `vkernel` never on `vcluster`,
//!   bench-only code never imported by library crates, …).
//! * **panic budget** (`panic-budget`, `panic-budget-stale`) — count
//!   `unwrap()` / `expect(` / `panic!` in non-test library paths against a
//!   checked-in per-file allowlist, so the count can only shrink.
//! * **lossy casts** (`lossy-cast`, `lossy-cast-stale`) — flag narrowing
//!   `as` casts in the crates doing `SimTime`/byte-count arithmetic, where
//!   a silent truncation corrupts simulated time.
//! * **bench emit** (`bench-emit`) — every experiment binary under
//!   `crates/bench/src/bin/` must route its results through
//!   `vbench::emit`, so each run leaves a machine-readable artifact the
//!   `vrun` cache and doc generator can consume.
//!
//! The binary (`cargo run -p vlint`) exits non-zero on any violation and
//! `--json` writes a `results/vlint.json` artifact for CI.
//!
//! [`vsim::json`]: ../vsim/json/index.html

pub mod config;
pub mod report;
pub mod rules;
pub mod scan;
pub mod toml;

use std::path::Path;

pub use config::Config;
pub use report::{Report, Violation};

/// Runs the full lint pass over the workspace rooted at `root`.
///
/// `root` must contain a `lint.toml` and a `Cargo.toml`; member crates are
/// discovered under `root/crates/*/Cargo.toml` plus the root package
/// itself (if the root manifest has a `[package]` section).
///
/// # Errors
///
/// Returns a human-readable message when `lint.toml` is missing or
/// malformed, or when the crate tree cannot be read.
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(root)?;
    let crates = rules::discover_crates(root)?;
    rules::check_workspace(root, &cfg, &crates)
}
