//! Source cleaning: a hand-rolled lexical pass over Rust files.
//!
//! The rules in [`crate::rules`] are token-level, so before matching they
//! need a view of the source with everything that is *not* code blanked
//! out: line and (nested) block comments, string/char literal contents,
//! and raw strings. Doc comments are comments too, which is what lets the
//! rules mention `HashMap` in their own documentation without tripping
//! themselves.
//!
//! The cleaner also marks lines inside `#[cfg(test)]` items (and `#[test]`
//! functions) so the determinism and panic-budget rules can skip test
//! code: tests may unwrap and hash to their heart's content.

/// One cleaned source line.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// Line text with comment and literal contents blanked to spaces.
    pub text: String,
    /// Whether the line sits inside a `#[cfg(test)]` item or `#[test]` fn.
    pub in_test: bool,
}

/// Cleans a whole file: strips comments/literals, marks test scopes.
pub fn clean(src: &str) -> Vec<CleanLine> {
    let stripped = strip_comments_and_literals(src);
    let mut lines: Vec<CleanLine> = stripped
        .lines()
        .enumerate()
        .map(|(i, text)| CleanLine {
            number: i + 1,
            text: text.to_string(),
            in_test: false,
        })
        .collect();
    mark_test_scopes(&mut lines);
    lines
}

/// Blanks comments and literal contents, preserving line structure.
///
/// Handles nested `/* */`, `//` (incl. doc comments), `"…"` with escapes,
/// raw strings `r"…"` / `r#"…"#` (any hash depth), byte strings, and char
/// literals vs lifetimes (`'a'` vs `'a`).
pub fn strip_comments_and_literals(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // Pushes a blanked char, preserving newlines so line numbers survive.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
    while i < n {
        let c = b[i];
        match c {
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1usize;
                blank(&mut out, b[i]);
                blank(&mut out, b[i + 1]);
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        blank(&mut out, b[i]);
                        blank(&mut out, b[i + 1]);
                        i += 2;
                    } else if b[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                }
            }
            'r' if i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Possible raw string r"…" / r#"…"#; otherwise plain ident.
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    for &c in &b[i..=j] {
                        blank(&mut out, c);
                    }
                    i = j + 1;
                    while i < n {
                        if b[i] == '"' {
                            let mut k = i + 1;
                            let mut h = 0usize;
                            while k < n && h < hashes && b[k] == '#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                for &c in &b[i..k] {
                                    blank(&mut out, c);
                                }
                                i = k;
                                break;
                            }
                        }
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: '\…' or 'x' is a literal.
                if i + 1 < n && b[i + 1] == '\\' {
                    out.push('\'');
                    i += 1;
                    while i < n && b[i] != '\'' {
                        blank(&mut out, b[i]);
                        i += 1;
                    }
                    if i < n {
                        out.push('\'');
                        i += 1;
                    }
                } else if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Marks lines belonging to `#[cfg(test)]` items and `#[test]` functions.
///
/// Brace-counts from the attribute to the end of the item it decorates;
/// `mod tests;` (no body) ends at the semicolon.
fn mark_test_scopes(lines: &mut [CleanLine]) {
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].text.trim_start();
        let is_test_attr = t.starts_with("#[cfg(test)]") || t.starts_with("#[test]");
        if !is_test_attr {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            lines[j].in_test = true;
            for c in lines[j].text.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            if !opened && lines[j].text.contains(';') {
                break; // `#[cfg(test)] mod tests;` form
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// True when `line` contains `word` as a standalone token (not a substring
/// of a longer identifier).
pub fn has_word(line: &str, word: &str) -> bool {
    word_positions(line, word).next().is_some()
}

/// Counts standalone occurrences of `word` in `line`.
pub fn count_word(line: &str, word: &str) -> usize {
    word_positions(line, word).count()
}

/// Byte offsets of standalone occurrences of `word` in `line`.
pub fn word_positions<'a>(line: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        while start <= line.len() {
            let pos = line[start..].find(word)?;
            let p = start + pos;
            let end = p + word.len();
            start = end.max(p + 1);
            let before_ok = p == 0
                || line[..p]
                    .chars()
                    .next_back()
                    .is_some_and(|c| !c.is_alphanumeric() && c != '_');
            let after_ok = end >= line.len()
                || line[end..]
                    .chars()
                    .next()
                    .is_some_and(|c| !c.is_alphanumeric() && c != '_');
            if before_ok && after_ok {
                return Some(p);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let out = strip_comments_and_literals("let x = 1; // HashMap here\n/// HashMap doc\n");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let x = 1;"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let out = strip_comments_and_literals("a /* x /* HashMap */ y */ b");
        assert!(!out.contains("HashMap"));
        assert!(out.starts_with('a'));
        assert!(out.trim_end().ends_with('b'));
    }

    #[test]
    fn strips_string_contents_and_escapes() {
        let out = strip_comments_and_literals(r#"trace("HashMap \" panic! {}", x);"#);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("panic!"));
        assert!(out.contains("trace("));
        assert!(out.contains(", x);"));
    }

    #[test]
    fn strips_raw_strings() {
        let out = strip_comments_and_literals("let s = r#\"an \"inner\" HashMap\"#; s.len()");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("s.len()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = strip_comments_and_literals("fn f<'a>(x: &'a str) { let c = 'h'; }");
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains('h'));
    }

    #[test]
    fn marks_cfg_test_modules() {
        let lines = clean("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn marks_test_fns() {
        let lines = clean("#[test]\nfn t() {\n    x();\n}\nfn d() {}\n");
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, true, true, false]);
    }

    #[test]
    fn word_matching_respects_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("MyHashMapLike", "HashMap"));
        assert!(!has_word("HashMapExt", "HashMap"));
        assert_eq!(count_word("HashMap, HashMap", "HashMap"), 2);
        assert!(has_word("a.unwrap()", "unwrap"));
        assert!(!has_word("a.unwrap_or(x)", "unwrap"));
    }
}
