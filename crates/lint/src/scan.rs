//! Source cleaning: the line-oriented view over the [`crate::lexer`].
//!
//! The original v1 auditor was built on a line scanner that stripped
//! comments and literals with ad-hoc state. v2 keeps this module's API —
//! the line rules in [`crate::rules`] still match `.unwrap()` or
//! `HashMap` against blanked text — but the implementation now rides on
//! the real tokenizer and the AST-lite test-scope marking, which fixes
//! the scanner's known edge cases: multi-line attribute lists
//! (`#[cfg(\n test\n)]`), attributes not at the start of a line, and
//! raw strings that span lines.

/// One cleaned source line.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// Line text with comment and literal contents blanked to spaces.
    pub text: String,
    /// Whether the line sits inside a `#[cfg(test)]` item or `#[test]` fn.
    pub in_test: bool,
}

/// Cleans a whole file: strips comments/literals, marks test scopes.
///
/// Equivalent to `ast::parse(src).lines`; kept for callers that only
/// need the line view.
pub fn clean(src: &str) -> Vec<CleanLine> {
    crate::ast::parse(src).lines
}

/// Blanks comments and literal contents, preserving line structure.
///
/// Handles nested `/* */`, `//` (incl. doc comments), `"…"` with escapes,
/// raw strings `r"…"` / `r#"…"#` (any hash depth), byte strings, and char
/// literals vs lifetimes (`'a'` vs `'a`).
pub fn strip_comments_and_literals(src: &str) -> String {
    crate::lexer::lex(src).blanked
}

/// True when `line` contains `word` as a standalone token (not a substring
/// of a longer identifier).
pub fn has_word(line: &str, word: &str) -> bool {
    word_positions(line, word).next().is_some()
}

/// Counts standalone occurrences of `word` in `line`.
pub fn count_word(line: &str, word: &str) -> usize {
    word_positions(line, word).count()
}

/// Byte offsets of standalone occurrences of `word` in `line`.
pub fn word_positions<'a>(line: &'a str, word: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut start = 0usize;
    std::iter::from_fn(move || {
        while start <= line.len() {
            let pos = line[start..].find(word)?;
            let p = start + pos;
            let end = p + word.len();
            start = end.max(p + 1);
            let before_ok = p == 0
                || line[..p]
                    .chars()
                    .next_back()
                    .is_some_and(|c| !c.is_alphanumeric() && c != '_');
            let after_ok = end >= line.len()
                || line[end..]
                    .chars()
                    .next()
                    .is_some_and(|c| !c.is_alphanumeric() && c != '_');
            if before_ok && after_ok {
                return Some(p);
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_doc_comments() {
        let out = strip_comments_and_literals("let x = 1; // HashMap here\n/// HashMap doc\n");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let x = 1;"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let out = strip_comments_and_literals("a /* x /* HashMap */ y */ b");
        assert!(!out.contains("HashMap"));
        assert!(out.starts_with('a'));
        assert!(out.trim_end().ends_with('b'));
    }

    #[test]
    fn strips_string_contents_and_escapes() {
        let out = strip_comments_and_literals(r#"trace("HashMap \" panic! {}", x);"#);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("panic!"));
        assert!(out.contains("trace("));
        assert!(out.contains(", x);"));
    }

    #[test]
    fn strips_raw_strings() {
        let out = strip_comments_and_literals("let s = r#\"an \"inner\" HashMap\"#; s.len()");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("s.len()"));
    }

    #[test]
    fn strips_multiline_raw_strings_keeping_line_count() {
        // Regression: the old scanner had no cross-line literal state
        // threaded through test marking; a raw string spanning lines
        // could desynchronize the two passes.
        let src = "let s = r#\"line one\nSystemTime inside\nline three\"#;\nlet x = 1;\n";
        let out = strip_comments_and_literals(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("SystemTime"));
        assert!(out.contains("let x = 1;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = strip_comments_and_literals("fn f<'a>(x: &'a str) { let c = 'h'; }");
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains('h'));
    }

    #[test]
    fn marks_cfg_test_modules() {
        let lines = clean("fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n");
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn marks_test_fns() {
        let lines = clean("#[test]\nfn t() {\n    x();\n}\nfn d() {}\n");
        let flags: Vec<bool> = lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, true, true, false]);
    }

    #[test]
    fn marks_multiline_cfg_attribute() {
        // Regression: `#[cfg(\n test\n)]` was invisible to the old
        // line-prefix check, so the whole test module was linted as
        // library code.
        let lines = clean("#[cfg(\n    test\n)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert!(lines.iter().all(|l| l.in_test), "{lines:?}");
    }

    #[test]
    fn cfg_not_test_stays_library() {
        let lines = clean("#[cfg(not(test))]\nfn lib() { x(); }\n");
        assert!(lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn word_matching_respects_boundaries() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("MyHashMapLike", "HashMap"));
        assert!(!has_word("HashMapExt", "HashMap"));
        assert_eq!(count_word("HashMap, HashMap", "HashMap"), 2);
        assert!(has_word("a.unwrap()", "unwrap"));
        assert!(!has_word("a.unwrap_or(x)", "unwrap"));
    }
}
