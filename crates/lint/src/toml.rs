//! A shared, dependency-free TOML-subset reader.
//!
//! Grown from the `lint.toml` loader, this module is now also the parser
//! behind `vrun`'s sweep specs (`sweeps/*.toml`), so it accepts the
//! slightly larger subset those need:
//!
//! ```toml
//! [section]            # plain table
//! [section.sub]        # nested table (dotted header)
//! [[experiment]]       # array of tables
//! bare_key = 3
//! "quoted/key.rs" = 2
//! flag = true
//! rate = 0.25
//! matrix = [1, 2, 3]   # arrays of int / float / bool / string scalars
//! names = [
//!     "a",             # arrays may span lines, trailing comma ok
//!     "b",
//! ]
//! ```
//!
//! Comments (`#`), blank lines, integer / float / bool / string scalars
//! and homogeneous-or-mixed scalar arrays. Anything else is a hard error
//! carrying `origin:line:` — both `lint.toml` and sweep specs gate CI, so
//! silent misparsing is worse than failing loudly. Nested arrays, inline
//! tables, dotted *keys*, datetimes and multi-line strings are outside
//! the subset by design.

use std::path::Path;

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// An integer literal.
    Int(i64),
    /// A float literal (has a `.` or exponent).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A quoted string.
    Str(String),
    /// An array of scalar values (possibly mixed types).
    List(Vec<TomlValue>),
}

impl TomlValue {
    /// The integer value (`None` on other variants).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            TomlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Any numeric variant as `f64` (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Int(i) => Some(*i as f64),
            TomlValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value (`None` on other variants).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value (`None` on other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements (`None` on other variants).
    pub fn as_list(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::List(l) => Some(l),
            _ => None,
        }
    }

    /// An all-strings array as owned strings (`None` when any element is
    /// not a string, or on non-arrays).
    pub fn string_list(&self) -> Option<Vec<String>> {
        let items = self.as_list()?;
        items
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }

    /// The variant name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Int(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "bool",
            TomlValue::Str(_) => "string",
            TomlValue::List(_) => "array",
        }
    }
}

/// One `[header]` (or `[[header]]`) section with its key/value entries in
/// document order.
#[derive(Debug, Clone)]
pub struct TomlTable {
    /// Dotted header path (`[experiment.grid]` → `["experiment", "grid"]`).
    pub path: Vec<String>,
    /// True for `[[array-of-tables]]` headers.
    pub array: bool,
    /// 1-based line number of the header, for diagnostics.
    pub line: usize,
    /// `key = value` entries, with the line each appeared on.
    pub entries: Vec<(String, TomlValue, usize)>,
}

impl TomlTable {
    /// The dotted header path as written (`a.b.c`).
    pub fn name(&self) -> String {
        self.path.join(".")
    }

    /// Looks up the last entry named `key`.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries
            .iter()
            .rev()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }
}

/// A parsed document: its tables in document order.
#[derive(Debug, Clone, Default)]
pub struct TomlDoc {
    /// Every `[section]` / `[[section]]` in order of appearance.
    pub tables: Vec<TomlTable>,
}

impl TomlDoc {
    /// Reads and parses `path`, using its file name as the error origin.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending `file:line` when the file
    /// is missing, unreadable, or outside the accepted subset.
    pub fn load(path: &Path) -> Result<TomlDoc, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let origin = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_else(|| path.display().to_string());
        TomlDoc::parse(&text, &origin)
    }

    /// Parses a document from a string; `origin` names it in errors
    /// (`origin:line: message`).
    ///
    /// # Errors
    ///
    /// Returns a `origin:line:` message on malformed input.
    pub fn parse(text: &str, origin: &str) -> Result<TomlDoc, String> {
        let mut doc = TomlDoc::default();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                doc.tables.push(parse_header(&line, origin, lineno)?);
                continue;
            }
            let Some(eq) = find_top_level_eq(&line) else {
                return Err(format!("{origin}:{lineno}: expected `key = value`"));
            };
            let key = parse_key(line[..eq].trim())
                .ok_or_else(|| format!("{origin}:{lineno}: bad key `{}`", line[..eq].trim()))?;
            let mut value = line[eq + 1..].trim().to_string();
            if value.is_empty() {
                return Err(format!("{origin}:{lineno}: missing value after `=`"));
            }
            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !brackets_balance(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("{origin}:{lineno}: unterminated array"));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let value = parse_value(&value)
                .ok_or_else(|| format!("{origin}:{lineno}: bad value `{value}`"))?;
            match doc.tables.last_mut() {
                Some(t) => t.entries.push((key, value, lineno)),
                None => {
                    return Err(format!("{origin}:{lineno}: key before any [section]"));
                }
            }
        }
        Ok(doc)
    }

    /// The tables whose full dotted name equals `name`, in order.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TomlTable> {
        self.tables.iter().filter(move |t| t.name() == name)
    }
}

/// Parses `[a.b]` / `[[a.b]]` headers into a path.
fn parse_header(line: &str, origin: &str, lineno: usize) -> Result<TomlTable, String> {
    let (inner, array) = if let Some(rest) = line.strip_prefix("[[") {
        let Some(inner) = rest.strip_suffix("]]") else {
            return Err(format!(
                "{origin}:{lineno}: unterminated [[section]] header"
            ));
        };
        (inner, true)
    } else if let Some(rest) = line.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(format!("{origin}:{lineno}: unterminated section header"));
        };
        (inner, false)
    } else {
        return Err(format!("{origin}:{lineno}: expected section header"));
    };
    // `split('.')` yields at least one segment, and `parse_key` rejects
    // the empty string, so `[]` and `[a..b]` both land in the error here.
    let mut path = Vec::new();
    for seg in inner.split('.') {
        let seg = parse_key(seg.trim())
            .ok_or_else(|| format!("{origin}:{lineno}: bad section name `{inner}`"))?;
        path.push(seg);
    }
    Ok(TomlTable {
        path,
        array,
        line: lineno,
        entries: Vec::new(),
    })
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the `=` separating key from value, skipping quoted keys.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Accepts `bare_key` or `"quoted key"`.
fn parse_key(raw: &str) -> Option<String> {
    if let Some(q) = raw.strip_prefix('"') {
        return q.strip_suffix('"').map(str::to_string);
    }
    let ok = !raw.is_empty()
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    ok.then(|| raw.to_string())
}

fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses a scalar (string / bool / int / float).
fn parse_scalar(raw: &str) -> Option<TomlValue> {
    let raw = raw.trim();
    if let Some(q) = raw.strip_prefix('"') {
        return q.strip_suffix('"').map(|s| TomlValue::Str(s.to_string()));
    }
    match raw {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Some(TomlValue::Int(i));
    }
    // Floats must look like numbers (not TOML datetimes or bare words):
    // digits with a fraction and/or exponent.
    if raw
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        if let Ok(x) = raw.parse::<f64>() {
            return Some(TomlValue::Float(x));
        }
    }
    None
}

fn parse_value(raw: &str) -> Option<TomlValue> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            // Scalars only inside arrays: nested arrays are outside the
            // subset and fail here (parse_scalar rejects `[`).
            items.push(parse_scalar(part)?);
        }
        return Some(TomlValue::List(items));
    }
    parse_scalar(raw)
}

/// Splits array contents on commas outside quotes.
fn split_array_items(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_of_every_type() {
        let doc = TomlDoc::parse(
            r#"
[cell]
count = 3
rate = 0.25
exp = 1e3
neg = -7
flag = true
off = false
name = "parser"
"#,
            "spec.toml",
        )
        .expect("parses");
        let t = &doc.tables[0];
        assert_eq!(t.get("count"), Some(&TomlValue::Int(3)));
        assert_eq!(t.get("rate"), Some(&TomlValue::Float(0.25)));
        assert_eq!(t.get("exp"), Some(&TomlValue::Float(1000.0)));
        assert_eq!(t.get("neg"), Some(&TomlValue::Int(-7)));
        assert_eq!(t.get("flag"), Some(&TomlValue::Bool(true)));
        assert_eq!(t.get("off"), Some(&TomlValue::Bool(false)));
        assert_eq!(t.get("name"), Some(&TomlValue::Str("parser".into())));
    }

    #[test]
    fn parses_arrays_of_tables_and_nested_headers() {
        let doc = TomlDoc::parse(
            r#"
[sweep]
name = "paper"

[[experiment]]
bin = "table_4_1"

[experiment.grid]
hosts = [10, 100]

[[experiment]]
bin = "abl_chaos"
"#,
            "spec.toml",
        )
        .expect("parses");
        let names: Vec<String> = doc.tables.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            ["sweep", "experiment", "experiment.grid", "experiment"]
        );
        let arrays: Vec<bool> = doc.tables.iter().map(|t| t.array).collect();
        assert_eq!(arrays, [false, true, false, true]);
        assert_eq!(doc.named("experiment").count(), 2);
        let grid = doc.named("experiment.grid").next().expect("grid table");
        assert_eq!(grid.path, ["experiment", "grid"]);
        assert_eq!(
            grid.get("hosts"),
            Some(&TomlValue::List(vec![
                TomlValue::Int(10),
                TomlValue::Int(100)
            ]))
        );
    }

    #[test]
    fn parses_mixed_and_multiline_matrices() {
        let doc = TomlDoc::parse(
            "[m]\nvals = [1, 2.5, true, \"x\"] # mixed\nlong = [\n  \"a\", # one\n  \"b\",\n]\n",
            "spec.toml",
        )
        .expect("parses");
        let t = &doc.tables[0];
        assert_eq!(
            t.get("vals"),
            Some(&TomlValue::List(vec![
                TomlValue::Int(1),
                TomlValue::Float(2.5),
                TomlValue::Bool(true),
                TomlValue::Str("x".into()),
            ]))
        );
        assert_eq!(
            t.get("long").and_then(TomlValue::string_list),
            Some(vec!["a".to_string(), "b".to_string()])
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(TomlValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(TomlValue::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(TomlValue::Bool(true).as_bool(), Some(true));
        assert_eq!(TomlValue::Str("s".into()).as_str(), Some("s"));
        assert_eq!(TomlValue::Int(3).as_str(), None);
        assert_eq!(
            TomlValue::List(vec![TomlValue::Int(1)]).string_list(),
            None,
            "non-string element"
        );
        assert_eq!(TomlValue::List(vec![]).type_name(), "array");
    }

    #[test]
    fn errors_carry_origin_and_line() {
        for (src, line, needle) in [
            ("[a\nx = 1\n", 1, "unterminated section"),
            ("[[a\n", 1, "unterminated [[section]] header"),
            ("x = 1\n", 1, "key before any [section]"),
            ("[s]\nnot a kv\n", 2, "expected `key = value`"),
            ("[s]\nx =\n", 2, "missing value"),
            ("[s]\nx = nope\n", 2, "bad value"),
            ("[s]\nx = [1,\n", 2, "unterminated array"),
            ("[s]\nx = [[1]]\n", 2, "bad value"),
            ("[s]\n%bad = 1\n", 2, "bad key"),
            ("[]\n", 1, "bad section name"),
            ("[a..b]\n", 1, "bad section name"),
        ] {
            let err = TomlDoc::parse(src, "spec.toml").expect_err(src);
            assert!(
                err.starts_with(&format!("spec.toml:{line}:")),
                "{src:?} → {err}"
            );
            assert!(err.contains(needle), "{src:?} → {err}");
        }
    }

    #[test]
    fn load_reports_missing_file() {
        let err = TomlDoc::load(Path::new("/nonexistent/spec.toml")).expect_err("missing");
        assert!(err.contains("cannot read"), "{err}");
    }
}
