//! AST-lite: an item/block-level parse over the [`crate::lexer`] token
//! stream.
//!
//! This is not a grammar-complete Rust parser — it recovers exactly the
//! structure the rule passes need, by single forward scans with bracket
//! depth tracking:
//!
//! * **test scopes** — token ranges covered by `#[cfg(test)]` /
//!   `#[test]` attributes and the item they decorate (attribute lists
//!   that span lines, stacked attributes, and inline placement all
//!   work, unlike the old line-based scanner);
//! * **enums** — name plus variant names and lines, for the
//!   exhaustive-dispatch audit;
//! * **fns** — name and body token range, so a pass can ask "does
//!   `dispatch` mention `Event::Frame`?" or run a local taint fixpoint;
//! * **match expressions** — arm pattern ranges, guards, and catch-all
//!   detection for the wildcard-arm rule.
//!
//! Every file is parsed once into a [`ParsedFile`] that all passes
//! share (the CI-budget requirement from ISSUE 10).

use crate::lexer::{self, Tok, TokKind};
use crate::scan::CleanLine;

/// One enum variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based source line of the variant name.
    pub line: usize,
}

/// An `enum` item.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
    /// Whether the enum sits in test scope.
    pub in_test: bool,
}

/// A `fn` item (free or method; nested fns are recorded too).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, braces included (`lo..hi`).
    /// Empty (`lo == hi`) for bodyless trait declarations.
    pub body: (usize, usize),
    /// Whether the fn sits in test scope.
    pub in_test: bool,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Token range of the pattern, guard excluded.
    pub pat: (usize, usize),
    /// Whether the arm carries an `if` guard.
    pub has_guard: bool,
    /// 1-based line of the pattern's first token.
    pub line: usize,
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// The arms, in order.
    pub arms: Vec<MatchArm>,
    /// Whether the match sits in test scope.
    pub in_test: bool,
}

impl MatchExpr {
    /// The unguarded catch-all arm (`_` or a plain binding), if any.
    pub fn catch_all<'a>(&'a self, toks: &[Tok]) -> Option<&'a MatchArm> {
        self.arms.iter().find(|a| {
            if a.has_guard || a.pat.1 - a.pat.0 != 1 {
                return false;
            }
            let t = &toks[a.pat.0];
            t.is_punct("_")
                || (t.kind == TokKind::Ident
                    && t.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_'))
        })
    }
}

/// One fully parsed source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Per-token test-scope flag, parallel to `toks`.
    pub tok_in_test: Vec<bool>,
    /// Blanked per-line view for the line-oriented rules.
    pub lines: Vec<CleanLine>,
    /// All `enum` items.
    pub enums: Vec<EnumDef>,
    /// All `fn` items.
    pub fns: Vec<FnDef>,
    /// All `match` expressions.
    pub matches: Vec<MatchExpr>,
}

impl ParsedFile {
    /// True when the token at `idx` is inside a test scope.
    pub fn in_test(&self, idx: usize) -> bool {
        self.tok_in_test.get(idx).copied().unwrap_or(false)
    }
}

/// Parses a whole source file.
pub fn parse(src: &str) -> ParsedFile {
    let lexed = lexer::lex(src);
    let toks = lexed.toks;
    let tok_in_test = mark_test_scopes(&toks);

    let mut line_test = vec![false; src.lines().count() + 2];
    for (t, &flag) in toks.iter().zip(&tok_in_test) {
        if flag && t.line < line_test.len() {
            line_test[t.line] = true;
        }
    }
    // A test item covers every line between its first and last token,
    // including blank/comment-only lines in between.
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut open: Option<usize> = None;
    for (t, &flag) in toks.iter().zip(&tok_in_test) {
        match (flag, open) {
            (true, None) => open = Some(t.line),
            (true, Some(_)) => {}
            (false, Some(s)) => {
                spans.push((s, t.line.saturating_sub(1)));
                open = None;
            }
            (false, None) => {}
        }
    }
    if let (Some(s), Some(last)) = (open, toks.last()) {
        spans.push((s, last.line));
    }
    for (s, e) in spans {
        let hi = e.min(line_test.len().saturating_sub(1));
        for l in line_test.iter_mut().take(hi + 1).skip(s) {
            *l = true;
        }
    }

    let lines: Vec<CleanLine> = lexed
        .blanked
        .lines()
        .enumerate()
        .map(|(i, text)| CleanLine {
            number: i + 1,
            text: text.to_string(),
            in_test: line_test.get(i + 1).copied().unwrap_or(false),
        })
        .collect();

    let mut pf = ParsedFile {
        toks,
        tok_in_test,
        lines,
        enums: Vec::new(),
        fns: Vec::new(),
        matches: Vec::new(),
    };
    collect_items(&mut pf);
    pf
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]` attributes and the
/// item each decorates (through any stacked attributes in between).
fn mark_test_scopes(toks: &[Tok]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (content_lo, after) = match bracket_extent(toks, i + 1) {
            Some(r) => r,
            None => break,
        };
        if !attr_is_test(&toks[content_lo..after - 1]) {
            i = after;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = after;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            match bracket_extent(toks, j + 1) {
                Some((_, a)) => j = a,
                None => break,
            }
        }
        // The decorated item: to the matching `}` of its first top-level
        // block, or to a `;` (e.g. `#[cfg(test)] mod tests;`).
        let mut depth = 0i64;
        let mut end = j;
        while end < toks.len() {
            let t = &toks[end];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 && t.text == "}" {
                            end += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end += 1;
                        break;
                    }
                    _ => {}
                }
            }
            end += 1;
        }
        for f in flags.iter_mut().take(end.min(toks.len())).skip(attr_start) {
            *f = true;
        }
        i = end;
    }
    flags
}

/// Decides whether attribute content marks test scope: `test`,
/// `cfg(test)`, `cfg(all(test, …))` — but not `cfg(not(test))`.
fn attr_is_test(content: &[Tok]) -> bool {
    let Some(first) = content.first() else {
        return false;
    };
    if first.is_ident("test") {
        return true;
    }
    if first.is_ident("cfg") {
        let has_not = content.iter().any(|t| t.is_ident("not"));
        let has_test = content.iter().any(|t| t.is_ident("test"));
        return has_test && !has_not;
    }
    false
}

/// Given `toks[open]` an opening bracket, returns
/// `(content_start, index_after_close)`.
fn bracket_extent(toks: &[Tok], open: usize) -> Option<(usize, usize)> {
    let close = match toks[open].text.as_str() {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return None,
    };
    let opens = toks[open].text.clone();
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == opens {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, k + 1));
                }
            }
        }
    }
    None
}

/// Matching-close index for *any* bracket nesting starting at `open`
/// (an index whose token is `{`, `(` or `[`), treating the three kinds
/// as one depth so `fn f() { g(&[1, {2}]) }` nests correctly.
pub fn block_end(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    toks.len()
}

fn collect_items(pf: &mut ParsedFile) {
    let mut enums = Vec::new();
    let mut fns = Vec::new();
    let mut matches = Vec::new();
    let mut i = 0usize;
    while i < pf.toks.len() {
        if pf.toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match pf.toks[i].text.as_str() {
            "enum" => {
                if let Some((def, next)) = parse_enum(pf, i) {
                    enums.push(def);
                    i = next;
                    continue;
                }
            }
            "fn" => {
                if let Some((def, next)) = parse_fn(pf, i) {
                    fns.push(def);
                    // Continue *inside* the body so nested matches and
                    // fns are found; only skip the signature.
                    i = next;
                    continue;
                }
            }
            "match" => {
                if let Some(m) = parse_match(pf, i) {
                    matches.push(m);
                }
            }
            _ => {}
        }
        i += 1;
    }
    pf.enums = enums;
    pf.fns = fns;
    pf.matches = matches;
}

/// Parses `enum Name { V1, V2(…), V3 { … } }` starting at the `enum`
/// keyword; returns the def and the index just past the closing brace.
fn parse_enum(pf: &ParsedFile, kw: usize) -> Option<(EnumDef, usize)> {
    let toks = &pf.toks;
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Find the body brace (skipping generics; `<` never hides a `{`).
    let mut open = kw + 2;
    while open < toks.len() && !toks[open].is_punct("{") {
        if toks[open].is_punct(";") {
            return None;
        }
        open += 1;
    }
    if open >= toks.len() {
        return None;
    }
    let end = block_end(toks, open);
    let mut variants = Vec::new();
    let mut k = open + 1;
    while k < end - 1 {
        let t = &toks[k];
        // Skip variant attributes.
        if t.is_punct("#") && k + 1 < end && toks[k + 1].is_punct("[") {
            if let Some((_, after)) = bracket_extent(toks, k + 1) {
                k = after;
                continue;
            }
        }
        if t.kind == TokKind::Ident {
            variants.push(Variant {
                name: t.text.clone(),
                line: t.line,
            });
            // Skip payload / discriminant to the `,` at variant depth.
            let mut j = k + 1;
            while j < end - 1 {
                let u = &toks[j];
                if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "{" | "(" | "[" => {
                            j = block_end(toks, j);
                            continue;
                        }
                        "," => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
    Some((
        EnumDef {
            name: name.text.clone(),
            line: toks[kw].line,
            variants,
            in_test: pf.in_test(kw),
        },
        end,
    ))
}

/// Parses a `fn` item starting at the keyword; returns the def and the
/// index of the body's first token (so nested items are still walked).
fn parse_fn(pf: &ParsedFile, kw: usize) -> Option<(FnDef, usize)> {
    let toks = &pf.toks;
    let name = toks.get(kw + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Scan past signature/generics/where-clause to `{` or `;` at
    // bracket depth 0 (parens and brackets of the parameter list nest).
    let mut depth = 0i64;
    let mut k = kw + 2;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let end = block_end(toks, k);
                    return Some((
                        FnDef {
                            name: name.text.clone(),
                            line: toks[kw].line,
                            body: (k, end),
                            in_test: pf.in_test(kw),
                        },
                        k + 1,
                    ));
                }
                ";" if depth == 0 => {
                    return Some((
                        FnDef {
                            name: name.text.clone(),
                            line: toks[kw].line,
                            body: (k, k),
                            in_test: pf.in_test(kw),
                        },
                        k + 1,
                    ));
                }
                _ => {}
            }
        }
        k += 1;
    }
    None
}

/// Parses a `match` expression starting at the keyword.
fn parse_match(pf: &ParsedFile, kw: usize) -> Option<MatchExpr> {
    let toks = &pf.toks;
    // Scrutinee runs to the first `{` at depth 0 (struct literals are
    // not allowed in match scrutinees without parens, so it is the body).
    let mut depth = 0i64;
    let mut open = kw + 1;
    while open < toks.len() {
        let t = &toks[open];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        open += 1;
    }
    if open >= toks.len() || open == kw + 1 {
        return None;
    }
    let end = block_end(toks, open);
    let mut arms = Vec::new();
    let mut k = open + 1;
    while k < end.saturating_sub(1) {
        // Pattern: tokens to `=>` at arm depth; an `if` at that depth
        // starts the guard.
        let pat_lo = k;
        let mut pat_hi = k;
        let mut has_guard = false;
        let mut d = 0i64;
        let mut j = k;
        let mut found = false;
        while j < end - 1 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => d += 1,
                    "}" | ")" | "]" => d -= 1,
                    "=>" if d == 0 => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            } else if t.is_ident("if") && d == 0 && !has_guard {
                has_guard = true;
                pat_hi = j;
            }
            j += 1;
        }
        if !found {
            break;
        }
        if !has_guard {
            pat_hi = j;
        }
        if pat_hi > pat_lo {
            arms.push(MatchArm {
                pat: (pat_lo, pat_hi),
                has_guard,
                line: toks[pat_lo].line,
            });
        }
        // Arm body: a block (plus optional `,`) or tokens to `,` at
        // arm depth.
        k = j + 1;
        if k < end - 1 && toks[k].is_punct("{") {
            k = block_end(&pf.toks, k);
            if k < end - 1 && pf.toks[k].is_punct(",") {
                k += 1;
            }
            continue;
        }
        let mut d = 0i64;
        while k < end - 1 {
            let t = &pf.toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => {
                        k = block_end(&pf.toks, k);
                        continue;
                    }
                    "}" | ")" | "]" => d -= 1,
                    "," if d == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    Some(MatchExpr {
        line: pf.toks[kw].line,
        arms,
        in_test: pf.in_test(kw),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_enum_variants_with_payloads() {
        let pf = parse(
            "pub enum Ev { A, B(u32), C { x: u8, y: u8 }, #[allow(dead_code)] D = 4, }",
        );
        assert_eq!(pf.enums.len(), 1);
        let names: Vec<&str> = pf.enums[0].variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "D"]);
    }

    #[test]
    fn finds_fns_and_bodies() {
        let pf = parse("fn outer(a: &[u8]) -> u32 { fn inner() {} inner(); 3 }");
        let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let outer = &pf.fns[0];
        assert!(outer.body.1 > outer.body.0);
    }

    #[test]
    fn match_arms_guards_and_catch_all() {
        let pf = parse(
            "fn f(e: Ev) -> u32 { match e { Ev::A => 1, Ev::B(x) if x > 2 => x, other => 0, } }",
        );
        assert_eq!(pf.matches.len(), 1);
        let m = &pf.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(m.arms[1].has_guard);
        let ca = m.catch_all(&pf.toks).expect("catch-all");
        assert_eq!(pf.toks[ca.pat.0].text, "other");
    }

    #[test]
    fn no_catch_all_when_exhaustive() {
        let pf = parse("fn f(e: Ev) -> u32 { match e { Ev::A => 1, Ev::B => 2 } }");
        assert!(pf.matches[0].catch_all(&pf.toks).is_none());
    }

    #[test]
    fn struct_pattern_arms_parse() {
        let pf = parse(
            "fn f(e: Ev) { match e { Ev::C { x, .. } => go(x), Ev::A | Ev::B(_) => {} _ => {} } }",
        );
        let m = &pf.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(m.catch_all(&pf.toks).is_some());
    }

    #[test]
    fn cfg_test_marks_tokens_and_lines() {
        let pf = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n");
        let flags: Vec<bool> = pf.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
        assert!(pf.fns.iter().any(|f| f.name == "t" && f.in_test));
        assert!(pf.fns.iter().any(|f| f.name == "lib2" && !f.in_test));
    }

    #[test]
    fn multiline_and_stacked_attributes_mark_test_scope() {
        // The old line scanner missed both of these shapes.
        let pf = parse("#[cfg(\n    test\n)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(pf.fns.iter().all(|f| f.in_test));
        let pf = parse("#[test]\n#[allow(dead_code)]\nfn t() { x(); }\nfn lib() {}\n");
        assert!(pf.fns.iter().any(|f| f.name == "t" && f.in_test));
        assert!(pf.fns.iter().any(|f| f.name == "lib" && !f.in_test));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let pf = parse("#[cfg(not(test))]\nfn lib() {}\n");
        assert!(pf.fns.iter().all(|f| !f.in_test));
    }

    #[test]
    fn inline_test_attr_marks_single_line() {
        let pf = parse("#[cfg(test)] mod tests { fn t() {} }\nfn lib() {}\n");
        assert!(pf.lines[0].in_test);
        assert!(!pf.lines[1].in_test);
    }
}
