//! `vlint` CLI: `cargo run -p vlint [-- --json] [--root PATH]`.
//!
//! Exits 0 when the workspace is clean, 1 on violations, 2 on usage or
//! configuration errors. `--json` additionally writes the
//! `results/vlint.json` artifact CI uploads next to the bench and chaos
//! results.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--json" => json = true,
            "--json-path" => match args.next() {
                Some(p) => {
                    json = true;
                    json_path = Some(PathBuf::from(p));
                }
                None => return usage("--json-path needs a path"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "vlint — workspace determinism, layering, dispatch & schema auditor\n\n\
                     USAGE: vlint [--root PATH] [--json] [--json-path FILE] [--quiet]\n\n\
                     Exit codes: 0 clean, 1 violations, 2 config/usage error.\n\
                     Rules and allowlists live in lint.toml at the workspace root."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_root) {
        Some(r) => r,
        None => {
            eprintln!("vlint: no lint.toml found walking up from the current directory");
            return ExitCode::from(2);
        }
    };

    let report = match vlint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vlint: {e}");
            return ExitCode::from(2);
        }
    };

    if !quiet || !report.is_clean() {
        print!("{}", report.render_text());
    }
    if json {
        let path = json_path.unwrap_or_else(|| root.join("results").join("vlint.json"));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("vlint: cannot create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("vlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walks up from the current directory to the nearest `lint.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("vlint: {msg} (try --help)");
    ExitCode::from(2)
}
