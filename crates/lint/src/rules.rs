//! The rule families: determinism, layering, panic budget, lossy casts,
//! bench artifacts, determinism taint, exhaustive dispatch, and schema
//! drift.
//!
//! Each source file is read and parsed **once** into a
//! [`crate::ast::ParsedFile`] (tokens + items + cleaned lines); every
//! pass — the v1 line rules and the v2 flow passes — runs off that
//! shared parse. Scope is configured by `lint.toml`:
//!
//! * determinism + panic budget + determinism taint run over
//!   `library_crates` `src/` trees (test scopes excluded — tests may
//!   hash, unwrap, and read clocks freely);
//! * the lossy-cast rule runs over `cast_crates` (the ones doing
//!   `SimTime`/byte arithmetic);
//! * layering runs over every crate in the `[layering]` DAG;
//! * the dispatch and schema audits run over the whole scanned set,
//!   with library-only emission collection for schema.
//!
//! Ratchetable rules (`panic-budget`, `lossy-cast`, `dispatch-wildcard`,
//! `det-taint`) share one mechanism: per-file allowances under
//! `[allow.<rule-id>]`, and a `ratchet-stale` violation whenever an
//! allowance exceeds reality — budgets may only shrink.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::ast::ParsedFile;
use crate::config::Config;
use crate::report::{Report, Violation};
use crate::scan::{self, word_positions, CleanLine};
use crate::{dispatch, schema, taint};

/// A discovered workspace member.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Workspace-relative directory ("" for the root package).
    pub rel_dir: String,
    /// Absolute path to the crate directory.
    pub dir: PathBuf,
    /// `[dependencies]` entries as `(name, Cargo.toml line)`.
    pub deps: Vec<(String, usize)>,
}

impl CrateInfo {
    fn manifest_rel(&self) -> String {
        if self.rel_dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", self.rel_dir)
        }
    }
}

/// Discovers the root package (if any) plus every `crates/*` member.
///
/// # Errors
///
/// Returns a message when the root manifest is missing or a member
/// manifest cannot be read.
pub fn discover_crates(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
    if let Some(info) = parse_manifest(&text, "", root) {
        out.push(info);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        entries.sort();
        for dir in entries {
            let manifest = dir.join("Cargo.toml");
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            let base = dir.file_name().map(|s| s.to_string_lossy().to_string());
            let rel = format!("crates/{}", base.unwrap_or_default());
            if let Some(info) = parse_manifest(&text, &rel, &dir) {
                out.push(info);
            }
        }
    }
    Ok(out)
}

/// Extracts `[package] name` and `[dependencies]` keys from a manifest.
///
/// Returns `None` for virtual manifests (no `[package]` section). This is
/// a line-level parse: good enough for the workspace's own manifests,
/// which the fmt job keeps in conventional shape.
fn parse_manifest(text: &str, rel_dir: &str, dir: &Path) -> Option<CrateInfo> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            // `[dependencies.foo]` table headers declare a dep too.
            if let Some(dep) = section.strip_prefix("dependencies.") {
                deps.push((dep.trim_matches('"').to_string(), idx + 1));
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"');
        match section.as_str() {
            "package" if key == "name" => {
                let v = line[eq + 1..].trim().trim_matches('"');
                name = Some(v.to_string());
            }
            "dependencies" => {
                // `vsim.workspace = true` and `vsim = { … }` both name the
                // dep before the first `.` or `=`.
                let dep = key.split('.').next().unwrap_or(key).trim();
                if !dep.is_empty() {
                    deps.push((dep.to_string(), idx + 1));
                }
            }
            _ => {}
        }
    }
    Some(CrateInfo {
        name: name?,
        rel_dir: rel_dir.to_string(),
        dir: dir.to_path_buf(),
        deps,
    })
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Identifier form of a package name (`v-system` → `v_system`).
fn ident(name: &str) -> String {
    name.replace('-', "_")
}

/// True when `line` references crate `krate` as a path root (`krate::…`)
/// or plainly re-exports it (`pub use krate;`).
fn references_crate(line: &str, krate: &str) -> bool {
    let trimmed = line.trim_start();
    let is_use = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
    for p in word_positions(line, krate) {
        let rest = line[p + krate.len()..].trim_start();
        if rest.starts_with("::") || (is_use && rest.starts_with(';')) {
            return true;
        }
    }
    false
}

/// Per-rule observed site counts, for the stale-allowance check.
type RatchetSeen = BTreeMap<&'static str, BTreeMap<String, usize>>;

/// Runs every rule family over the discovered crates.
///
/// # Errors
///
/// Returns a message when a source file cannot be read, or when a crate
/// on disk has no `[layering]` entry (the DAG must stay exhaustive).
pub fn check_workspace(root: &Path, cfg: &Config, crates: &[CrateInfo]) -> Result<Report, String> {
    let mut report = Report::default();
    // All DAG names, in identifier form, for the use-statement scan.
    let known: Vec<(String, String)> = cfg.layering.keys().map(|k| (k.clone(), ident(k))).collect();
    let mut seen: RatchetSeen = BTreeMap::new();
    // The parse cache: every file is lexed and item-parsed exactly once;
    // line rules, the taint pass, and the dispatch/schema audits all run
    // off this shared view.
    let mut files: BTreeMap<String, ParsedFile> = BTreeMap::new();
    let mut lib_files: BTreeSet<String> = BTreeSet::new();

    for krate in crates {
        report.crates_audited += 1;
        let Some(allowed) = cfg.layering.get(&krate.name) else {
            return Err(format!(
                "lint.toml: crate `{}` ({}) has no [layering] entry — add one to keep the DAG exhaustive",
                krate.name,
                krate.manifest_rel(),
            ));
        };

        // ---- layering-dep: Cargo.toml dependencies vs. the intended DAG.
        for (dep, line) in &krate.deps {
            if !allowed.iter().any(|a| a == dep) {
                report.violations.push(Violation {
                    rule: "layering-dep",
                    file: krate.manifest_rel(),
                    line: *line,
                    message: format!(
                        "crate `{}` must not depend on `{dep}` (allowed: [{}])",
                        krate.name,
                        allowed.join(", "),
                    ),
                    hint: "keep the dependency DAG intentional: move shared code down a layer \
                           or update [layering] in lint.toml if the architecture truly changed",
                });
            }
        }

        let is_library = cfg.library_crates.contains(&krate.name);
        let is_cast_crate = cfg.cast_crates.contains(&krate.name);
        let self_ident = ident(&krate.name);

        for file in rust_files(&krate.dir.join("src")) {
            report.files_scanned += 1;
            let rel = rel_path(root, &file);
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let pf = crate::ast::parse(&src);
            let lines = &pf.lines;

            // ---- layering-use: path references to crates outside the DAG.
            for line in lines {
                for (dep_name, dep_ident) in &known {
                    if *dep_ident == self_ident {
                        continue;
                    }
                    if references_crate(&line.text, dep_ident)
                        && !allowed.iter().any(|a| a == dep_name)
                    {
                        report.violations.push(Violation {
                            rule: "layering-use",
                            file: rel.clone(),
                            line: line.number,
                            message: format!(
                                "crate `{}` references `{dep_ident}::…` but may only use [{}]",
                                krate.name,
                                allowed.join(", "),
                            ),
                            hint: "this import crosses the layering DAG; route the dependency \
                                   through a lower layer or fix the design",
                        });
                    }
                }
            }

            // ---- bench-emit: experiment binaries must leave an artifact.
            if krate.name == "vbench" && rel.starts_with("crates/bench/src/bin/") {
                check_bench_emit(lines, &rel, cfg, &mut report);
            }

            let det_exempt = cfg.determinism_allow.contains(&rel);
            if is_library && !det_exempt {
                check_determinism(lines, &rel, &mut report);
                // ---- det-taint: host time flowing into the engine.
                let sites = taint::analyze(&pf, &cfg.taint.sources, &cfg.taint.sinks);
                let n = report_taint(&sites, &rel, cfg, &mut report);
                seen.entry("det-taint").or_default().insert(rel.clone(), n);
            }
            if is_library {
                let n = count_panic_sites(lines, &rel, cfg, &mut report);
                seen.entry("panic-budget")
                    .or_default()
                    .insert(rel.clone(), n);
                lib_files.insert(rel.clone());
            }
            if is_cast_crate {
                let n = count_cast_sites(lines, &rel, cfg, &mut report);
                seen.entry("lossy-cast").or_default().insert(rel.clone(), n);
            }

            files.insert(rel, pf);
        }
    }

    // ---- dispatch audit: exhaustive variant coverage + wildcard arms.
    let mut wildcard_sites: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    dispatch::check(&files, cfg, &mut report, &mut wildcard_sites);
    if !cfg.dispatch.is_empty() {
        for rel in files.keys() {
            let sites = wildcard_sites.get(rel).cloned().unwrap_or_default();
            let n = report_wildcards(&sites, rel, cfg, &mut report);
            seen.entry("dispatch-wildcard")
                .or_default()
                .insert(rel.clone(), n);
        }
    }

    // ---- schema audit: emitted names vs. docs, sweeps, and tests.
    schema::check(&files, &lib_files, root, cfg, &mut report);

    // ---- stale allowances: the budgets may only shrink, so an allowance
    // above the actual count (or naming a vanished file) is itself an
    // error — it would let regressions creep back in unnoticed.
    stale_allowances(cfg, &seen, &mut report);

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// The `bench-emit` rule: every experiment binary must route results
/// through `vbench::emit` / `emit_full`, so each run leaves the
/// machine-readable artifact the `vrun` cache and the doc generator
/// consume. Gates and meta-tools opt out via `[bench] emit_exempt`.
fn check_bench_emit(lines: &[CleanLine], rel: &str, cfg: &Config, report: &mut Report) {
    let stem = rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel);
    if cfg.bench_emit_exempt.iter().any(|e| e == stem) {
        return;
    }
    let calls_emit = lines.iter().any(|line| {
        if line.in_test {
            return false;
        }
        ["emit", "emit_full"].iter().any(|name| {
            word_positions(&line.text, name)
                .any(|p| line.text[p + name.len()..].trim_start().starts_with('('))
        })
    });
    if !calls_emit {
        report.violations.push(Violation {
            rule: "bench-emit",
            file: rel.to_string(),
            line: 1,
            message: format!(
                "experiment binary `{stem}` never calls vbench::emit/emit_full — it leaves no \
                 machine-readable artifact",
            ),
            hint: "route the final results through vbench::emit so the vrun cache and doc \
                   generator can consume them; a gate or meta-tool belongs in [bench] \
                   emit_exempt in lint.toml",
        });
    }
}

/// The `det-*` family: hash ordering, wall-clock time, threads, ambient
/// randomness.
fn check_determinism(lines: &[CleanLine], rel: &str, report: &mut Report) {
    for line in lines {
        if line.in_test {
            continue;
        }
        let t = &line.text;
        for word in ["HashMap", "HashSet", "RandomState"] {
            if scan::has_word(t, word) {
                report.violations.push(Violation {
                    rule: "det-hash",
                    file: rel.to_string(),
                    line: line.number,
                    message: format!(
                        "`{word}` in library code — hash iteration order is nondeterministic",
                    ),
                    hint: "use BTreeMap/BTreeSet: unordered iteration breaks identical-trace \
                           replay (a HashMap once picked different migration guests per run)",
                });
            }
        }
        for word in ["Instant", "SystemTime"] {
            if scan::has_word(t, word) {
                report.violations.push(Violation {
                    rule: "det-time",
                    file: rel.to_string(),
                    line: line.number,
                    message: format!(
                        "`{word}` in library code — wall-clock time is nondeterministic"
                    ),
                    hint: "simulation code must read time from vsim::SimTime via the event \
                           engine, never from the host clock",
                });
            }
        }
        if t.contains("thread::spawn") || t.contains("std::thread") {
            report.violations.push(Violation {
                rule: "det-thread",
                file: rel.to_string(),
                line: line.number,
                message: "OS thread use in library code — scheduling order is nondeterministic"
                    .to_string(),
                hint: "the simulation is single-threaded by design; express concurrency as \
                       events on the vsim engine",
            });
        }
        let has_rand_path =
            word_positions(t, "rand").any(|p| t[p + "rand".len()..].trim_start().starts_with("::"));
        if has_rand_path || scan::has_word(t, "thread_rng") || scan::has_word(t, "getrandom") {
            report.violations.push(Violation {
                rule: "det-rand",
                file: rel.to_string(),
                line: line.number,
                message: "ambient randomness in library code".to_string(),
                hint: "draw randomness only from the seeded vsim::rng generators so runs \
                       replay bit-for-bit",
            });
        }
    }
}

/// Counts `unwrap()`/`expect(`/`panic!` sites and reports overruns.
fn count_panic_sites(lines: &[CleanLine], rel: &str, cfg: &Config, report: &mut Report) -> usize {
    let mut sites: Vec<(usize, &'static str)> = Vec::new();
    for line in lines {
        if line.in_test {
            continue;
        }
        let t = &line.text;
        for _ in 0..t.matches(".unwrap()").count() {
            sites.push((line.number, ".unwrap()"));
        }
        for _ in 0..t.matches(".expect(").count() {
            sites.push((line.number, ".expect(…)"));
        }
        for p in word_positions(t, "panic") {
            if t[p + "panic".len()..].starts_with('!') {
                sites.push((line.number, "panic!"));
            }
        }
    }
    let allowed = cfg.allowance("panic-budget", rel);
    let total = sites.len();
    for (line, token) in sites.iter().skip(allowed) {
        report.violations.push(Violation {
            rule: "panic-budget",
            file: rel.to_string(),
            line: *line,
            message: format!(
                "`{token}` — {total} panic site(s) in non-test code exceed the file's allowance of {allowed}",
            ),
            hint: "return Result/Option or handle the case; the checked-in [allow.panic-budget] \
                   ratchet in lint.toml may only shrink",
        });
    }
    total
}

/// Counts narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) and reports
/// overruns against the `[allow.lossy-cast]` allowances.
fn count_cast_sites(lines: &[CleanLine], rel: &str, cfg: &Config, report: &mut Report) -> usize {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let mut sites: Vec<usize> = Vec::new();
    for line in lines {
        if line.in_test {
            continue;
        }
        let t = &line.text;
        for p in word_positions(t, "as") {
            let rest = t[p + 2..].trim_start();
            for target in NARROW {
                if let Some(after) = rest.strip_prefix(target) {
                    let end_ok = !after
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    if end_ok {
                        sites.push(line.number);
                    }
                }
            }
        }
    }
    let allowed = cfg.allowance("lossy-cast", rel);
    let total = sites.len();
    for line in sites.iter().skip(allowed) {
        report.violations.push(Violation {
            rule: "lossy-cast",
            file: rel.to_string(),
            line: *line,
            message: format!(
                "narrowing `as` cast — {total} site(s) exceed the file's allowance of {allowed}",
            ),
            hint: "use u64 arithmetic or TryFrom: silently truncating SimTime or byte counts \
                   corrupts simulated time; if provably safe, bump [allow.lossy-cast] in \
                   lint.toml with a comment",
        });
    }
    total
}

/// Reports `det-taint` sites past the file's allowance; returns the count.
fn report_taint(
    sites: &[taint::TaintSite],
    rel: &str,
    cfg: &Config,
    report: &mut Report,
) -> usize {
    let allowed = cfg.allowance("det-taint", rel);
    let total = sites.len();
    for site in sites.iter().skip(allowed) {
        report.violations.push(Violation {
            rule: "det-taint",
            file: rel.to_string(),
            line: site.line,
            message: format!(
                "host-derived value `{}` flows into `{}(…)` — {total} tainted sink(s) exceed \
                 the file's allowance of {allowed}",
                site.evidence, site.sink,
            ),
            hint: "values built from the host clock or environment must never reach the event \
                   engine, payloads, or samples; derive them from SimTime, or record a \
                   deliberate exception in [allow.det-taint]",
        });
    }
    total
}

/// Reports `dispatch-wildcard` sites past the file's allowance.
fn report_wildcards(sites: &[usize], rel: &str, cfg: &Config, report: &mut Report) -> usize {
    let allowed = cfg.allowance("dispatch-wildcard", rel);
    let total = sites.len();
    for line in sites.iter().skip(allowed) {
        report.violations.push(Violation {
            rule: "dispatch-wildcard",
            file: rel.to_string(),
            line: *line,
            message: format!(
                "unguarded catch-all arm over a watched enum — {total} site(s) exceed the \
                 file's allowance of {allowed}",
            ),
            hint: "spell out the remaining variants so new ones fail loudly; a deliberate \
                   residual wildcard belongs in [allow.dispatch-wildcard] with a comment",
        });
    }
    total
}

/// Flags allowances that exceed reality (or name files that were never
/// scanned by their rule): every budget is a ratchet and may only move
/// down.
fn stale_allowances(cfg: &Config, seen: &RatchetSeen, report: &mut Report) {
    for (rule, allow) in &cfg.allow {
        let counts = seen.get(rule.as_str());
        for (file, &allowance) in allow {
            match counts.and_then(|m| m.get(file)) {
                Some(&actual) if actual < allowance => {
                    report.violations.push(Violation {
                        rule: "ratchet-stale",
                        file: file.clone(),
                        line: 0,
                        message: format!(
                            "[allow.{rule}] allowance {allowance} exceeds the actual count \
                             {actual} — ratchet it down",
                        ),
                        hint: "tighten the entry in lint.toml to match reality so the budget \
                               cannot silently regrow",
                    });
                }
                None => {
                    report.violations.push(Violation {
                        rule: "ratchet-stale",
                        file: file.clone(),
                        line: 0,
                        message: format!(
                            "[allow.{rule}] names a file the rule never scanned (moved, \
                             deleted, or out of the rule's scope)",
                        ),
                        hint: "remove or update the stale entry in lint.toml",
                    });
                }
                Some(_) => {}
            }
        }
    }
}
