//! `lint.toml` loading, on top of the shared [`crate::toml`] reader.
//!
//! The auditor is dependency-free, so the workspace hand-rolls its own
//! small TOML-subset parser (the same spirit as `vsim::json`). That
//! parser started here and now lives in [`crate::toml`], where `vrun`'s
//! sweep specs share it; this module keeps the `lint.toml`-specific
//! schema: which sections exist, which value types they take, and the
//! validation that makes a bad config a loud CI failure instead of a
//! silently skipped rule.

use std::collections::BTreeMap;
use std::path::Path;

use crate::toml::{TomlDoc, TomlValue};

/// The full `lint.toml` configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose `src/` trees are subject to the determinism and
    /// panic-budget rules (everything simulation-facing).
    pub library_crates: Vec<String>,
    /// Crates whose `src/` trees are subject to the lossy-cast rule
    /// (the ones doing `SimTime` / byte-count arithmetic).
    pub cast_crates: Vec<String>,
    /// Intended dependency DAG: crate name → exhaustive list of crates it
    /// may depend on. Every discovered crate must have an entry.
    pub layering: BTreeMap<String, Vec<String>>,
    /// Workspace-relative file paths exempt from the determinism rules
    /// (e.g. the bench harness timing real wall-clock runs).
    pub determinism_allow: Vec<String>,
    /// Per-file panic-site allowances (`unwrap()`/`expect(`/`panic!`).
    /// Files absent from the map have an allowance of zero.
    pub panic_allow: BTreeMap<String, usize>,
    /// Per-file narrowing-cast allowances for `cast_crates`.
    pub cast_allow: BTreeMap<String, usize>,
    /// Bench binaries (file stems under `crates/bench/src/bin/`) exempt
    /// from the `bench-emit` rule — gates and meta-tools that do not
    /// produce experiment artifacts.
    pub bench_emit_exempt: Vec<String>,
}

impl Config {
    /// Loads and validates `root/lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when the file is
    /// missing, unreadable, or outside the accepted TOML subset.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text)
    }

    /// Parses a `lint.toml` document from a string.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = TomlDoc::parse(text, "lint.toml")?;
        let mut cfg = Config::default();
        for table in &doc.tables {
            let name = table.name();
            if table.array {
                return Err(format!(
                    "lint.toml:{}: [[{name}]] array tables are not used here",
                    table.line
                ));
            }
            match name.as_str() {
                "workspace" => {
                    for (k, v, line) in &table.entries {
                        let list = string_list(v, line, "workspace", k)?;
                        match k.as_str() {
                            "library_crates" => cfg.library_crates = list,
                            "cast_crates" => cfg.cast_crates = list,
                            _ => {
                                return Err(format!(
                                    "lint.toml:{line}: unknown [workspace] key `{k}`"
                                ))
                            }
                        }
                    }
                }
                "layering" => {
                    for (k, v, line) in &table.entries {
                        cfg.layering
                            .insert(k.clone(), string_list(v, line, "layering", k)?);
                    }
                }
                "determinism" => {
                    for (k, v, line) in &table.entries {
                        match k.as_str() {
                            "allow" => {
                                cfg.determinism_allow = string_list(v, line, "determinism", k)?;
                            }
                            _ => {
                                return Err(format!(
                                    "lint.toml:{line}: unknown [determinism] key `{k}`"
                                ))
                            }
                        }
                    }
                }
                "bench" => {
                    for (k, v, line) in &table.entries {
                        match k.as_str() {
                            "emit_exempt" => {
                                cfg.bench_emit_exempt = string_list(v, line, "bench", k)?;
                            }
                            _ => {
                                return Err(format!("lint.toml:{line}: unknown [bench] key `{k}`"))
                            }
                        }
                    }
                }
                "panics" | "casts" => {
                    let map = if name == "panics" {
                        &mut cfg.panic_allow
                    } else {
                        &mut cfg.cast_allow
                    };
                    for (k, v, line) in &table.entries {
                        let Some(n) = v.as_int() else {
                            return Err(format!(
                                "lint.toml:{line}: [{name}] `{k}` must be an integer"
                            ));
                        };
                        if n < 0 {
                            return Err(format!(
                                "lint.toml:{line}: [{name}] `{k}` must be non-negative"
                            ));
                        }
                        map.insert(k.clone(), usize::try_from(n).unwrap_or(usize::MAX));
                    }
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{}: unknown section [{name}]",
                        table.line
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Requires `v` to be an all-strings array.
fn string_list(
    v: &TomlValue,
    line: &usize,
    section: &str,
    key: &str,
) -> Result<Vec<String>, String> {
    v.string_list()
        .ok_or_else(|| format!("lint.toml:{line}: [{section}] `{key}` must be a list of strings"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[workspace]
library_crates = ["vsim", "vnet"] # trailing comment
cast_crates = [
    "vsim",
    "vnet",
]

[layering]
vsim = []
vnet = ["vsim"]

[determinism]
allow = ["crates/bench/src/lib.rs"]

[bench]
emit_exempt = ["bench_regress"]

[panics]
"crates/sim/src/engine.rs" = 2

[casts]
"crates/sim/src/metrics.rs" = 6
"#,
        )
        .unwrap();
        assert_eq!(cfg.library_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.cast_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.layering["vnet"], vec!["vsim"]);
        assert_eq!(cfg.layering["vsim"], Vec::<String>::new());
        assert_eq!(cfg.determinism_allow, vec!["crates/bench/src/lib.rs"]);
        assert_eq!(cfg.bench_emit_exempt, vec!["bench_regress"]);
        assert_eq!(cfg.panic_allow["crates/sim/src/engine.rs"], 2);
        assert_eq!(cfg.cast_allow["crates/sim/src/metrics.rs"], 6);
    }

    #[test]
    fn rejects_unknown_section() {
        assert!(Config::parse("[mystery]\nx = 1\n").is_err());
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        for (src, line) in [
            ("[workspace]\nnope = []\n", 2),
            ("[determinism]\nnope = []\n", 2),
            ("[bench]\nnope = []\n", 2),
        ] {
            let err = Config::parse(src).expect_err(src);
            assert!(err.contains(&format!("lint.toml:{line}")), "{err}");
        }
    }

    #[test]
    fn rejects_wrong_value_types() {
        assert!(Config::parse("[workspace]\nlibrary_crates = 3\n").is_err());
        assert!(Config::parse("[layering]\nvsim = \"vnet\"\n").is_err());
        assert!(Config::parse("[layering]\nvsim = [1]\n").is_err());
        assert!(Config::parse("[panics]\n\"a.rs\" = \"two\"\n").is_err());
        assert!(Config::parse("[bench]\nemit_exempt = [true]\n").is_err());
    }

    #[test]
    fn rejects_negative_allowance() {
        assert!(Config::parse("[panics]\n\"a.rs\" = -1\n").is_err());
    }

    #[test]
    fn rejects_key_outside_section() {
        assert!(Config::parse("x = 1\n").is_err());
    }

    #[test]
    fn rejects_array_of_tables() {
        assert!(Config::parse("[[panics]]\n\"a.rs\" = 1\n").is_err());
    }
}
