//! `lint.toml` loading: a minimal TOML-subset parser.
//!
//! The auditor is dependency-free, so this module hand-rolls the small
//! config reader it needs (the same spirit as `vsim::json`). The accepted
//! subset is exactly what `lint.toml` uses:
//!
//! ```toml
//! [section]
//! bare_key = 3
//! "quoted/key.rs" = 2
//! list = ["a", "b"]   # arrays of strings, may span lines
//! ```
//!
//! Comments (`#`), blank lines, integer / string / string-array values.
//! Anything else is a hard error: the config gates CI, so silent
//! misparsing is worse than failing loudly.

use std::collections::BTreeMap;
use std::path::Path;

/// One parsed value from `lint.toml`.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// An integer literal.
    Int(i64),
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
}

/// A parsed section: ordered key → value pairs.
pub type Section = Vec<(String, TomlValue)>;

/// The full `lint.toml` configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose `src/` trees are subject to the determinism and
    /// panic-budget rules (everything simulation-facing).
    pub library_crates: Vec<String>,
    /// Crates whose `src/` trees are subject to the lossy-cast rule
    /// (the ones doing `SimTime` / byte-count arithmetic).
    pub cast_crates: Vec<String>,
    /// Intended dependency DAG: crate name → exhaustive list of crates it
    /// may depend on. Every discovered crate must have an entry.
    pub layering: BTreeMap<String, Vec<String>>,
    /// Workspace-relative file paths exempt from the determinism rules
    /// (e.g. the bench harness timing real wall-clock runs).
    pub determinism_allow: Vec<String>,
    /// Per-file panic-site allowances (`unwrap()`/`expect(`/`panic!`).
    /// Files absent from the map have an allowance of zero.
    pub panic_allow: BTreeMap<String, usize>,
    /// Per-file narrowing-cast allowances for `cast_crates`.
    pub cast_allow: BTreeMap<String, usize>,
}

impl Config {
    /// Loads and validates `root/lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when the file is
    /// missing, unreadable, or outside the accepted TOML subset.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text)
    }

    /// Parses a `lint.toml` document from a string.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let sections = parse_sections(text)?;
        let mut cfg = Config::default();
        for (name, entries) in &sections {
            match name.as_str() {
                "workspace" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("library_crates", TomlValue::List(l)) => {
                                cfg.library_crates = l.clone();
                            }
                            ("cast_crates", TomlValue::List(l)) => cfg.cast_crates = l.clone(),
                            _ => return Err(format!("lint.toml: unknown [workspace] key `{k}`")),
                        }
                    }
                }
                "layering" => {
                    for (k, v) in entries {
                        let TomlValue::List(l) = v else {
                            return Err(format!("lint.toml: [layering] `{k}` must be a list"));
                        };
                        cfg.layering.insert(k.clone(), l.clone());
                    }
                }
                "determinism" => {
                    for (k, v) in entries {
                        match (k.as_str(), v) {
                            ("allow", TomlValue::List(l)) => cfg.determinism_allow = l.clone(),
                            _ => return Err(format!("lint.toml: unknown [determinism] key `{k}`")),
                        }
                    }
                }
                "panics" | "casts" => {
                    let map = if name == "panics" {
                        &mut cfg.panic_allow
                    } else {
                        &mut cfg.cast_allow
                    };
                    for (k, v) in entries {
                        let TomlValue::Int(n) = v else {
                            return Err(format!("lint.toml: [{name}] `{k}` must be an integer"));
                        };
                        if *n < 0 {
                            return Err(format!("lint.toml: [{name}] `{k}` must be non-negative"));
                        }
                        map.insert(k.clone(), usize::try_from(*n).unwrap_or(usize::MAX));
                    }
                }
                _ => return Err(format!("lint.toml: unknown section [{name}]")),
            }
        }
        Ok(cfg)
    }
}

/// Splits a document into `(section, entries)` pairs.
fn parse_sections(text: &str) -> Result<Vec<(String, Section)>, String> {
    let mut out: Vec<(String, Section)> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let Some(section) = section.strip_suffix(']') else {
                return Err(format!(
                    "lint.toml:{}: unterminated section header",
                    idx + 1
                ));
            };
            out.push((section.trim().to_string(), Vec::new()));
            continue;
        }
        let Some(eq) = find_top_level_eq(&line) else {
            return Err(format!("lint.toml:{}: expected `key = value`", idx + 1));
        };
        let key = parse_key(line[..eq].trim())
            .ok_or_else(|| format!("lint.toml:{}: bad key", idx + 1))?;
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming until brackets balance.
        while value.starts_with('[') && !brackets_balance(&value) {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("lint.toml:{}: unterminated array", idx + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let value = parse_value(&value)
            .ok_or_else(|| format!("lint.toml:{}: bad value `{value}`", idx + 1))?;
        match out.last_mut() {
            Some((_, entries)) => entries.push((key, value)),
            None => return Err(format!("lint.toml:{}: key before any [section]", idx + 1)),
        }
    }
    Ok(out)
}

/// Removes a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the `=` separating key from value, skipping quoted keys.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

/// Accepts `bare_key` or `"quoted key"`.
fn parse_key(raw: &str) -> Option<String> {
    if let Some(q) = raw.strip_prefix('"') {
        return q.strip_suffix('"').map(str::to_string);
    }
    let ok = !raw.is_empty()
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    ok.then(|| raw.to_string())
}

fn brackets_balance(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(raw: &str) -> Option<TomlValue> {
    let raw = raw.trim();
    if let Some(q) = raw.strip_prefix('"') {
        return q.strip_suffix('"').map(|s| TomlValue::Str(s.to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let s = part.strip_prefix('"')?.strip_suffix('"')?;
            items.push(s.to_string());
        }
        return Some(TomlValue::List(items));
    }
    raw.parse::<i64>().ok().map(TomlValue::Int)
}

/// Splits array contents on commas outside quotes.
fn split_array_items(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[workspace]
library_crates = ["vsim", "vnet"] # trailing comment
cast_crates = [
    "vsim",
    "vnet",
]

[layering]
vsim = []
vnet = ["vsim"]

[determinism]
allow = ["crates/bench/src/lib.rs"]

[panics]
"crates/sim/src/engine.rs" = 2

[casts]
"crates/sim/src/metrics.rs" = 6
"#,
        )
        .unwrap();
        assert_eq!(cfg.library_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.cast_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.layering["vnet"], vec!["vsim"]);
        assert_eq!(cfg.layering["vsim"], Vec::<String>::new());
        assert_eq!(cfg.determinism_allow, vec!["crates/bench/src/lib.rs"]);
        assert_eq!(cfg.panic_allow["crates/sim/src/engine.rs"], 2);
        assert_eq!(cfg.cast_allow["crates/sim/src/metrics.rs"], 6);
    }

    #[test]
    fn rejects_unknown_section() {
        assert!(Config::parse("[mystery]\nx = 1\n").is_err());
    }

    #[test]
    fn rejects_negative_allowance() {
        assert!(Config::parse("[panics]\n\"a.rs\" = -1\n").is_err());
    }

    #[test]
    fn rejects_key_outside_section() {
        assert!(Config::parse("x = 1\n").is_err());
    }
}
