//! `lint.toml` loading, on top of the shared [`crate::toml`] reader.
//!
//! The auditor is dependency-free, so the workspace hand-rolls its own
//! small TOML-subset parser (the same spirit as `vsim::json`). That
//! parser started here and now lives in [`crate::toml`], where `vrun`'s
//! sweep specs share it; this module keeps the `lint.toml`-specific
//! schema: which sections exist, which value types they take, and the
//! validation that makes a bad config a loud CI failure instead of a
//! silently skipped rule.
//!
//! v2 generalizes the old `[panics]` / `[casts]` allowance tables into
//! rule-generic `[allow.<rule-id>]` ratchets, and adds the
//! configuration for the flow passes: `[[dispatch]]` (exhaustive
//! dispatch surfaces per audited enum), `[schema]` (where the emitted
//! metric/series names are cross-checked), and `[taint]` (extra
//! determinism-taint sources/sinks).

use std::collections::BTreeMap;
use std::path::Path;

use crate::toml::{TomlDoc, TomlTable, TomlValue};

/// Rule ids that accept a `[allow.<rule-id>]` ratchet table.
pub const RATCHET_RULES: &[&str] = &[
    "panic-budget",
    "lossy-cast",
    "dispatch-wildcard",
    "det-taint",
];

/// One `[[dispatch]]` entry: an enum whose dispatch surfaces must stay
/// exhaustive.
#[derive(Debug, Clone, Default)]
pub struct DispatchSpec {
    /// The audited enum's name (`Event`, `TraceEvent`, …).
    pub enum_name: String,
    /// Workspace-relative file defining the enum.
    pub defined_in: String,
    /// Dispatch surfaces as `(file, fn-name)`, from `"file#fn"` strings.
    pub surfaces: Vec<(String, String)>,
    /// `lint.toml` line of the entry, for diagnostics.
    pub line: usize,
}

/// The `[schema]` section: where emitted names are collected from and
/// which consumers they are cross-checked against.
#[derive(Debug, Clone, Default)]
pub struct SchemaCfg {
    /// Markdown docs holding `<!-- vlint:schema -->` tables.
    pub docs: Vec<String>,
    /// Directory of sweep specs whose `plan` axes must use known names.
    pub sweeps: Option<String>,
    /// `"file#fn"` of the canonical fault-plan name list
    /// (`FaultPlan::names`).
    pub plan_names: Option<(String, String)>,
    /// The fault-matrix soak test that must iterate `fault_points()`.
    pub fault_matrix: Option<String>,
}

/// The `[taint]` section: extra source/sink patterns for the
/// determinism-taint pass (dotted call paths, see [`crate::taint`]).
#[derive(Debug, Clone, Default)]
pub struct TaintCfg {
    /// Extra taint sources (e.g. `"Instant::now"`, `".now_ns"`).
    pub sources: Vec<String>,
    /// Extra taint sinks (e.g. `".schedule"`).
    pub sinks: Vec<String>,
}

/// The full `lint.toml` configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose `src/` trees are subject to the determinism and
    /// panic-budget rules (everything simulation-facing).
    pub library_crates: Vec<String>,
    /// Crates whose `src/` trees are subject to the lossy-cast rule
    /// (the ones doing `SimTime` / byte-count arithmetic).
    pub cast_crates: Vec<String>,
    /// Intended dependency DAG: crate name → exhaustive list of crates it
    /// may depend on. Every discovered crate must have an entry.
    pub layering: BTreeMap<String, Vec<String>>,
    /// Workspace-relative file paths exempt from the determinism rules
    /// (e.g. the bench harness timing real wall-clock runs).
    pub determinism_allow: Vec<String>,
    /// Rule-generic per-file ratchets: rule id → file → allowance.
    /// Files absent from a rule's map have an allowance of zero, and an
    /// allowance above the actual count is itself an error.
    pub allow: BTreeMap<String, BTreeMap<String, usize>>,
    /// Bench binaries (file stems under `crates/bench/src/bin/`) exempt
    /// from the `bench-emit` rule — gates and meta-tools that do not
    /// produce experiment artifacts.
    pub bench_emit_exempt: Vec<String>,
    /// `[[dispatch]]` entries for the exhaustive-dispatch audit.
    pub dispatch: Vec<DispatchSpec>,
    /// `[schema]` configuration for the schema-drift audit.
    pub schema: SchemaCfg,
    /// `[taint]` extras for the determinism-taint pass.
    pub taint: TaintCfg,
}

impl Config {
    /// Per-file allowance for a ratchet rule (0 when absent).
    pub fn allowance(&self, rule: &str, file: &str) -> usize {
        self.allow
            .get(rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Loads and validates `root/lint.toml`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when the file is
    /// missing, unreadable, or outside the accepted TOML subset.
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Config::parse(&text)
    }

    /// Parses a `lint.toml` document from a string.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = TomlDoc::parse(text, "lint.toml")?;
        let mut cfg = Config::default();
        for table in &doc.tables {
            let name = table.name();
            if table.array && name != "dispatch" {
                return Err(format!(
                    "lint.toml:{}: [[{name}]] array tables are only used for [[dispatch]]",
                    table.line
                ));
            }
            match name.as_str() {
                "workspace" => {
                    for (k, v, line) in &table.entries {
                        let list = string_list(v, line, "workspace", k)?;
                        match k.as_str() {
                            "library_crates" => cfg.library_crates = list,
                            "cast_crates" => cfg.cast_crates = list,
                            _ => {
                                return Err(format!(
                                    "lint.toml:{line}: unknown [workspace] key `{k}`"
                                ))
                            }
                        }
                    }
                }
                "layering" => {
                    for (k, v, line) in &table.entries {
                        cfg.layering
                            .insert(k.clone(), string_list(v, line, "layering", k)?);
                    }
                }
                "determinism" => {
                    for (k, v, line) in &table.entries {
                        match k.as_str() {
                            "allow" => {
                                cfg.determinism_allow = string_list(v, line, "determinism", k)?;
                            }
                            _ => {
                                return Err(format!(
                                    "lint.toml:{line}: unknown [determinism] key `{k}`"
                                ))
                            }
                        }
                    }
                }
                "bench" => {
                    for (k, v, line) in &table.entries {
                        match k.as_str() {
                            "emit_exempt" => {
                                cfg.bench_emit_exempt = string_list(v, line, "bench", k)?;
                            }
                            _ => {
                                return Err(format!("lint.toml:{line}: unknown [bench] key `{k}`"))
                            }
                        }
                    }
                }
                "panics" | "casts" => {
                    return Err(format!(
                        "lint.toml:{}: [{name}] was replaced by the rule-generic ratchets — \
                         move the entries to [allow.{}]",
                        table.line,
                        if name == "panics" {
                            "panic-budget"
                        } else {
                            "lossy-cast"
                        },
                    ));
                }
                "dispatch" => {
                    if !table.array {
                        return Err(format!(
                            "lint.toml:{}: use [[dispatch]] (array of tables), one per enum",
                            table.line
                        ));
                    }
                    cfg.dispatch.push(parse_dispatch(table)?);
                }
                "schema" => {
                    parse_schema(table, &mut cfg.schema)?;
                }
                "taint" => {
                    for (k, v, line) in &table.entries {
                        match k.as_str() {
                            "sources" => cfg.taint.sources = string_list(v, line, "taint", k)?,
                            "sinks" => cfg.taint.sinks = string_list(v, line, "taint", k)?,
                            _ => {
                                return Err(format!("lint.toml:{line}: unknown [taint] key `{k}`"))
                            }
                        }
                    }
                }
                other if other.starts_with("allow.") => {
                    let rule = &other["allow.".len()..];
                    if !RATCHET_RULES.contains(&rule) {
                        return Err(format!(
                            "lint.toml:{}: [allow.{rule}] — `{rule}` is not a ratchetable rule \
                             (known: {})",
                            table.line,
                            RATCHET_RULES.join(", "),
                        ));
                    }
                    let map = cfg.allow.entry(rule.to_string()).or_default();
                    for (k, v, line) in &table.entries {
                        let Some(n) = v.as_int() else {
                            return Err(format!(
                                "lint.toml:{line}: [allow.{rule}] `{k}` must be an integer"
                            ));
                        };
                        if n < 0 {
                            return Err(format!(
                                "lint.toml:{line}: [allow.{rule}] `{k}` must be non-negative"
                            ));
                        }
                        map.insert(k.clone(), usize::try_from(n).unwrap_or(usize::MAX));
                    }
                }
                _ => {
                    return Err(format!(
                        "lint.toml:{}: unknown section [{name}]",
                        table.line
                    ))
                }
            }
        }
        Ok(cfg)
    }
}

/// Splits a `"path/file.rs#fn_name"` reference.
fn parse_site(s: &str, line: usize, what: &str) -> Result<(String, String), String> {
    match s.split_once('#') {
        Some((f, func)) if !f.is_empty() && !func.is_empty() => {
            Ok((f.to_string(), func.to_string()))
        }
        _ => Err(format!(
            "lint.toml:{line}: {what} `{s}` must look like `path/to/file.rs#fn_name`"
        )),
    }
}

fn parse_dispatch(table: &TomlTable) -> Result<DispatchSpec, String> {
    let mut spec = DispatchSpec {
        line: table.line,
        ..DispatchSpec::default()
    };
    for (k, v, line) in &table.entries {
        match k.as_str() {
            "enum" => {
                spec.enum_name = require_str(v, line, "dispatch", k)?;
            }
            "defined_in" => {
                spec.defined_in = require_str(v, line, "dispatch", k)?;
            }
            "surfaces" => {
                for s in string_list(v, line, "dispatch", k)? {
                    spec.surfaces.push(parse_site(&s, *line, "surface")?);
                }
            }
            _ => return Err(format!("lint.toml:{line}: unknown [[dispatch]] key `{k}`")),
        }
    }
    if spec.enum_name.is_empty() || spec.defined_in.is_empty() {
        return Err(format!(
            "lint.toml:{}: [[dispatch]] needs `enum` and `defined_in`",
            table.line
        ));
    }
    if spec.surfaces.is_empty() {
        return Err(format!(
            "lint.toml:{}: [[dispatch]] for `{}` lists no surfaces",
            table.line, spec.enum_name
        ));
    }
    Ok(spec)
}

fn parse_schema(table: &TomlTable, out: &mut SchemaCfg) -> Result<(), String> {
    for (k, v, line) in &table.entries {
        match k.as_str() {
            "docs" => out.docs = string_list(v, line, "schema", k)?,
            "sweeps" => out.sweeps = Some(require_str(v, line, "schema", k)?),
            "plan_names" => {
                let s = require_str(v, line, "schema", k)?;
                out.plan_names = Some(parse_site(&s, *line, "plan_names")?);
            }
            "fault_matrix" => out.fault_matrix = Some(require_str(v, line, "schema", k)?),
            _ => return Err(format!("lint.toml:{line}: unknown [schema] key `{k}`")),
        }
    }
    Ok(())
}

/// Requires `v` to be a string.
fn require_str(v: &TomlValue, line: &usize, section: &str, key: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("lint.toml:{line}: [{section}] `{key}` must be a string"))
}

/// Requires `v` to be an all-strings array.
fn string_list(
    v: &TomlValue,
    line: &usize,
    section: &str,
    key: &str,
) -> Result<Vec<String>, String> {
    v.string_list()
        .ok_or_else(|| format!("lint.toml:{line}: [{section}] `{key}` must be a list of strings"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[workspace]
library_crates = ["vsim", "vnet"] # trailing comment
cast_crates = [
    "vsim",
    "vnet",
]

[layering]
vsim = []
vnet = ["vsim"]

[determinism]
allow = ["crates/bench/src/lib.rs"]

[bench]
emit_exempt = ["bench_regress"]

[allow.panic-budget]
"crates/sim/src/engine.rs" = 2

[allow.lossy-cast]
"crates/sim/src/metrics.rs" = 6

[allow.dispatch-wildcard]
"crates/bench/src/bin/abl.rs" = 1

[[dispatch]]
enum = "Event"
defined_in = "crates/sim/src/engine.rs"
surfaces = ["crates/sim/src/engine.rs#dispatch"]

[schema]
docs = ["EXPERIMENTS.md"]
sweeps = "sweeps"
plan_names = "crates/sim/src/faults.rs#names"
fault_matrix = "tests/fault_matrix.rs"

[taint]
sources = ["Instant::now"]
sinks = [".schedule"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.library_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.cast_crates, vec!["vsim", "vnet"]);
        assert_eq!(cfg.layering["vnet"], vec!["vsim"]);
        assert_eq!(cfg.determinism_allow, vec!["crates/bench/src/lib.rs"]);
        assert_eq!(cfg.bench_emit_exempt, vec!["bench_regress"]);
        assert_eq!(cfg.allowance("panic-budget", "crates/sim/src/engine.rs"), 2);
        assert_eq!(cfg.allowance("lossy-cast", "crates/sim/src/metrics.rs"), 6);
        assert_eq!(
            cfg.allowance("dispatch-wildcard", "crates/bench/src/bin/abl.rs"),
            1
        );
        assert_eq!(cfg.allowance("det-taint", "anything.rs"), 0);
        assert_eq!(cfg.dispatch.len(), 1);
        assert_eq!(cfg.dispatch[0].enum_name, "Event");
        assert_eq!(
            cfg.dispatch[0].surfaces,
            vec![(
                "crates/sim/src/engine.rs".to_string(),
                "dispatch".to_string()
            )]
        );
        assert_eq!(cfg.schema.docs, vec!["EXPERIMENTS.md"]);
        assert_eq!(cfg.schema.sweeps.as_deref(), Some("sweeps"));
        assert_eq!(
            cfg.schema.plan_names,
            Some((
                "crates/sim/src/faults.rs".to_string(),
                "names".to_string()
            ))
        );
        assert_eq!(cfg.taint.sources, vec!["Instant::now"]);
        assert_eq!(cfg.taint.sinks, vec![".schedule"]);
    }

    #[test]
    fn rejects_unknown_section() {
        assert!(Config::parse("[mystery]\nx = 1\n").is_err());
    }

    #[test]
    fn legacy_panics_casts_sections_error_with_migration_hint() {
        let err = Config::parse("[panics]\n\"a.rs\" = 1\n").expect_err("legacy");
        assert!(err.contains("allow.panic-budget"), "{err}");
        let err = Config::parse("[casts]\n\"a.rs\" = 1\n").expect_err("legacy");
        assert!(err.contains("allow.lossy-cast"), "{err}");
    }

    #[test]
    fn rejects_unknown_ratchet_rule() {
        let err = Config::parse("[allow.det-hash]\n\"a.rs\" = 1\n").expect_err("not ratchetable");
        assert!(err.contains("not a ratchetable rule"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        for (src, line) in [
            ("[workspace]\nnope = []\n", 2),
            ("[determinism]\nnope = []\n", 2),
            ("[bench]\nnope = []\n", 2),
            ("[schema]\nnope = \"x\"\n", 2),
            ("[taint]\nnope = []\n", 2),
        ] {
            let err = Config::parse(src).expect_err(src);
            assert!(err.contains(&format!("lint.toml:{line}")), "{err}");
        }
    }

    #[test]
    fn rejects_wrong_value_types() {
        assert!(Config::parse("[workspace]\nlibrary_crates = 3\n").is_err());
        assert!(Config::parse("[layering]\nvsim = \"vnet\"\n").is_err());
        assert!(Config::parse("[layering]\nvsim = [1]\n").is_err());
        assert!(Config::parse("[allow.panic-budget]\n\"a.rs\" = \"two\"\n").is_err());
        assert!(Config::parse("[bench]\nemit_exempt = [true]\n").is_err());
    }

    #[test]
    fn rejects_negative_allowance() {
        assert!(Config::parse("[allow.panic-budget]\n\"a.rs\" = -1\n").is_err());
    }

    #[test]
    fn dispatch_entries_validate_shape() {
        // Not an array table.
        assert!(Config::parse("[dispatch]\nenum = \"E\"\n").is_err());
        // Missing surfaces.
        assert!(
            Config::parse("[[dispatch]]\nenum = \"E\"\ndefined_in = \"a.rs\"\nsurfaces = []\n")
                .is_err()
        );
        // Bad surface syntax.
        let err = Config::parse(
            "[[dispatch]]\nenum = \"E\"\ndefined_in = \"a.rs\"\nsurfaces = [\"a.rs\"]\n",
        )
        .expect_err("bad surface");
        assert!(err.contains("file.rs#fn_name"), "{err}");
        // Missing enum.
        assert!(
            Config::parse("[[dispatch]]\ndefined_in = \"a.rs\"\nsurfaces = [\"a.rs#f\"]\n")
                .is_err()
        );
    }

    #[test]
    fn rejects_key_outside_section() {
        assert!(Config::parse("x = 1\n").is_err());
    }

    #[test]
    fn rejects_stray_array_tables() {
        assert!(Config::parse("[[workspace]]\nlibrary_crates = []\n").is_err());
    }
}
