//! Taint fixture: a host-clock reading flows through two locals into a
//! scheduling sink. The flow itself — not the source call — is the
//! defect det-taint must report.

pub struct Sched;

impl Sched {
    pub fn schedule(&mut self, _at: u64) {}
}

pub trait Host {
    fn now_ns(&self) -> u64;
}

/// Tainted: `clock.now_ns()` → `stamp` → `deadline` → `schedule`.
pub fn tick(clock: &dyn Host, s: &mut Sched) {
    let stamp = clock.now_ns();
    let deadline = stamp + 5;
    s.schedule(deadline);
}

/// Clean: the argument is caller-supplied simulated time, so the same
/// sink with an untainted value must not fire.
pub fn tick_sim(at: u64, s: &mut Sched) {
    let deadline = at + 5;
    s.schedule(deadline);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_touch_the_host_clock() {
        struct C;
        impl Host for C {
            fn now_ns(&self) -> u64 {
                7
            }
        }
        let mut s = Sched;
        tick(&C, &mut s);
    }
}
