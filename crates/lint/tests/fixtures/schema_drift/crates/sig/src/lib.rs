//! Schema fixture: one emission drifted away from the documented table.
//! `frames_sent` matches its row; `queue_depth` is emitted but
//! undocumented, and the doc still lists `frames_lost`, which nothing
//! emits any more.

pub enum Subsystem {
    Net,
}

pub struct Metrics;

impl Metrics {
    pub fn counter(&mut self, _s: Subsystem, _name: &'static str) -> u32 {
        0
    }
    pub fn gauge(&mut self, _s: Subsystem, _name: &'static str) -> u32 {
        0
    }
}

pub fn register(m: &mut Metrics) -> (u32, u32) {
    let sent = m.counter(Subsystem::Net, "frames_sent");
    let depth = m.gauge(Subsystem::Net, "queue_depth");
    (sent, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_emissions_do_not_count() {
        // Registrations inside cfg(test) are invisible to the audit.
        let _ = Metrics.counter(Subsystem::Net, "test_only_counter");
    }
}
