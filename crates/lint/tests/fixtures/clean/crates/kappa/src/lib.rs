//! Clean fixture: ordered collections, no panics, no narrowing casts.
use std::collections::BTreeMap;

/// Mentions of HashMap, Instant::now(), and x.unwrap() in comments or
/// "strings: HashMap panic! as u32" must not trip any rule.
pub fn sum(values: &BTreeMap<String, u64>) -> u64 {
    values.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_do_anything() {
        let t = std::time::Instant::now();
        let mut m = HashMap::new();
        m.insert("k", t);
        assert_eq!(m.len() as u32, 1);
        Some(()).unwrap();
    }
}
