//! Known-bad fixture: a narrowing cast on simulated-time arithmetic.
pub fn truncate_time(micros: u64) -> u32 {
    micros as u32
}

pub fn widen_is_fine(x: u16) -> u64 {
    u64::from(x) // no `as`, no finding
}
