//! Ratchet fixture: the code has one narrowing cast and one unwrap,
//! but lint.toml still allows far more. Over-generous allowances are
//! themselves errors — the ratchet may only move down.

pub fn truncate(x: u64) -> u32 {
    x as u32
}

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
