//! An experiment that routes its results through the harness.

fn main() {
    // emit in a comment must not count; "emit(" in a string neither.
    let table = vec![1, 2, 3];
    println!("rows: {}", table.len());
    vbench::emit("good_exp");
}
