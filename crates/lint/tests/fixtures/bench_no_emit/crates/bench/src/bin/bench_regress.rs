//! A gate, not an experiment: exempt via [bench] emit_exempt.

fn main() {
    std::process::exit(0);
}
