//! Fixture bench harness.

/// Stand-in for the artifact writer.
pub fn emit(_name: &str) {}
