//! An experiment that only prints — leaves no artifact.

fn main() {
    // The word emit appears here, and "emit(" in this string, but the
    // binary never calls it.
    println!("result: 42 emit( nothing");
}
