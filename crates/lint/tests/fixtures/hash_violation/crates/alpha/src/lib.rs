//! Known-bad fixture: hash-ordered collections in library code.
use std::collections::HashMap;

pub struct Registry {
    by_name: HashMap<String, u32>,
}

// A mention in a comment (HashSet) and in a string must NOT trip the rule:
pub const NOTE: &str = "HashSet here is fine";

#[cfg(test)]
mod tests {
    // Test code may hash freely.
    use std::collections::HashSet;

    #[test]
    fn hashing_in_tests_is_fine() {
        let _ = HashSet::<u32>::new();
    }
}
