//! Known-bad fixture: `beta` reaches into `gamma` against the DAG.
use gamma::Thing;

pub fn touch() -> Thing {
    gamma::Thing::default()
}
