//! Lower-layer fixture crate.
#[derive(Default)]
pub struct Thing;
