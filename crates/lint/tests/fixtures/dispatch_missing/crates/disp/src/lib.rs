//! Dispatch fixture: `Color` has three variants but `label` only names
//! two, hiding the gap behind a catch-all arm rustc accepts. The audit
//! must report the missing `Blue` and the unguarded wildcard.

pub enum Color {
    Red,
    Green,
    Blue,
}

pub fn label(c: &Color) -> &'static str {
    match c {
        Color::Red => "red",
        Color::Green => "green",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_matches_are_exempt() {
        // A wildcard over the watched enum inside cfg(test) is fine.
        let c = Color::Blue;
        let _ = match c {
            Color::Red => 0,
            _ => 1,
        };
        assert_eq!(label(&Color::Red), "red");
    }
}
