//! Known-bad fixture: wall-clock time, OS threads, ambient randomness.
use std::time::Instant;

pub fn naughty() {
    let _t0 = Instant::now();
    let _h = std::thread::spawn(|| 1 + 1);
    let _r = rand::random::<u64>();
}
