//! Known-bad fixture: three panic sites against an allowance of one.
pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    x.expect("second")
}

pub fn third(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => panic!("third"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_free() {
        assert_eq!(super::first(Some(3)), 3);
        Some(1).unwrap();
    }
}
