//! Fixture-based tests: each `tests/fixtures/*` tree is a miniature
//! workspace with a known defect (or none), and the expected rule ids
//! must — and only they may — fire.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the lint library over a fixture and returns the sorted rule ids.
fn rules_for(name: &str) -> Vec<String> {
    let report = vlint::run(&fixture(name)).expect("fixture lints");
    let mut rules: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.rule.to_string())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn hash_violation_fires_det_hash_only() {
    assert_eq!(rules_for("hash_violation"), ["det-hash"]);
    let report = vlint::run(&fixture("hash_violation")).unwrap();
    // The use statement and the field type; not the comment, string, or
    // the #[cfg(test)] module.
    assert_eq!(report.violations.len(), 2);
    assert!(report.violations.iter().all(|v| v.line == 2 || v.line == 5));
}

#[test]
fn layering_violation_fires_dep_and_use() {
    assert_eq!(
        rules_for("layering_violation"),
        ["layering-dep", "layering-use"]
    );
    let report = vlint::run(&fixture("layering_violation")).unwrap();
    let dep = report
        .violations
        .iter()
        .find(|v| v.rule == "layering-dep")
        .unwrap();
    assert_eq!(dep.file, "crates/beta/Cargo.toml");
    let uses: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "layering-use")
        .collect();
    // `use gamma::Thing;` plus the two `gamma::` paths in the body.
    assert!(!uses.is_empty());
    assert!(uses.iter().all(|v| v.file == "crates/beta/src/lib.rs"));
}

#[test]
fn lossy_cast_fires_on_narrowing_only() {
    assert_eq!(rules_for("lossy_cast"), ["lossy-cast"]);
    let report = vlint::run(&fixture("lossy_cast")).unwrap();
    assert_eq!(report.violations.len(), 1, "widening u64::from is clean");
    assert_eq!(report.violations[0].line, 3);
}

#[test]
fn nondet_runtime_fires_time_thread_rand() {
    assert_eq!(
        rules_for("nondet_runtime"),
        ["det-rand", "det-thread", "det-time"]
    );
}

#[test]
fn panic_budget_reports_overrun_and_stale_entries() {
    assert_eq!(rules_for("panic_budget"), ["panic-budget", "ratchet-stale"]);
    let report = vlint::run(&fixture("panic_budget")).unwrap();
    let over: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "panic-budget")
        .collect();
    // 3 sites, allowance 1 → exactly 2 reported; the test-module unwrap
    // is free.
    assert_eq!(over.len(), 2);
    let stale: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "ratchet-stale")
        .collect();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].file, "crates/eps/src/gone.rs");
}

#[test]
fn bench_without_emit_fires_bench_emit_only() {
    assert_eq!(rules_for("bench_no_emit"), ["bench-emit"]);
    let report = vlint::run(&fixture("bench_no_emit")).unwrap();
    // Only the printing binary: good_exp calls emit, bench_regress is
    // exempt via [bench] emit_exempt.
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].file, "crates/bench/src/bin/bad_exp.rs");
}

#[test]
fn taint_flow_fires_det_taint_at_the_sink() {
    assert_eq!(rules_for("taint_flow"), ["det-taint"]);
    let report = vlint::run(&fixture("taint_flow")).unwrap();
    assert_eq!(report.violations.len(), 1, "clean sim path must not fire");
    let v = &report.violations[0];
    assert_eq!(v.file, "crates/tau/src/lib.rs");
    // Reported at the tainted `s.schedule(deadline)` call, not at the
    // clock read where the value originated.
    assert_eq!(v.line, 19, "got: {}", v.message);
    assert!(v.message.contains("schedule"), "got: {}", v.message);
}

#[test]
fn dispatch_missing_reports_variant_and_wildcard() {
    assert_eq!(
        rules_for("dispatch_missing"),
        ["dispatch-missing", "dispatch-wildcard"]
    );
    let report = vlint::run(&fixture("dispatch_missing")).unwrap();
    let missing = report
        .violations
        .iter()
        .find(|v| v.rule == "dispatch-missing")
        .unwrap();
    assert_eq!(missing.file, "crates/disp/src/lib.rs");
    assert!(
        missing.message.contains("Color::Blue"),
        "got: {}",
        missing.message
    );
    let wild = report
        .violations
        .iter()
        .find(|v| v.rule == "dispatch-wildcard")
        .unwrap();
    // The `_ =>` arm in `label`; the cfg(test) wildcard is exempt.
    assert_eq!(wild.file, "crates/disp/src/lib.rs");
    assert_eq!(wild.line, 15, "got: {}", wild.message);
}

#[test]
fn schema_drift_reports_both_directions() {
    assert_eq!(
        rules_for("schema_drift"),
        ["schema-stale-doc", "schema-undocumented"]
    );
    let report = vlint::run(&fixture("schema_drift")).unwrap();
    let undoc = report
        .violations
        .iter()
        .find(|v| v.rule == "schema-undocumented")
        .unwrap();
    // At the emission site of the undocumented gauge.
    assert_eq!(undoc.file, "crates/sig/src/lib.rs");
    assert!(
        undoc.message.contains("net/queue_depth"),
        "got: {}",
        undoc.message
    );
    let stale = report
        .violations
        .iter()
        .find(|v| v.rule == "schema-stale-doc")
        .unwrap();
    // At the doc row nothing emits.
    assert_eq!(stale.file, "SCHEMA.md");
    assert!(
        stale.message.contains("frames_lost"),
        "got: {}",
        stale.message
    );
}

#[test]
fn ratchet_stale_fires_for_overrun_and_missing_files() {
    assert_eq!(rules_for("ratchet_stale"), ["ratchet-stale"]);
    let report = vlint::run(&fixture("ratchet_stale")).unwrap();
    // panic-budget 3 vs 1, lossy-cast 5 vs 1, lossy-cast on a missing
    // file: three stale allowances.
    assert_eq!(report.violations.len(), 3);
    assert!(report
        .violations
        .iter()
        .any(|v| v.file == "crates/rho/src/gone.rs"));
    assert!(report
        .violations
        .iter()
        .any(|v| v.message.contains("[allow.panic-budget]")));
}

#[test]
fn clean_fixture_passes() {
    let report = vlint::run(&fixture("clean")).expect("clean fixture lints");
    assert!(
        report.is_clean(),
        "expected clean, got:\n{}",
        report.render_text()
    );
}

// ---- binary behaviour: exit codes and the JSON artifact --------------

fn run_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vlint"))
        .args(args)
        .output()
        .expect("spawn vlint")
}

#[test]
fn bin_exits_nonzero_on_each_bad_fixture() {
    for name in [
        "hash_violation",
        "layering_violation",
        "lossy_cast",
        "nondet_runtime",
        "panic_budget",
        "bench_no_emit",
        "taint_flow",
        "dispatch_missing",
        "schema_drift",
        "ratchet_stale",
    ] {
        let out = run_bin(&["--root", fixture(name).to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {name} should fail:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn bin_exits_zero_on_clean_fixture() {
    let out = run_bin(&["--root", fixture("clean").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn bin_exits_two_on_missing_config() {
    let dir = std::env::temp_dir().join("vlint-no-config");
    std::fs::create_dir_all(&dir).unwrap();
    let out = run_bin(&["--root", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bin_writes_json_artifact() {
    let path = std::env::temp_dir().join("vlint-fixture-artifact.json");
    let _ = std::fs::remove_file(&path);
    let out = run_bin(&[
        "--root",
        fixture("hash_violation").to_str().unwrap(),
        "--json-path",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "still fails while writing JSON");
    let json = std::fs::read_to_string(&path).expect("artifact written");
    assert!(json.contains("\"tool\": \"vlint\""));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"det-hash\": 2"));
    assert!(json.contains("\"rule\": \"det-hash\""));
}
