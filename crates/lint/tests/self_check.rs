//! Self-check: the live workspace passes its own auditor clean.
//!
//! This is the same gate CI runs (`cargo run -p vlint`); keeping it as a
//! test means a plain `cargo test --workspace` also refuses hash-ordered
//! state, layering breaks, and budget overruns.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint/ → crates/ → workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    assert!(root.join("lint.toml").is_file(), "lint.toml at {root:?}");
    let report = vlint::run(&root).expect("lint pass runs");
    assert!(
        report.is_clean(),
        "workspace must lint clean, got:\n{}",
        report.render_text()
    );
    // The pass actually covered the tree (all nine library/bench crates,
    // vlint itself, and the root facade).
    assert!(
        report.crates_audited >= 11,
        "{} crates",
        report.crates_audited
    );
    assert!(report.files_scanned >= 60, "{} files", report.files_scanned);
}

#[test]
fn workspace_json_artifact_is_parseable_by_vsim() {
    // vlint's JSON must stay consumable by the repo's own parser — but
    // vlint cannot depend on vsim (layering!), so this lives in a test.
    let report = vlint::run(&workspace_root()).expect("lint pass runs");
    let json = report.to_json();
    assert!(json.contains("\"clean\": true"));
    // Minimal structural sanity without a parser dependency: balanced
    // braces and the expected top-level keys.
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    for key in [
        "\"tool\"",
        "\"crates_audited\"",
        "\"files_scanned\"",
        "\"violations\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
}
