//! The workstation-owner activity model.
//!
//! §1: "With a personal workstation per project member, we observe over
//! one third of our workstations idle, even at the busiest times of the
//! day." §4.3: "most of our workstations are over 80% idle even during the
//! peak usage hours" — and an owner returning must be able to reclaim the
//! machine "within a few seconds". This module models owners as a two-
//! state (active/idle) process with exponential holding times.

use vsim::{DetRng, SimDuration};

/// Owner presence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerState {
    /// At the console (editing, mostly).
    Active,
    /// Away; the workstation is a candidate computation server.
    Idle,
}

/// Parameters of the on/off process.
#[derive(Debug, Clone)]
pub struct UserModelParams {
    /// Mean duration of an active session.
    pub mean_active: SimDuration,
    /// Mean duration of an idle period.
    pub mean_idle: SimDuration,
    /// Probability a workstation starts active.
    pub initially_active: f64,
}

impl UserModelParams {
    /// Peak hours per the paper: ~80% idle.
    pub fn peak_hours() -> Self {
        UserModelParams {
            mean_active: SimDuration::from_secs(10 * 60),
            mean_idle: SimDuration::from_secs(40 * 60),
            initially_active: 0.2,
        }
    }

    /// Long-run fraction of time idle.
    pub fn idle_fraction(&self) -> f64 {
        let a = self.mean_active.as_secs_f64();
        let i = self.mean_idle.as_secs_f64();
        i / (a + i)
    }
}

/// One workstation owner.
#[derive(Debug)]
pub struct UserModel {
    params: UserModelParams,
    state: OwnerState,
    active_time: SimDuration,
    idle_time: SimDuration,
    transitions: u64,
}

impl UserModel {
    /// Creates an owner, drawing the initial state.
    pub fn new(params: UserModelParams, rng: &mut DetRng) -> Self {
        let state = if rng.chance(params.initially_active) {
            OwnerState::Active
        } else {
            OwnerState::Idle
        };
        UserModel {
            params,
            state,
            active_time: SimDuration::ZERO,
            idle_time: SimDuration::ZERO,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> OwnerState {
        self.state
    }

    /// True when the owner is at the console.
    pub fn is_active(&self) -> bool {
        self.state == OwnerState::Active
    }

    /// Draws how long the owner stays in the current state; the runtime
    /// schedules a transition event after this duration.
    pub fn holding_time(&self, rng: &mut DetRng) -> SimDuration {
        let mean = match self.state {
            OwnerState::Active => self.params.mean_active,
            OwnerState::Idle => self.params.mean_idle,
        };
        SimDuration::from_secs_f64(rng.exp_f64(mean.as_secs_f64()).max(1.0))
    }

    /// Flips the state, crediting `held` to the state just left.
    pub fn transition(&mut self, held: SimDuration) -> OwnerState {
        match self.state {
            OwnerState::Active => {
                self.active_time += held;
                self.state = OwnerState::Idle;
            }
            OwnerState::Idle => {
                self.idle_time += held;
                self.state = OwnerState::Active;
            }
        }
        self.transitions += 1;
        self.state
    }

    /// Measured idle fraction over the credited time.
    pub fn measured_idle_fraction(&self) -> f64 {
        let total = self.active_time + self.idle_time;
        if total.is_zero() {
            return if self.is_active() { 0.0 } else { 1.0 };
        }
        self.idle_time.as_secs_f64() / total.as_secs_f64()
    }

    /// Number of state flips so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_hours_is_80_percent_idle() {
        assert!((UserModelParams::peak_hours().idle_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn simulated_idle_fraction_matches_parameters() {
        let params = UserModelParams::peak_hours();
        let mut rng = DetRng::seed(42);
        let mut total_idle = SimDuration::ZERO;
        let mut total = SimDuration::ZERO;
        // Simulate many owners for a simulated week each.
        for _ in 0..50 {
            let mut u = UserModel::new(params.clone(), &mut rng);
            let mut elapsed = SimDuration::ZERO;
            let week = SimDuration::from_secs(7 * 24 * 3600);
            while elapsed < week {
                let hold = u.holding_time(&mut rng);
                let hold = hold.min(week - elapsed);
                if !u.is_active() {
                    total_idle += hold;
                }
                elapsed += hold;
                u.transition(hold);
            }
            total += week;
        }
        let frac = total_idle.as_secs_f64() / total.as_secs_f64();
        assert!((frac - 0.8).abs() < 0.03, "idle fraction {frac}");
    }

    #[test]
    fn transition_alternates_and_credits() {
        let params = UserModelParams {
            mean_active: SimDuration::from_secs(10),
            mean_idle: SimDuration::from_secs(10),
            initially_active: 1.0,
        };
        let mut rng = DetRng::seed(1);
        let mut u = UserModel::new(params, &mut rng);
        assert!(u.is_active());
        u.transition(SimDuration::from_secs(30));
        assert!(!u.is_active());
        u.transition(SimDuration::from_secs(10));
        assert!(u.is_active());
        assert_eq!(u.transitions(), 2);
        assert!((u.measured_idle_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn holding_time_is_positive() {
        let mut rng = DetRng::seed(2);
        let u = UserModel::new(UserModelParams::peak_hours(), &mut rng);
        for _ in 0..100 {
            assert!(u.holding_time(&mut rng) > SimDuration::ZERO);
        }
    }
}
