//! `vworkload` — synthetic programs and users calibrated to the paper.
//!
//! The eight programs of Table 4-1 (make, cc68 and its passes, TeX) are
//! reconstructed as [`ProgramProfile`]s whose dirty-page behaviour is
//! *fitted* to the paper's three measurement windows; a [`WorkloadProgram`]
//! executes a profile as a sequential state machine of compute, file-I/O
//! and display phases. [`UserModel`] reproduces the owner activity the
//! paper reports (>80% idle at peak).

pub mod profiles;
mod program;
mod user;

pub use program::{Phase, ProgAction, ProgEvent, ProgStats, ProgramProfile, WorkloadProgram};
pub use user::{OwnerState, UserModel, UserModelParams};
