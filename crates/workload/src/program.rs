//! Program behaviour models.
//!
//! The kernel models *mechanism*; this module models what programs *do*:
//! compute (dirtying pages per their writable-working-set profile), read
//! and write files on the file server, write to the display, and exit. A
//! [`WorkloadProgram`] is a sequential state machine: the cluster runtime
//! feeds it events (CPU granted, reply received, timer fired) and executes
//! the single action it requests next — exactly the shape of a V program
//! blocked in synchronous Send most of its life.
//!
//! Because the behaviour object holds only location-independent state
//! (phase counter, file handles, name cache), the runtime can move it
//! between workstations when its logical host migrates — the program
//! itself cannot tell.

use vkernel::{Destination, GroupId, LogicalHostId, ProcessId};
use vmem::{AddressSpace, SpaceLayout, WwsParams, WwsSampler};
use vservices::{ExecEnv, FileHandle, ServiceMsg};
use vsim::{DetRng, Samples, SimDuration, SimTime};

/// One step of a program's life.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Burn CPU for this long, dirtying pages per the WWS model.
    Compute(SimDuration),
    /// Read a file sequentially in `chunk`-byte requests.
    FileRead {
        /// File name (resolved via the file server in the name cache).
        name: String,
        /// Total bytes to read.
        bytes: u64,
        /// Request size.
        chunk: u64,
    },
    /// Create and write a file sequentially.
    FileWrite {
        /// File name.
        name: String,
        /// Total bytes to write.
        bytes: u64,
        /// Request size.
        chunk: u64,
    },
    /// Write characters to the display server.
    Display {
        /// Character count.
        chars: u64,
    },
    /// Interactive loop (an editing user): think, then a burst of CPU and
    /// an echo to the display. Records keystroke→echo response times.
    Interactive {
        /// Mean think time between keystrokes.
        mean_gap: SimDuration,
        /// CPU burst per keystroke.
        burst: SimDuration,
        /// Keystrokes before the phase ends.
        count: u64,
    },
    /// Open a file and *hold* the handle (never closing it) — the §3.3
    /// convention violation that creates a residual dependency when the
    /// program later migrates.
    OpenAndHold {
        /// File name.
        name: String,
    },
    /// Decompose: run a subprogram on some other idle host and wait for it
    /// to finish (§2: "a program may be decomposed into subprograms, each
    /// of which can be run on a separate host"). Drives the full remote
    /// execution protocol — candidate query, create, start, wait — from
    /// inside the program.
    SpawnAndWait {
        /// The subprogram to run.
        profile: Box<ProgramProfile>,
    },
    /// Sleep without using CPU.
    Sleep(SimDuration),
}

/// Static description of a program: image layout, dirty behaviour, phases.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramProfile {
    /// Image name (as stored on the file server).
    pub name: String,
    /// Address-space layout.
    pub layout: SpaceLayout,
    /// Writable-working-set parameters.
    pub wws: WwsParams,
    /// The program's life, in order.
    pub phases: Vec<Phase>,
}

impl ProgramProfile {
    /// A pure-compute profile (used by the Table 4-1 measurement, where
    /// the paper measured steady compilation/typesetting).
    pub fn steady(
        name: impl Into<String>,
        layout: SpaceLayout,
        wws: WwsParams,
        cpu: SimDuration,
    ) -> Self {
        ProgramProfile {
            name: name.into(),
            layout,
            wws,
            phases: vec![Phase::Compute(cpu)],
        }
    }

    /// Total CPU the program will request.
    pub fn total_cpu(&self) -> SimDuration {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Compute(d) => *d,
                Phase::Interactive { burst, count, .. } => *burst * *count,
                _ => SimDuration::ZERO,
            })
            .sum()
    }
}

/// What the program asks the runtime to do next.
#[derive(Debug, Clone)]
pub enum ProgAction {
    /// Schedule CPU time (the runtime slices it into quanta and calls
    /// [`WorkloadProgram::on_cpu`] per quantum).
    Compute(SimDuration),
    /// Sleep (no CPU) and deliver [`ProgEvent::SleepDone`] after.
    Sleep(SimDuration),
    /// Send a request from the program's root process.
    Send {
        /// Target server, group, or well-known local group.
        to: Destination,
        /// Request body.
        body: ServiceMsg,
        /// Appended data bytes.
        data_bytes: u64,
        /// When spawning a subprogram: its behaviour profile, which the
        /// runtime queues so the created program gets a body.
        register_child: Option<Box<ProgramProfile>>,
    },
    /// The program is finished.
    Exit,
}

/// What happened that lets the program take its next step.
#[derive(Debug, Clone)]
pub enum ProgEvent {
    /// The initial process was started by its creator.
    Started,
    /// The requested CPU time has been fully delivered.
    CpuDone,
    /// The requested sleep elapsed.
    SleepDone,
    /// The outstanding Send completed.
    Reply(ServiceMsg),
    /// The outstanding Send failed (timeout / refused).
    SendFailed,
}

/// Counters a program accumulates (they migrate with it).
#[derive(Debug, Clone, Default)]
pub struct ProgStats {
    /// CPU actually consumed.
    pub cpu_micros: u64,
    /// Bytes read from files.
    pub file_bytes_read: u64,
    /// Bytes written to files.
    pub file_bytes_written: u64,
    /// Characters written to the display.
    pub display_chars: u64,
    /// Send failures observed.
    pub send_failures: u64,
}

#[derive(Debug)]
enum Step {
    /// Not yet started.
    Embryonic,
    /// Executing phase `idx`, at sub-state `sub`.
    InPhase { idx: usize, sub: PhaseSub },
    /// All phases done.
    Finished,
}

#[derive(Debug)]
enum PhaseSub {
    /// Entering the phase (no progress yet).
    Enter,
    /// File phase: waiting for Open reply.
    Opening,
    /// File phase: transferring, `left` bytes to go with `handle`.
    Transferring { handle: FileHandle, left: u64 },
    /// File phase: waiting for Close reply.
    Closing,
    /// Interactive: `done` keystrokes completed, waiting think-time.
    Thinking { done: u64 },
    /// Interactive: burst scheduled, keystroke timestamped.
    Bursting { done: u64, keystroke_at: SimTime },
    /// Interactive: echo request sent.
    Echoing { done: u64, keystroke_at: SimTime },
    /// Waiting for a display reply (Display phase).
    DisplayWait,
    /// Compute in progress (runtime tracks remaining).
    Computing,
    /// Subprogram spawn protocol in progress.
    Spawn(SpawnStep),
}

/// Where the spawn protocol stands.
#[derive(Debug)]
enum SpawnStep {
    /// Candidate-host query multicast, awaiting the first response.
    Query,
    /// CreateProgram sent to the chosen manager.
    Create {
        /// The chosen program manager.
        pm: ProcessId,
    },
    /// StartProgram sent.
    Start {
        /// The child's logical host.
        child: LogicalHostId,
    },
    /// WaitProgram outstanding.
    Wait {
        /// The child's logical host.
        child: LogicalHostId,
    },
}

/// A live program instance.
pub struct WorkloadProgram {
    profile: ProgramProfile,
    env: ExecEnv,
    step: Step,
    sampler: Option<WwsSampler>,
    /// Keystroke→echo latencies, in seconds (experiment E10).
    pub response_times: Samples,
    /// Handles opened by [`Phase::OpenAndHold`], never closed.
    pub held_handles: Vec<FileHandle>,
    stats: ProgStats,
}

impl WorkloadProgram {
    /// Creates a not-yet-started program.
    pub fn new(profile: ProgramProfile, env: ExecEnv) -> Self {
        WorkloadProgram {
            profile,
            env,
            step: Step::Embryonic,
            sampler: None,
            response_times: Samples::new(),
            held_handles: Vec::new(),
            stats: ProgStats::default(),
        }
    }

    /// The profile this instance runs.
    pub fn profile(&self) -> &ProgramProfile {
        &self.profile
    }

    /// The environment block.
    pub fn env(&self) -> &ExecEnv {
        &self.env
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &ProgStats {
        &self.stats
    }

    /// True once the program has exited.
    pub fn finished(&self) -> bool {
        matches!(self.step, Step::Finished)
    }

    /// Delivers CPU time: the WWS sampler issues the page writes this
    /// quantum implies. Called by the runtime while a [`ProgAction::Compute`]
    /// is being serviced.
    pub fn on_cpu(&mut self, dt: SimDuration, space: &mut AddressSpace, rng: &mut DetRng) {
        self.stats.cpu_micros += dt.as_micros();
        let sampler = self
            .sampler
            .get_or_insert_with(|| WwsSampler::new(self.profile.wws, space, rng));
        sampler.advance(dt, space, rng);
    }

    /// Advances the state machine: given `event`, produce the next action.
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (an event that cannot occur in the
    /// current step), which indicate runtime bugs.
    pub fn next(&mut self, now: SimTime, event: ProgEvent, rng: &mut DetRng) -> ProgAction {
        let step = std::mem::replace(&mut self.step, Step::Finished);
        match (step, event) {
            (Step::Embryonic, ProgEvent::Started) => {
                self.step = Step::InPhase {
                    idx: 0,
                    sub: PhaseSub::Enter,
                };
                self.enter_phase(now, rng)
            }
            (Step::InPhase { idx, sub }, ev) => {
                // Restore the step; `step_phase` updates the sub-state via
                // `set_sub` as it progresses.
                self.step = Step::InPhase {
                    idx,
                    sub: PhaseSub::Enter,
                };
                match self.step_phase(idx, sub, ev, now, rng) {
                    StepOutcome::Action(a) => a,
                    StepOutcome::PhaseDone => {
                        let next = idx + 1;
                        if next >= self.profile.phases.len() {
                            self.step = Step::Finished;
                            ProgAction::Exit
                        } else {
                            self.step = Step::InPhase {
                                idx: next,
                                sub: PhaseSub::Enter,
                            };
                            self.enter_phase(now, rng)
                        }
                    }
                }
            }
            (Step::Finished, _) => ProgAction::Exit,
            (step, ev) => panic!("program protocol violation: {ev:?} in {step:?}"),
        }
    }

    fn current_phase(&self, idx: usize) -> &Phase {
        &self.profile.phases[idx]
    }

    fn enter_phase(&mut self, _now: SimTime, rng: &mut DetRng) -> ProgAction {
        let Step::InPhase { idx, sub } = &mut self.step else {
            unreachable!("enter_phase outside a phase");
        };
        let idx = *idx;
        match self.profile.phases[idx].clone() {
            Phase::Compute(d) => {
                *sub = PhaseSub::Computing;
                ProgAction::Compute(d)
            }
            Phase::Sleep(d) => {
                *sub = PhaseSub::Computing; // Reuse: next SleepDone finishes.
                ProgAction::Sleep(d)
            }
            Phase::FileRead { name, .. } | Phase::FileWrite { name, .. } => {
                *sub = PhaseSub::Opening;
                let fs = self
                    .env
                    .file_server()
                    .expect("file phase without a file server in the name cache");
                ProgAction::Send {
                    to: fs.into(),
                    body: ServiceMsg::Open { name, create: true },
                    data_bytes: 0,
                    register_child: None,
                }
            }
            Phase::Display { chars } => {
                *sub = PhaseSub::DisplayWait;
                let d = self
                    .env
                    .display()
                    .expect("display phase without a display in the name cache");
                self.stats.display_chars += chars;
                ProgAction::Send {
                    to: d.into(),
                    body: ServiceMsg::WriteChars { count: chars },
                    data_bytes: chars,
                    register_child: None,
                }
            }
            Phase::OpenAndHold { name } => {
                *sub = PhaseSub::Opening;
                let fs = self
                    .env
                    .file_server()
                    .expect("file phase without a file server in the name cache");
                ProgAction::Send {
                    to: fs.into(),
                    body: ServiceMsg::Open { name, create: true },
                    data_bytes: 0,
                    register_child: None,
                }
            }
            Phase::SpawnAndWait { .. } => {
                *sub = PhaseSub::Spawn(SpawnStep::Query);
                ProgAction::Send {
                    to: GroupId::PROGRAM_MANAGERS.into(),
                    body: ServiceMsg::QueryHost {
                        host_name: None,
                        exclude_hosts: Vec::new(),
                    },
                    data_bytes: 0,
                    register_child: None,
                }
            }
            Phase::Interactive { mean_gap, .. } => {
                *sub = PhaseSub::Thinking { done: 0 };
                ProgAction::Sleep(SimDuration::from_secs_f64(
                    rng.exp_f64(mean_gap.as_secs_f64()),
                ))
            }
        }
    }

    fn step_phase(
        &mut self,
        idx: usize,
        sub: PhaseSub,
        ev: ProgEvent,
        now: SimTime,
        rng: &mut DetRng,
    ) -> StepOutcome {
        use StepOutcome::{Action, PhaseDone};
        let phase = self.current_phase(idx).clone();
        match (phase, sub, ev) {
            (Phase::Compute(_), PhaseSub::Computing, ProgEvent::CpuDone) => PhaseDone,
            (Phase::Sleep(_), PhaseSub::Computing, ProgEvent::SleepDone) => PhaseDone,

            // --- Open-and-hold (§3.3 demonstration). ---
            (
                Phase::OpenAndHold { .. },
                PhaseSub::Opening,
                ProgEvent::Reply(ServiceMsg::Opened { handle, .. }),
            ) => {
                self.held_handles.push(handle);
                PhaseDone
            }

            // --- File transfer. ---
            (
                Phase::FileRead { bytes, .. } | Phase::FileWrite { bytes, .. },
                PhaseSub::Opening,
                ProgEvent::Reply(ServiceMsg::Opened { handle, .. }),
            ) => {
                let sub = PhaseSub::Transferring {
                    handle,
                    left: bytes,
                };
                self.set_sub(sub);
                Action(self.transfer_step(idx, handle, bytes))
            }
            (
                Phase::FileRead { chunk, .. },
                PhaseSub::Transferring { handle, left },
                ProgEvent::Reply(ServiceMsg::ReadDone { bytes }),
            ) => {
                self.stats.file_bytes_read += bytes;
                let left = left.saturating_sub(chunk.min(left)).min(
                    // A short read (EOF) ends the transfer early.
                    if bytes < chunk { 0 } else { u64::MAX },
                );
                self.finish_or_continue_transfer(idx, handle, left)
            }
            (
                Phase::FileWrite { chunk, .. },
                PhaseSub::Transferring { handle, left },
                ProgEvent::Reply(ServiceMsg::WriteDone),
            ) => {
                let step = chunk.min(left);
                self.stats.file_bytes_written += step;
                let left = left - step;
                self.finish_or_continue_transfer(idx, handle, left)
            }
            (
                Phase::FileRead { .. } | Phase::FileWrite { .. },
                PhaseSub::Closing,
                ProgEvent::Reply(_),
            ) => PhaseDone,

            // --- Display. ---
            (Phase::Display { .. }, PhaseSub::DisplayWait, ProgEvent::Reply(_)) => PhaseDone,

            // --- Interactive editing. ---
            (
                Phase::Interactive { burst, .. },
                PhaseSub::Thinking { done },
                ProgEvent::SleepDone,
            ) => {
                self.set_sub(PhaseSub::Bursting {
                    done,
                    keystroke_at: now,
                });
                Action(ProgAction::Compute(burst))
            }
            (
                Phase::Interactive { .. },
                PhaseSub::Bursting { done, keystroke_at },
                ProgEvent::CpuDone,
            ) => {
                self.set_sub(PhaseSub::Echoing { done, keystroke_at });
                let d = self.env.display().expect("interactive needs a display");
                self.stats.display_chars += 1;
                Action(ProgAction::Send {
                    to: d.into(),
                    body: ServiceMsg::WriteChars { count: 1 },
                    data_bytes: 1,
                    register_child: None,
                })
            }
            (
                Phase::Interactive {
                    mean_gap, count, ..
                },
                PhaseSub::Echoing { done, keystroke_at },
                ProgEvent::Reply(_),
            ) => {
                self.response_times
                    .add(now.since(keystroke_at).as_secs_f64());
                let done = done + 1;
                if done >= count {
                    PhaseDone
                } else {
                    self.set_sub(PhaseSub::Thinking { done });
                    Action(ProgAction::Sleep(SimDuration::from_secs_f64(
                        rng.exp_f64(mean_gap.as_secs_f64()),
                    )))
                }
            }

            // --- Subprogram decomposition (§2). ---
            (
                Phase::SpawnAndWait { profile },
                PhaseSub::Spawn(SpawnStep::Query),
                ProgEvent::Reply(ServiceMsg::HostCandidate { pm, .. }),
            ) => {
                self.set_sub(PhaseSub::Spawn(SpawnStep::Create { pm }));
                let spec = vservices::ProgramSpec {
                    image: profile.name.clone(),
                    args: Vec::new(),
                    priority: vkernel::Priority::GUEST,
                    env: self.env.clone(),
                };
                Action(ProgAction::Send {
                    to: pm.into(),
                    body: ServiceMsg::CreateProgram(Box::new(spec)),
                    data_bytes: 0,
                    register_child: Some(profile),
                })
            }
            (
                Phase::SpawnAndWait { .. },
                PhaseSub::Spawn(SpawnStep::Create { pm }),
                ProgEvent::Reply(ServiceMsg::ProgramCreated { root, lh, .. }),
            ) => {
                self.set_sub(PhaseSub::Spawn(SpawnStep::Start { child: lh }));
                Action(ProgAction::Send {
                    to: pm.into(),
                    body: ServiceMsg::StartProgram { root },
                    data_bytes: 512,
                    register_child: None,
                })
            }
            (
                Phase::SpawnAndWait { .. },
                PhaseSub::Spawn(SpawnStep::Start { child, .. }),
                ProgEvent::Reply(reply),
            ) if reply.is_ok() => {
                self.set_sub(PhaseSub::Spawn(SpawnStep::Wait { child }));
                // Address "the manager of whatever host runs the child" —
                // robust against the child itself migrating.
                Action(ProgAction::Send {
                    to: Destination::Group(GroupId::program_manager_of(child)),
                    body: ServiceMsg::WaitProgram { lh: child },
                    data_bytes: 0,
                    register_child: None,
                })
            }
            (
                Phase::SpawnAndWait { .. },
                PhaseSub::Spawn(SpawnStep::Wait { child }),
                ProgEvent::Reply(reply),
            ) => {
                if reply.is_ok() {
                    PhaseDone
                } else {
                    // The child migrated out from under its old manager;
                    // re-issue the wait, which re-routes to the new host.
                    self.set_sub(PhaseSub::Spawn(SpawnStep::Wait { child }));
                    Action(ProgAction::Send {
                        to: Destination::Group(GroupId::program_manager_of(child)),
                        body: ServiceMsg::WaitProgram { lh: child },
                        data_bytes: 0,
                        register_child: None,
                    })
                }
            }

            // --- Failures: count and end the phase. ---
            (_, _, ProgEvent::SendFailed) => {
                self.stats.send_failures += 1;
                PhaseDone
            }
            (phase, sub, ev) => {
                panic!("program protocol violation: {ev:?} in phase {phase:?} / {sub:?}")
            }
        }
    }

    fn transfer_step(&self, idx: usize, handle: FileHandle, left: u64) -> ProgAction {
        match self.current_phase(idx) {
            Phase::FileRead { chunk, .. } => ProgAction::Send {
                to: self.env.file_server().expect("checked at open").into(),
                body: ServiceMsg::Read {
                    handle,
                    bytes: (*chunk).min(left),
                },
                data_bytes: 0,
                register_child: None,
            },
            Phase::FileWrite { chunk, .. } => {
                let n = (*chunk).min(left);
                ProgAction::Send {
                    to: self.env.file_server().expect("checked at open").into(),
                    body: ServiceMsg::Write { handle, bytes: n },
                    data_bytes: n,
                    register_child: None,
                }
            }
            other => unreachable!("transfer step in non-file phase {other:?}"),
        }
    }

    fn finish_or_continue_transfer(
        &mut self,
        idx: usize,
        handle: FileHandle,
        left: u64,
    ) -> StepOutcome {
        if left == 0 {
            self.set_sub(PhaseSub::Closing);
            StepOutcome::Action(ProgAction::Send {
                to: self.env.file_server().expect("checked at open").into(),
                body: ServiceMsg::Close { handle },
                data_bytes: 0,
                register_child: None,
            })
        } else {
            self.set_sub(PhaseSub::Transferring { handle, left });
            StepOutcome::Action(self.transfer_step(idx, handle, left))
        }
    }

    fn set_sub(&mut self, new_sub: PhaseSub) {
        if let Step::InPhase { sub, .. } = &mut self.step {
            *sub = new_sub;
        }
    }
}

enum StepOutcome {
    Action(ProgAction),
    PhaseDone,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::LogicalHostId;
    use vmem::SpaceId;

    fn env() -> ExecEnv {
        ExecEnv::standard(
            ProcessId::new(LogicalHostId(1), 20),
            ProcessId::new(LogicalHostId(2), 16),
        )
    }

    fn wws() -> WwsParams {
        WwsParams {
            hot_kb: 10.0,
            hot_write_kb_per_sec: 100.0,
            cold_kb_per_sec: 5.0,
        }
    }

    #[test]
    fn compute_only_program_runs_and_exits() {
        let p = ProgramProfile::steady("t", SpaceLayout::tiny(), wws(), SimDuration::from_secs(1));
        let mut prog = WorkloadProgram::new(p, env());
        let mut rng = DetRng::seed(1);
        let a = prog.next(SimTime::ZERO, ProgEvent::Started, &mut rng);
        assert!(matches!(a, ProgAction::Compute(d) if d == SimDuration::from_secs(1)));
        let a = prog.next(SimTime::ZERO, ProgEvent::CpuDone, &mut rng);
        assert!(matches!(a, ProgAction::Exit));
        assert!(prog.finished());
    }

    #[test]
    fn on_cpu_dirties_pages() {
        let layout = SpaceLayout {
            code_bytes: 0,
            init_data_bytes: 0,
            heap_bytes: 256 * 1024,
            stack_bytes: 0,
        };
        let p = ProgramProfile::steady("t", layout, wws(), SimDuration::from_secs(1));
        let mut prog = WorkloadProgram::new(p, env());
        let mut rng = DetRng::seed(2);
        let mut space = AddressSpace::new(SpaceId(0), layout);
        prog.on_cpu(SimDuration::from_secs(1), &mut space, &mut rng);
        assert!(space.dirty_pages() > 0);
        assert_eq!(prog.stats().cpu_micros, 1_000_000);
    }

    #[test]
    fn file_read_phase_protocol() {
        let profile = ProgramProfile {
            name: "reader".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![Phase::FileRead {
                name: "input.c".into(),
                bytes: 70,
                chunk: 32,
            }],
        };
        let mut prog = WorkloadProgram::new(profile, env());
        let mut rng = DetRng::seed(3);
        let t = SimTime::ZERO;

        // Open.
        let a = prog.next(t, ProgEvent::Started, &mut rng);
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Open { .. },
                ..
            }
        ));
        // Three reads: 32 + 32 + 6.
        let h = FileHandle(7);
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::Opened {
                handle: h,
                size: 70,
            }),
            &mut rng,
        );
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Read { bytes: 32, .. },
                ..
            }
        ));
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::ReadDone { bytes: 32 }),
            &mut rng,
        );
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Read { bytes: 32, .. },
                ..
            }
        ));
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::ReadDone { bytes: 32 }),
            &mut rng,
        );
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Read { bytes: 6, .. },
                ..
            }
        ));
        // Short read closes.
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::ReadDone { bytes: 6 }),
            &mut rng,
        );
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Close { .. },
                ..
            }
        ));
        let a = prog.next(t, ProgEvent::Reply(ServiceMsg::Ok), &mut rng);
        assert!(matches!(a, ProgAction::Exit));
        assert_eq!(prog.stats().file_bytes_read, 70);
    }

    #[test]
    fn write_phase_counts_bytes() {
        let profile = ProgramProfile {
            name: "writer".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![Phase::FileWrite {
                name: "out.o".into(),
                bytes: 50,
                chunk: 32,
            }],
        };
        let mut prog = WorkloadProgram::new(profile, env());
        let mut rng = DetRng::seed(4);
        let t = SimTime::ZERO;
        prog.next(t, ProgEvent::Started, &mut rng);
        let h = FileHandle(1);
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::Opened { handle: h, size: 0 }),
            &mut rng,
        );
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Write { bytes: 32, .. },
                data_bytes: 32,
                ..
            }
        ));
        prog.next(t, ProgEvent::Reply(ServiceMsg::WriteDone), &mut rng);
        let a = prog.next(t, ProgEvent::Reply(ServiceMsg::WriteDone), &mut rng);
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Close { .. },
                ..
            }
        ));
        assert_eq!(prog.stats().file_bytes_written, 50);
    }

    #[test]
    fn interactive_phase_measures_response_times() {
        let profile = ProgramProfile {
            name: "edit".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![Phase::Interactive {
                mean_gap: SimDuration::from_millis(500),
                burst: SimDuration::from_millis(5),
                count: 2,
            }],
        };
        let mut prog = WorkloadProgram::new(profile, env());
        let mut rng = DetRng::seed(5);
        let mut t = SimTime::ZERO;

        let a = prog.next(t, ProgEvent::Started, &mut rng);
        assert!(matches!(a, ProgAction::Sleep(_)));
        t += SimDuration::from_millis(400);
        let a = prog.next(t, ProgEvent::SleepDone, &mut rng);
        assert!(matches!(a, ProgAction::Compute(_)));
        t += SimDuration::from_millis(5);
        let a = prog.next(t, ProgEvent::CpuDone, &mut rng);
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::WriteChars { count: 1 },
                ..
            }
        ));
        t += SimDuration::from_millis(2);
        let a = prog.next(t, ProgEvent::Reply(ServiceMsg::Ok), &mut rng);
        assert!(matches!(a, ProgAction::Sleep(_)), "second keystroke");
        // Response time = 5 ms burst + 2 ms echo = 7 ms.
        assert_eq!(prog.response_times.count(), 1);
        assert!((prog.response_times.values()[0] - 0.007).abs() < 1e-9);
    }

    #[test]
    fn open_and_hold_keeps_handle() {
        let profile = ProgramProfile {
            name: "holder".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![
                Phase::OpenAndHold {
                    name: "tmp/x".into(),
                },
                Phase::Compute(SimDuration::from_millis(1)),
            ],
        };
        let mut prog = WorkloadProgram::new(profile, env());
        let mut rng = DetRng::seed(9);
        let t = SimTime::ZERO;
        let a = prog.next(t, ProgEvent::Started, &mut rng);
        assert!(matches!(
            a,
            ProgAction::Send {
                body: ServiceMsg::Open { .. },
                ..
            }
        ));
        let a = prog.next(
            t,
            ProgEvent::Reply(ServiceMsg::Opened {
                handle: FileHandle(3),
                size: 0,
            }),
            &mut rng,
        );
        assert!(matches!(a, ProgAction::Compute(_)), "no Close issued");
        assert_eq!(prog.held_handles, vec![FileHandle(3)]);
    }

    #[test]
    fn send_failure_skips_phase() {
        let profile = ProgramProfile {
            name: "p".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![
                Phase::Display { chars: 10 },
                Phase::Compute(SimDuration::from_millis(1)),
            ],
        };
        let mut prog = WorkloadProgram::new(profile, env());
        let mut rng = DetRng::seed(6);
        let t = SimTime::ZERO;
        prog.next(t, ProgEvent::Started, &mut rng);
        let a = prog.next(t, ProgEvent::SendFailed, &mut rng);
        assert!(matches!(a, ProgAction::Compute(_)));
        assert_eq!(prog.stats().send_failures, 1);
    }

    #[test]
    fn total_cpu_sums_compute_and_interactive() {
        let profile = ProgramProfile {
            name: "p".into(),
            layout: SpaceLayout::tiny(),
            wws: wws(),
            phases: vec![
                Phase::Compute(SimDuration::from_secs(2)),
                Phase::Interactive {
                    mean_gap: SimDuration::from_millis(500),
                    burst: SimDuration::from_millis(10),
                    count: 100,
                },
            ],
        };
        assert_eq!(profile.total_cpu(), SimDuration::from_secs(3));
    }
}
