//! The paper's measured programs.
//!
//! Table 4-1 reports, for eight programs, the average KB of dirty pages
//! generated over 0.2 s, 1 s and 3 s windows. Those three points per
//! program pin the WWS model parameters; address-space layouts and phase
//! structure are plausible reconstructions (documented in DESIGN.md) —
//! what matters for the reproduction is the *dirtying behaviour*, which is
//! fitted, and the image sizes, which set load/migration costs.

use vmem::{SpaceLayout, WwsParams};
use vsim::SimDuration;

use crate::program::{Phase, ProgramProfile};

/// One row of Table 4-1: program name and dirty KB at 0.2 / 1 / 3 s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table41Row {
    /// Program name as printed in the paper.
    pub name: &'static str,
    /// Dirty KB generated in 0.2 s.
    pub at_0_2s: f64,
    /// Dirty KB generated in 1 s.
    pub at_1s: f64,
    /// Dirty KB generated in 3 s.
    pub at_3s: f64,
}

impl Table41Row {
    /// The row as `(window_secs, dirty_kb)` fit points.
    pub fn points(&self) -> [(f64, f64); 3] {
        [(0.2, self.at_0_2s), (1.0, self.at_1s), (3.0, self.at_3s)]
    }

    /// Fits the WWS parameters to this row, page-quantization-aware (the
    /// sampler dirties whole 2 KB pages, which matters for the sub-page
    /// `make` and `cc68` rows).
    pub fn fit(&self) -> WwsParams {
        WwsParams::fit_quantized(&self.points(), vsim::calib::PAGE_BYTES as f64 / 1024.0)
    }
}

/// Table 4-1 of the paper, verbatim.
pub const TABLE_4_1: [Table41Row; 8] = [
    Table41Row {
        name: "make",
        at_0_2s: 0.8,
        at_1s: 1.8,
        at_3s: 4.2,
    },
    Table41Row {
        name: "cc68",
        at_0_2s: 0.6,
        at_1s: 2.2,
        at_3s: 6.2,
    },
    Table41Row {
        name: "preprocessor",
        at_0_2s: 25.0,
        at_1s: 40.2,
        at_3s: 59.6,
    },
    Table41Row {
        name: "parser",
        at_0_2s: 50.0,
        at_1s: 76.8,
        at_3s: 109.4,
    },
    Table41Row {
        name: "optimizer",
        at_0_2s: 19.8,
        at_1s: 32.2,
        at_3s: 41.0,
    },
    Table41Row {
        name: "assembler",
        at_0_2s: 21.6,
        at_1s: 33.4,
        at_3s: 48.4,
    },
    Table41Row {
        name: "linking loader",
        at_0_2s: 25.0,
        at_1s: 39.2,
        at_3s: 37.8,
    },
    Table41Row {
        name: "tex",
        at_0_2s: 68.6,
        at_1s: 111.6,
        at_3s: 142.8,
    },
];

const KB: u64 = 1024;

/// Reconstructed address-space layout for a Table 4-1 program.
///
/// Sizes are plausible for 1985 SUN binaries; the heap is generous enough
/// that the fitted cold sweep does not wrap within the paper's longest
/// measurement window.
pub fn layout_for(name: &str) -> SpaceLayout {
    let (code, idata, heap, stack) = match name {
        "make" => (48, 8, 128, 16),
        "cc68" => (32, 4, 64, 16),
        "preprocessor" => (80, 16, 256, 16),
        "parser" => (160, 32, 512, 16),
        "optimizer" => (120, 16, 384, 16),
        "assembler" => (96, 16, 320, 16),
        "linking loader" => (80, 16, 448, 16),
        "tex" => (400, 64, 700, 32),
        _ => (64, 8, 256, 16),
    };
    SpaceLayout {
        code_bytes: code * KB,
        init_data_bytes: idata * KB,
        heap_bytes: heap * KB,
        stack_bytes: stack * KB,
    }
}

/// CPU a typical run of the program consumes (reconstruction; the paper's
/// remark that users offload "non-interactive programs with non-trivial
/// running times" sets the scale).
pub fn cpu_for(name: &str) -> SimDuration {
    SimDuration::from_secs(match name {
        "make" => 20,
        "cc68" => 15,
        "preprocessor" => 8,
        "parser" => 15,
        "optimizer" => 12,
        "assembler" => 10,
        "linking loader" => 8,
        "tex" => 60,
        _ => 10,
    })
}

/// Steady-compute profile for one Table 4-1 program (used by the dirty-
/// rate measurement, where only the compute behaviour matters).
pub fn steady_profile(row: &Table41Row) -> ProgramProfile {
    ProgramProfile::steady(row.name, layout_for(row.name), row.fit(), cpu_for(row.name))
}

/// All eight steady profiles.
pub fn table_4_1_profiles() -> Vec<ProgramProfile> {
    TABLE_4_1.iter().map(steady_profile).collect()
}

/// A realistic compiler-pass profile: read source, compute, write output.
pub fn realistic_profile(row: &Table41Row) -> ProgramProfile {
    let name = row.name;
    let cpu = cpu_for(name);
    let phases = vec![
        Phase::FileRead {
            name: format!("{name}.in"),
            bytes: 40 * KB,
            chunk: 8 * KB,
        },
        Phase::Compute(cpu / 2),
        Phase::Display { chars: 80 },
        Phase::Compute(cpu / 2),
        Phase::FileWrite {
            name: format!("{name}.out"),
            bytes: 60 * KB,
            chunk: 8 * KB,
        },
        Phase::Display { chars: 40 },
    ];
    ProgramProfile {
        name: name.to_string(),
        layout: layout_for(name),
        wws: row.fit(),
        phases,
    }
}

/// The interactive text-editing user of §2 ("the most common activity is
/// editing files").
pub fn editor_profile(keystrokes: u64) -> ProgramProfile {
    ProgramProfile {
        name: "edit".into(),
        layout: SpaceLayout {
            code_bytes: 96 * KB,
            init_data_bytes: 16 * KB,
            heap_bytes: 192 * KB,
            stack_bytes: 16 * KB,
        },
        wws: WwsParams {
            hot_kb: 6.0,
            hot_write_kb_per_sec: 30.0,
            cold_kb_per_sec: 0.5,
        },
        phases: vec![Phase::Interactive {
            mean_gap: SimDuration::from_millis(400),
            burst: SimDuration::from_millis(5),
            count: keystrokes,
        }],
    }
}

/// A long-running simulation job — the §4.3 use case that most benefits
/// from preemptable remote execution.
pub fn simulation_profile(cpu: SimDuration) -> ProgramProfile {
    ProgramProfile {
        name: "simulate".into(),
        layout: SpaceLayout {
            code_bytes: 128 * KB,
            init_data_bytes: 32 * KB,
            heap_bytes: 900 * KB,
            stack_bytes: 16 * KB,
        },
        wws: WwsParams {
            hot_kb: 90.0,
            hot_write_kb_per_sec: 400.0,
            cold_kb_per_sec: 4.0,
        },
        phases: vec![Phase::Compute(cpu)],
    }
}

/// The real `cc68` of the paper: a control program that runs its five
/// passes — preprocessor, parser, optimizer, assembler, linking loader —
/// as separate subprograms, each placed on an idle host by the `@*`
/// machinery and awaited (§4.1 footnote, §2 "truly distributed
/// programs").
pub fn cc68_pipeline() -> ProgramProfile {
    let control = row("cc68").expect("cc68 row");
    let passes = [
        "preprocessor",
        "parser",
        "optimizer",
        "assembler",
        "linking loader",
    ];
    let mut phases = Vec::new();
    for pass in passes {
        let r = row(pass).expect("pass row");
        phases.push(Phase::SpawnAndWait {
            profile: Box::new(steady_profile(r)),
        });
        // The control program does a little bookkeeping between passes.
        phases.push(Phase::Compute(SimDuration::from_millis(200)));
    }
    ProgramProfile {
        name: "cc68".into(),
        layout: layout_for("cc68"),
        wws: control.fit(),
        phases,
    }
}

/// Row lookup by name.
pub fn row(name: &str) -> Option<&'static Table41Row> {
    TABLE_4_1.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_fit_reasonably() {
        let page_kb = vsim::calib::PAGE_BYTES as f64 / 1024.0;
        for r in &TABLE_4_1 {
            let fit = r.fit();
            let rms = {
                let sum: f64 = r
                    .points()
                    .iter()
                    .map(|&(t, y)| {
                        let e = (fit.expected_dirty_kb_quantized(t, page_kb) - y) / y;
                        e * e
                    })
                    .sum();
                (sum / 3.0).sqrt()
            };
            // Sub-page rows (make, cc68) collide with 2 KB page
            // granularity; the non-monotone linking-loader row cannot fit
            // a monotone model exactly.
            let bound = match r.name {
                "make" | "cc68" => 0.30,
                "linking loader" => 0.15,
                _ => 0.06,
            };
            assert!(rms < bound, "{}: rms {:.3} with {:?}", r.name, rms, fit);
        }
    }

    #[test]
    fn heaps_fit_the_cold_sweep() {
        // The fitted hot set + 3 s of cold sweep must fit in the heap,
        // or Table 4-1 measurements would saturate artificially.
        for r in &TABLE_4_1 {
            let fit = r.fit();
            let need_kb = fit.hot_kb + fit.cold_kb_per_sec * 3.0;
            let heap_kb = layout_for(r.name).heap_bytes as f64 / 1024.0;
            assert!(
                heap_kb > need_kb * 1.2,
                "{}: heap {heap_kb} KB vs needed {need_kb:.0} KB",
                r.name
            );
        }
    }

    #[test]
    fn layouts_fit_in_workstation_memory() {
        for r in &TABLE_4_1 {
            assert!(
                layout_for(r.name).total_bytes() < 1536 * 1024,
                "{} image too large for a 2 MB workstation",
                r.name
            );
        }
    }

    #[test]
    fn steady_profiles_are_single_phase() {
        for p in table_4_1_profiles() {
            assert_eq!(p.phases.len(), 1);
            assert!(matches!(p.phases[0], Phase::Compute(_)));
        }
    }

    #[test]
    fn realistic_profile_has_io() {
        let p = realistic_profile(row("parser").expect("row exists"));
        assert!(p
            .phases
            .iter()
            .any(|ph| matches!(ph, Phase::FileRead { .. })));
        assert!(p
            .phases
            .iter()
            .any(|ph| matches!(ph, Phase::FileWrite { .. })));
        assert_eq!(p.total_cpu(), cpu_for("parser"));
    }

    #[test]
    fn expected_dirty_matches_table_within_tolerance() {
        // The fitted model evaluated at the table's windows reproduces the
        // table (the measurement harness then verifies the *sampled*
        // behaviour matches too).
        let page_kb = vsim::calib::PAGE_BYTES as f64 / 1024.0;
        for r in &TABLE_4_1 {
            if matches!(r.name, "linking loader" | "make" | "cc68") {
                continue; // Non-monotone / sub-page rows: looser bounds
                          // covered by all_rows_fit_reasonably.
            }
            let fit = r.fit();
            for (t, y) in r.points() {
                let pred = fit.expected_dirty_kb_quantized(t, page_kb);
                let rel = (pred - y).abs() / y;
                assert!(
                    rel < 0.10,
                    "{} at {t}s: predicted {pred:.1} vs table {y:.1}",
                    r.name
                );
            }
        }
    }
}
