//! Service-level tests: the program manager and file server driven over
//! the kernel test rig, without the full cluster runtime.

use vkernel::testkit::{AppEvent, Rig};
use vkernel::{GroupId, LogicalHostId, MsgIn, Priority, ProcessId, SendSeq, PROGRAM_MANAGER_INDEX};
use vmem::SpaceLayout;
use vservices::{
    AcceptPolicy, DisplayServer, ExecEnv, FileServer, ProgramManager, ProgramSpec, ServiceMsg,
    SvcEvent, SvcOutputs, SvcToken,
};
use vsim::SimTime;

type SRig = Rig<ServiceMsg>;

/// A one-workstation stand: kernel 0 runs a PM, a FS and a display in a
/// system logical host; this driver pumps their timers by hand.
struct Stand {
    rig: SRig,
    pm: ProgramManager,
    fs: FileServer,
    display: DisplayServer,
    client: ProcessId,
    timers: Vec<(Who, SvcToken, SimTime)>,
    events: Vec<SvcEvent>,
    /// Send completions observed for non-service processes.
    completions: Vec<(ProcessId, bool)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Who {
    Pm,
    Fs,
    Display,
}

impl Stand {
    fn new() -> Self {
        let mut rig: SRig = Rig::new(1);
        let (pm_pid, fs_pid, disp_pid, client) = {
            let l = rig.kernel_mut(0).create_logical_host(LogicalHostId(1));
            let team = l.create_space(SpaceLayout::tiny());
            let pm = l.create_process(team, Priority::SYSTEM, false);
            let fs = l.create_process(team, Priority::SYSTEM, false);
            let d = l.create_process(team, Priority::SYSTEM, false);
            let c = l.create_process(team, Priority::LOCAL, false);
            (pm, fs, d, c)
        };
        rig.kernel_mut(0)
            .register_well_known(PROGRAM_MANAGER_INDEX, pm_pid);
        let mut fs = FileServer::new(fs_pid);
        fs.add_image(
            "job",
            SpaceLayout {
                code_bytes: 64 * 1024,
                init_data_bytes: 16 * 1024,
                heap_bytes: 128 * 1024,
                stack_bytes: 16 * 1024,
            },
        );
        let pm = ProgramManager::new(
            pm_pid,
            vnet::HostAddr(0),
            "stand",
            fs_pid,
            10_000,
            AcceptPolicy::default(),
        );
        Stand {
            rig,
            pm,
            fs,
            display: DisplayServer::new(disp_pid),
            client,
            timers: Vec::new(),
            events: Vec::new(),
            completions: Vec::new(),
        }
    }

    /// Sends `body` from the test client to `to` and pumps to quiescence.
    fn send(&mut self, to: ProcessId, body: ServiceMsg) {
        let client = self.client;
        self.rig
            .drive(0, move |k, t| k.send(t, client, to.into(), body, 0));
        self.pump();
    }

    /// Pumps kernel events, routing service deliveries/timers until idle.
    fn pump(&mut self) {
        loop {
            self.rig.run_until(SimTime::MAX);
            // Route any undelivered service requests from the rig log.
            let mut progressed = false;
            let deliveries: Vec<MsgIn<ServiceMsg>> = {
                let mut v = Vec::new();
                let mut log = std::mem::take(&mut self.rig.log);
                progressed |= !log.is_empty();
                for (_, e) in log.drain(..) {
                    if let AppEvent::Delivered(m) = e {
                        v.push(m);
                    } else if let AppEvent::SendDone { pid, seq, result } = e {
                        if pid == self.pm.pid() {
                            let now = self.rig.engine.now();
                            let outs = {
                                let k = self.rig.kernel_mut(0);
                                self.pm.handle_send_done(now, seq, result, k)
                            };
                            self.absorb(Who::Pm, outs);
                        } else {
                            self.completions.push((pid, result.is_ok()));
                        }
                    } else if let AppEvent::CopyDone { xfer, result, .. } = e {
                        let now = self.rig.engine.now();
                        let outs = {
                            let k = self.rig.kernel_mut(0);
                            self.fs.handle_copy_done(now, xfer, result, k)
                        };
                        self.absorb(Who::Fs, outs);
                    }
                }
                v
            };
            for m in deliveries {
                let now = self.rig.engine.now();
                let who = if m.to == self.pm.pid() {
                    Who::Pm
                } else if m.to == self.fs.pid() {
                    Who::Fs
                } else if m.to == self.display.pid() {
                    Who::Display
                } else {
                    continue; // Client deliveries have no handler here.
                };
                let outs = {
                    let k = self.rig.kernel_mut(0);
                    match who {
                        Who::Pm => self.pm.handle_request(now, m, k),
                        Who::Fs => self.fs.handle_request(now, m, k),
                        Who::Display => self.display.handle_request(now, m, k),
                    }
                };
                self.absorb(who, outs);
            }
            // Fire the earliest due service timer, if any.
            if let Some(idx) = self
                .timers
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, at))| *at)
                .map(|(i, _)| i)
            {
                let (who, token, at) = self.timers.remove(idx);
                let now = self.rig.engine.now().max(at);
                self.rig.engine.advance_to(now);
                let outs = {
                    let k = self.rig.kernel_mut(0);
                    match who {
                        Who::Pm => self.pm.handle_timer(now, token, k),
                        Who::Fs => self.fs.handle_timer(now, token, k),
                        Who::Display => self.display.handle_timer(now, token, k),
                    }
                };
                self.absorb(who, outs);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    fn absorb(&mut self, who: Who, outs: SvcOutputs) {
        let now = self.rig.engine.now();
        for (token, after) in outs.timers {
            self.timers.push((who, token, now + after));
        }
        self.events.extend(outs.events);
        // Feed kernel outputs back through the rig.
        self.rig.drive(0, move |_k, _t| outs.kernel);
    }

    /// The last reply body the client received.
    fn last_reply(&mut self) -> Option<ServiceMsg> {
        // Replies appear as SendDone for the client in the rig log, which
        // pump() drains — so capture via a fresh scan is impossible;
        // instead run a probe: issue QueryLoad and compare counts. For
        // simplicity the tests below assert on server state instead.
        None
    }
}

#[test]
fn create_start_destroy_lifecycle() {
    let mut s = Stand::new();
    let spec = ProgramSpec {
        image: "job".into(),
        args: vec!["-x".into()],
        priority: Priority::GUEST,
        env: ExecEnv::default(),
    };
    s.send(s.pm.pid(), ServiceMsg::CreateProgram(Box::new(spec)));
    assert_eq!(s.pm.programs().len(), 1, "program registered");
    assert_eq!(s.pm.stats().programs_created, 1);
    assert_eq!(s.fs.stats().images_loaded, 1);
    // 80 KB image (64 code + 16 idata).
    assert_eq!(s.fs.stats().image_bytes, 80 * 1024);

    let (&lh, info) = s.pm.programs().iter().next().expect("one program");
    let root = info.root;
    s.send(s.pm.pid(), ServiceMsg::StartProgram { root });
    assert!(
        s.events
            .iter()
            .any(|e| matches!(e, SvcEvent::ProgramStarted { root: r, .. } if *r == root)),
        "start event emitted"
    );

    s.send(s.pm.pid(), ServiceMsg::DestroyProgram { lh });
    assert_eq!(s.pm.programs().len(), 0);
    assert_eq!(s.pm.stats().programs_destroyed, 1);
    assert!(!s.rig.kernel(0).is_resident(lh), "logical host deleted");
}

#[test]
fn create_unknown_image_fails_cleanly() {
    let mut s = Stand::new();
    let spec = ProgramSpec {
        image: "no-such-image".into(),
        args: Vec::new(),
        priority: Priority::GUEST,
        env: ExecEnv::default(),
    };
    s.send(s.pm.pid(), ServiceMsg::CreateProgram(Box::new(spec)));
    assert_eq!(s.pm.programs().len(), 0);
    assert_eq!(s.pm.stats().programs_created, 0);
    assert_eq!(s.fs.stats().errors, 1, "stat failed at the file server");
}

#[test]
fn query_host_respects_policy() {
    let mut s = Stand::new();
    // Named query for the wrong name: silence.
    s.send(
        s.pm.pid(),
        ServiceMsg::QueryHost {
            host_name: Some("elsewhere".into()),
            exclude_hosts: Vec::new(),
        },
    );
    assert_eq!(s.pm.stats().queries_answered, 0);

    // Named query for our name: answered even when owner is active.
    s.pm.set_owner_active(true);
    s.send(
        s.pm.pid(),
        ServiceMsg::QueryHost {
            host_name: Some("stand".into()),
            exclude_hosts: Vec::new(),
        },
    );
    assert_eq!(s.pm.stats().queries_answered, 1);

    // Generic query from a *resident* client: declined ("some OTHER
    // machine").
    s.send(
        s.pm.pid(),
        ServiceMsg::QueryHost {
            host_name: None,
            exclude_hosts: Vec::new(),
        },
    );
    assert_eq!(s.pm.stats().queries_answered, 1);
    assert!(s.pm.stats().queries_declined >= 1);
}

#[test]
fn list_programs_reports_suspension() {
    let mut s = Stand::new();
    let spec = ProgramSpec {
        image: "job".into(),
        args: Vec::new(),
        priority: Priority::GUEST,
        env: ExecEnv::default(),
    };
    s.send(s.pm.pid(), ServiceMsg::CreateProgram(Box::new(spec)));
    let (&lh, _) = s.pm.programs().iter().next().expect("program");
    s.send(s.pm.pid(), ServiceMsg::SuspendProgram { lh });
    assert!(s
        .rig
        .kernel(0)
        .logical_host(lh)
        .expect("resident")
        .is_frozen());
    s.send(s.pm.pid(), ServiceMsg::ResumeProgram { lh });
    assert!(!s
        .rig
        .kernel(0)
        .logical_host(lh)
        .expect("resident")
        .is_frozen());
    assert!(s
        .events
        .iter()
        .any(|e| matches!(e, SvcEvent::ProgramResumed { lh: l } if *l == lh)));
}

#[test]
fn file_server_sequential_io() {
    let mut s = Stand::new();
    s.fs.add_file("data", 10_000);
    s.send(
        s.fs.pid(),
        ServiceMsg::Open {
            name: "data".into(),
            create: false,
        },
    );
    assert_eq!(s.fs.stats().opens, 1);
    let handle = *s.fs.open_files().next().expect("open file").0;

    s.send(
        s.fs.pid(),
        ServiceMsg::Read {
            handle,
            bytes: 6_000,
        },
    );
    s.send(
        s.fs.pid(),
        ServiceMsg::Read {
            handle,
            bytes: 6_000,
        },
    );
    // Second read is truncated at EOF.
    assert_eq!(s.fs.stats().bytes_read, 10_000);

    s.send(s.fs.pid(), ServiceMsg::Write { handle, bytes: 500 });
    assert_eq!(s.fs.stats().bytes_written, 500);
    assert_eq!(s.fs.file_size("data"), Some(10_500));

    s.send(s.fs.pid(), ServiceMsg::Close { handle });
    assert_eq!(s.fs.open_files().count(), 0);
}

#[test]
fn file_server_rejects_foreign_handles() {
    let mut s = Stand::new();
    s.fs.add_file("data", 100);
    s.send(
        s.fs.pid(),
        ServiceMsg::Open {
            name: "data".into(),
            create: false,
        },
    );
    let handle = *s.fs.open_files().next().expect("open").0;
    // Forge a request from a different process id.
    let intruder = ProcessId::new(LogicalHostId(9), 16);
    let now = s.rig.engine.now();
    let msg = MsgIn {
        to: s.fs.pid(),
        from: intruder,
        seq: SendSeq(999),
        body: ServiceMsg::Read { handle, bytes: 10 },
        data_bytes: 0,
    };
    let outs = {
        let k = s.rig.kernel_mut(0);
        s.fs.handle_request(now, msg, k)
    };
    drop(outs);
    assert_eq!(s.fs.stats().errors, 1, "foreign handle rejected");
    assert_eq!(s.fs.stats().bytes_read, 0);
}

#[test]
fn display_counts_per_client() {
    let mut s = Stand::new();
    s.send(s.display.pid(), ServiceMsg::WriteChars { count: 100 });
    s.send(s.display.pid(), ServiceMsg::WriteChars { count: 20 });
    assert_eq!(s.display.stats().writes, 2);
    assert_eq!(s.display.stats().chars, 120);
    assert_eq!(s.display.chars_from(s.client), 120);
    let other = ProcessId::new(LogicalHostId(5), 16);
    assert_eq!(s.display.chars_from(other), 0);
}

#[test]
fn bad_request_to_wrong_server_is_rejected() {
    let mut s = Stand::new();
    // A file op sent to the display server.
    s.send(
        s.display.pid(),
        ServiceMsg::Open {
            name: "x".into(),
            create: true,
        },
    );
    // And a display op to the PM.
    s.send(s.pm.pid(), ServiceMsg::WriteChars { count: 1 });
    // Neither crashed; both replied Err (observable as zero state change).
    assert_eq!(s.display.stats().writes, 0);
    assert_eq!(s.pm.programs().len(), 0);
    let _ = s.last_reply();
}

#[test]
fn wait_program_blocks_until_destroy() {
    let mut s = Stand::new();
    let spec = ProgramSpec {
        image: "job".into(),
        args: Vec::new(),
        priority: Priority::GUEST,
        env: ExecEnv::default(),
    };
    s.send(s.pm.pid(), ServiceMsg::CreateProgram(Box::new(spec)));
    let (&lh, _) = s.pm.programs().iter().next().expect("program");

    // Issue the wait from a second client process so the destroy can be
    // sent concurrently from the first.
    let waiter = {
        let l = s
            .rig
            .kernel_mut(0)
            .logical_host_mut(LogicalHostId(1))
            .expect("system lh");
        l.create_process(vmem::SpaceId(0), Priority::LOCAL, false)
    };
    s.rig.drive(0, move |k, t| {
        k.send(t, waiter, s_pm_dest(), ServiceMsg::WaitProgram { lh }, 0)
    });
    s.pump();
    // No completion yet: the wait is parked.
    let waits_done = s.completions.iter().filter(|(p, _)| *p == waiter).count();
    assert_eq!(waits_done, 0, "wait still parked");

    s.send(s.pm.pid(), ServiceMsg::DestroyProgram { lh });
    let waits_done: Vec<_> = s.completions.iter().filter(|(p, _)| *p == waiter).collect();
    assert_eq!(waits_done.len(), 1, "wait completed on destroy");
    assert!(waits_done[0].1, "completed successfully");
}

/// Destination helper: the stand's PM via its well-known local group.
fn s_pm_dest() -> vkernel::Destination {
    vkernel::Destination::Group(GroupId::program_manager_of(LogicalHostId(1)))
}

#[test]
fn suspended_programs_defer_process_messages_but_pm_stays_reachable() {
    let mut s = Stand::new();
    let spec = ProgramSpec {
        image: "job".into(),
        args: Vec::new(),
        priority: Priority::GUEST,
        env: ExecEnv::default(),
    };
    s.send(s.pm.pid(), ServiceMsg::CreateProgram(Box::new(spec)));
    let (&lh, info) = s.pm.programs().iter().next().expect("program");
    let root = info.root;
    s.send(s.pm.pid(), ServiceMsg::SuspendProgram { lh });

    // A message to the suspended *process* defers...
    let client = s.client;
    s.rig.drive(0, move |k, t| {
        k.send(t, client, root.into(), ServiceMsg::QueryLoad, 0)
    });
    s.pump();
    assert_eq!(
        s.rig
            .kernel(0)
            .logical_host(lh)
            .expect("resident")
            .deferred_count(),
        1
    );
    // ...while the PM of that logical host remains reachable (that is how
    // the resume arrives).
    s.send(s.pm.pid(), ServiceMsg::ResumeProgram { lh });
    assert!(!s
        .rig
        .kernel(0)
        .logical_host(lh)
        .expect("resident")
        .is_frozen());
}
