//! The display server.
//!
//! §2: "programs perform all 'terminal output' via a display server that
//! remains co-resident with the frame buffer it manages" — it is the
//! canonical example of a server that does *not* migrate, and the reason
//! remotely executed programs stay network-transparent: their output
//! still appears on the user's screen.

use std::collections::BTreeMap;

use vkernel::{Kernel, ProcessId};
use vsim::{SimDuration, SimTime};

use crate::msg::{ServiceMsg, SvcError};
use crate::service::{SvcOutputs, SvcToken};

/// Per-character output cost on the bitmap display (font rendering on the
/// 68010).
pub const DISPLAY_PER_CHAR: SimDuration = SimDuration::from_micros(80);

/// Display-server statistics.
#[derive(Debug, Clone, Default)]
pub struct DisplayStats {
    /// Write requests served.
    pub writes: u64,
    /// Characters rendered.
    pub chars: u64,
}

#[derive(Debug)]
struct PendingWrite {
    requester: ProcessId,
    seq: vkernel::SendSeq,
}

/// A workstation's display server.
pub struct DisplayServer {
    pid: ProcessId,
    pending: BTreeMap<u64, PendingWrite>,
    next_token: u64,
    stats: DisplayStats,
    /// Characters received per client process (for tests and demos).
    per_client: BTreeMap<ProcessId, u64>,
}

impl DisplayServer {
    /// Creates a display server.
    pub fn new(pid: ProcessId) -> Self {
        DisplayServer {
            pid,
            pending: BTreeMap::new(),
            next_token: 0,
            stats: DisplayStats::default(),
            per_client: BTreeMap::new(),
        }
    }

    /// The server's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Statistics.
    pub fn stats(&self) -> &DisplayStats {
        &self.stats
    }

    /// Characters written by one client.
    pub fn chars_from(&self, client: ProcessId) -> u64 {
        self.per_client.get(&client).copied().unwrap_or(0)
    }

    /// Handles a request.
    pub fn handle_request(
        &mut self,
        now: SimTime,
        msg: vkernel::MsgIn<ServiceMsg>,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        match msg.body {
            ServiceMsg::WriteChars { count } => {
                self.stats.writes += 1;
                self.stats.chars += count;
                *self.per_client.entry(msg.from).or_insert(0) += count;
                let t = self.next_token;
                self.next_token += 1;
                self.pending.insert(
                    t,
                    PendingWrite {
                        requester: msg.from,
                        seq: msg.seq,
                    },
                );
                out = out.timer(SvcToken(t), DISPLAY_PER_CHAR * count.max(1));
            }
            _ => {
                out = out.kernel(k.reply(
                    now,
                    self.pid,
                    msg.from,
                    msg.seq,
                    ServiceMsg::Err(SvcError::BadRequest),
                    0,
                ));
            }
        }
        out
    }

    /// Handles a render-delay timer.
    pub fn handle_timer(
        &mut self,
        now: SimTime,
        token: SvcToken,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        if let Some(p) = self.pending.remove(&token.0) {
            out = out.kernel(k.reply(now, self.pid, p.requester, p.seq, ServiceMsg::Ok, 0));
        }
        out
    }
}
