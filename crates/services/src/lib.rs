//! `vservices` — the V servers that live outside the kernel.
//!
//! "All other services provided by the system are implemented by processes
//! running outside the kernel" (§2.1). This crate models the three the
//! remote-execution facility depends on: the per-workstation
//! [`ProgramManager`] (program lifecycle, host-selection queries, the
//! server side of migration), the network [`FileServer`] (diskless program
//! loading at the calibrated 330 ms / 100 KB, ordinary file I/O), and the
//! [`DisplayServer`] (terminal output co-resident with the frame buffer).
//! [`ExecEnv`] models the environment block a creator installs in a new
//! program, and [`ServiceMsg`] is the message protocol they all speak.

mod display;
mod env;
mod file_server;
mod msg;
mod program_manager;
mod service;

pub use display::{DisplayServer, DisplayStats, DISPLAY_PER_CHAR};
pub use env::{ExecEnv, NAME_DISPLAY, NAME_FILE_SERVER};
pub use file_server::{FileServer, FsStats, OpenFile};
pub use msg::{FetchPlan, FileHandle, ProgramSpec, ServiceMsg, SvcError};
pub use program_manager::{
    AcceptPolicy, LeaseConfig, PmStats, ProgramInfo, ProgramManager, TEMP_LH_FLOOR,
};
pub use service::{SvcEvent, SvcOutputs, SvcToken};
