//! Execution environments.
//!
//! §2.1: the requester "initializes the new program space with program
//! arguments, default I/O, and various 'environment variables', including
//! a name cache for commonly used global names". Because the environment
//! lives *in the program's address space* (or points at global servers),
//! it migrates with the program — the paper's §6 principle for avoiding
//! residual dependencies. The name cache binds symbolic names to process
//! ids, which stay valid across migration.

use std::collections::BTreeMap;

use vkernel::ProcessId;

/// Well-known name of the network file server in the default name cache.
pub const NAME_FILE_SERVER: &str = "fileserver";

/// Well-known name of the user's display server.
pub const NAME_DISPLAY: &str = "display";

/// An execution environment block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecEnv {
    /// Environment variables.
    pub vars: BTreeMap<String, String>,
    /// Name cache: symbolic name → server process. Process ids are
    /// location-independent, so these bindings survive migration.
    pub name_cache: BTreeMap<String, ProcessId>,
    /// Standard input/output server (usually the display server of the
    /// workstation the user sits at — which never migrates).
    pub stdio: Option<ProcessId>,
}

impl ExecEnv {
    /// Builds the default environment a command interpreter would install:
    /// stdio on the user's display, and the global file server in the name
    /// cache.
    pub fn standard(display: ProcessId, file_server: ProcessId) -> Self {
        let mut name_cache = BTreeMap::new();
        name_cache.insert(NAME_FILE_SERVER.to_string(), file_server);
        name_cache.insert(NAME_DISPLAY.to_string(), display);
        ExecEnv {
            vars: BTreeMap::new(),
            name_cache,
            stdio: Some(display),
        }
    }

    /// Looks up a server by symbolic name.
    pub fn resolve(&self, name: &str) -> Option<ProcessId> {
        self.name_cache.get(name).copied()
    }

    /// The file server this program uses.
    pub fn file_server(&self) -> Option<ProcessId> {
        self.resolve(NAME_FILE_SERVER)
    }

    /// The display server this program writes to.
    pub fn display(&self) -> Option<ProcessId> {
        self.resolve(NAME_DISPLAY)
    }

    /// Sets an environment variable.
    pub fn set_var(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.vars.insert(key.into(), value.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vkernel::LogicalHostId;

    fn pid(lh: u32, i: u32) -> ProcessId {
        ProcessId::new(LogicalHostId(lh), i)
    }

    #[test]
    fn standard_env_binds_servers() {
        let env = ExecEnv::standard(pid(1, 20), pid(2, 16));
        assert_eq!(env.display(), Some(pid(1, 20)));
        assert_eq!(env.file_server(), Some(pid(2, 16)));
        assert_eq!(env.stdio, Some(pid(1, 20)));
        assert_eq!(env.resolve("nonexistent"), None);
    }

    #[test]
    fn vars_round_trip() {
        let mut env = ExecEnv::default();
        env.set_var("TERM", "sun");
        assert_eq!(env.vars.get("TERM").map(String::as_str), Some("sun"));
        assert_eq!(env.file_server(), None);
    }
}
