//! The program manager.
//!
//! "There is a program manager on each workstation that provides program
//! management for programs executing on that workstation" (§2.1). It
//! belongs to the well-known program-manager group, answers host-selection
//! queries (§2), creates and destroys programs, and hosts the server side
//! of the migration protocol (§3.1): initializing a new copy of a logical
//! host, installing the frozen kernel state, and unfreezing the new copy.
//!
//! The client side of migration — the five-step orchestration — lives in
//! `vcore::migration` and drives this server side over IPC.

use std::collections::BTreeMap;

use vkernel::{
    Destination, GroupId, Kernel, LogicalHostId, Priority, ProcessId, ProcessState, ReplyIn,
    SendError, SendSeq,
};
use vnet::HostAddr;
use vsim::calib::{
    PM_DESTROY_ENVIRONMENT, PM_QUERY_PROCESSING, PM_SETUP_ENVIRONMENT, WORKSTATION_MEMORY_BYTES,
};
use vsim::{Party, ProtocolStep, SimDuration, SimTime};

use crate::msg::{FetchPlan, ProgramSpec, ServiceMsg, SvcError};
use crate::service::{SvcEvent, SvcOutputs, SvcToken};

/// Memory the kernel and resident servers keep for themselves.
const SYSTEM_RESERVED_BYTES: u64 = 256 * 1024;

/// How long an accepted migration may sit half-built before the target
/// reclaims the temporary logical host (the source crashed mid-pre-copy;
/// the paper leaves this case open — without a reclaim the memory leaks
/// forever).
pub const MIGRATION_INIT_TIMEOUT: vsim::SimDuration = vsim::SimDuration::from_secs(60);

/// Start of the logical-host-id range the migration engines allocate
/// temporary (pre-copy target) ids from; resident ids at or above this
/// floor with no program behind them are half-built migrations.
pub const TEMP_LH_FLOOR: u32 = 1_000_000;

/// Upper bound (exclusive) of the system logical-host-id range: a
/// requester whose logical host falls below this is a system process
/// (shell, executor, manager) on station `lh - 1`, which is how a program
/// manager learns the origin host of a program it creates.
const SYSTEM_LH_CEILING: u32 = 10_000;

/// How many completed install renames the target remembers so a
/// retransmitted `InstallState`/`UnfreezeMigrated` is acknowledged
/// idempotently instead of spawning a second copy.
const INSTALL_MEMORY: usize = 32;

/// Lease/heartbeat tuning for the liveness protocol.
///
/// Remote programs stay explicitly dependent on their origin host: the
/// origin grants a time-bounded lease, the hosting (remote) program
/// manager renews it with heartbeats every `heartbeat`, and each grant
/// lasts `duration`. When renewals fail for `duration + grace` the holder
/// exterminates the orphan; when heartbeats stop for `duration + grace`
/// the origin probes for the program and rebinds — or re-executes it if
/// the probe goes unanswered.
#[derive(Debug, Clone)]
pub struct LeaseConfig {
    /// Master switch: `false` disables grants, heartbeats and
    /// extermination entirely.
    pub enabled: bool,
    /// How long each granted lease lasts.
    pub duration: SimDuration,
    /// Heartbeat/check cadence on both sides.
    pub heartbeat: SimDuration,
    /// Slack past expiry before either side acts.
    pub grace: SimDuration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            enabled: true,
            duration: SimDuration::from_secs(10),
            heartbeat: SimDuration::from_secs(3),
            grace: SimDuration::from_secs(5),
        }
    }
}

/// Holder-side lease state for one remote-origin program.
#[derive(Debug, Clone)]
struct Lease {
    /// The origin host that grants renewals.
    origin: HostAddr,
    /// When the current grant runs out.
    expires_at: SimTime,
    /// When the holder first took the lease (young leases tolerate a
    /// not-yet-registered grant at the origin).
    held_since: SimTime,
    /// A renewal is in flight.
    renewing: bool,
}

/// Origin-side state for one lease granted to a remote host.
#[derive(Debug, Clone)]
struct Grant {
    /// The host last known to hold the program.
    remote: HostAddr,
    /// Last successful renewal (or grant) instant.
    renewed_at: SimTime,
    /// A liveness probe is in flight.
    probing: bool,
}

/// Policy for answering `@*` queries.
#[derive(Debug, Clone)]
pub struct AcceptPolicy {
    /// Maximum guest programs this workstation will host.
    pub max_guest_programs: usize,
    /// Answer `@*` even while the owner is active (the paper's priority
    /// scheduling makes this acceptable; disable for a conservative
    /// policy).
    pub respond_when_owner_active: bool,
    /// Minimum free memory to advertise availability.
    pub min_free_bytes: u64,
}

impl Default for AcceptPolicy {
    fn default() -> Self {
        AcceptPolicy {
            max_guest_programs: 3,
            respond_when_owner_active: true,
            min_free_bytes: 512 * 1024,
        }
    }
}

/// Program bookkeeping.
#[derive(Debug, Clone)]
pub struct ProgramInfo {
    /// Root process.
    pub root: ProcessId,
    /// Image name.
    pub image: String,
    /// Priority it runs at.
    pub priority: Priority,
    /// True if created on behalf of a remote requester.
    pub remote_origin: bool,
    /// The host the program was executed from; leases bind the program to
    /// it and migrations carry it along. `None` when the creator was not
    /// a system process (subprogram decomposition) — such programs have
    /// no lease.
    pub origin: Option<HostAddr>,
}

/// Program-manager statistics.
#[derive(Debug, Clone, Default)]
pub struct PmStats {
    /// `@*` / named queries answered.
    pub queries_answered: u64,
    /// Queries declined (silently).
    pub queries_declined: u64,
    /// Programs created.
    pub programs_created: u64,
    /// Programs destroyed.
    pub programs_destroyed: u64,
    /// Migrations accepted (InitMigration).
    pub migrations_accepted: u64,
    /// Migration installs completed.
    pub migrations_installed: u64,
    /// Migration aborts processed.
    pub migrations_aborted: u64,
    /// Temporary logical hosts reclaimed after the source went silent.
    pub migrations_expired: u64,
    /// Bytes demand-fetched from the paging store after VM-flush
    /// migrations.
    pub fetched_bytes: u64,
    /// Demand fetches that failed.
    pub fetch_failures: u64,
    /// Leases granted to remote hosts (origin side).
    pub leases_granted: u64,
    /// Renewals acknowledged for granted leases (origin side).
    pub renewals_granted: u64,
    /// Successful heartbeat renewals of held leases (holder side).
    pub leases_renewed: u64,
    /// Deliberate releases processed for granted leases (origin side).
    pub leases_released: u64,
    /// Granted leases rebound after a liveness probe found the program on
    /// a (possibly new) host (origin side).
    pub leases_rebound: u64,
    /// Remote-host silences declared after heartbeats stopped past grace
    /// (origin side).
    pub remote_silences: u64,
    /// Orphans exterminated after lease expiry or revocation (holder
    /// side).
    pub orphans_exterminated: u64,
    /// Duplicate migration steps acknowledged idempotently instead of
    /// re-executed (InitMigration / InstallState / UnfreezeMigrated).
    pub idempotent_acks: u64,
}

#[derive(Debug)]
enum Pending {
    /// Host query: answer after the processing delay.
    Query { requester: ProcessId, seq: SendSeq },
    /// CreateProgram: waiting for the image Stat from the file server.
    AwaitStat {
        requester: ProcessId,
        seq: SendSeq,
        spec: Box<ProgramSpec>,
    },
    /// CreateProgram: waiting for the file server to load the image.
    AwaitLoad {
        requester: ProcessId,
        seq: SendSeq,
        spec: Box<ProgramSpec>,
        lh: LogicalHostId,
        root: ProcessId,
    },
    /// CreateProgram: environment setup delay before replying.
    Setup {
        requester: ProcessId,
        seq: SendSeq,
        spec: Box<ProgramSpec>,
        lh: LogicalHostId,
        root: ProcessId,
    },
    /// InstallState: the 14 ms + 9 ms/object kernel-state copy.
    Install {
        requester: ProcessId,
        seq: SendSeq,
        temp: LogicalHostId,
        record: Box<vkernel::MigrationRecord<ServiceMsg>>,
        image: String,
        priority: Priority,
        fetch: Option<FetchPlan>,
        origin: Option<HostAddr>,
    },
    /// Destroy: environment teardown delay.
    Destroy {
        requester: ProcessId,
        seq: SendSeq,
        lh: LogicalHostId,
    },
    /// Watchdog on an accepted migration: reclaim the temporary logical
    /// host if the source never completed.
    MigExpire { temp: LogicalHostId },
    /// Watchdog on an installed migration: reclaim the (renamed, frozen)
    /// copy if the source crashed after commit and the UnfreezeMigrated
    /// step never arrived.
    UnfreezeExpire { lh: LogicalHostId },
    /// Holder-side lease heartbeat: renew every held lease and
    /// exterminate any whose grant ran out past grace.
    LeaseTick,
    /// Origin-side grant check: probe (then rebind or re-exec) any remote
    /// host whose heartbeats stopped past grace.
    GrantTick,
    /// A heartbeat renewal in flight to the origin of `lh`.
    AwaitRenewal { lh: LogicalHostId },
    /// A liveness probe in flight for granted lease `lh`.
    AwaitProbe { lh: LogicalHostId },
}

/// The program manager of one workstation.
pub struct ProgramManager {
    pid: ProcessId,
    host: HostAddr,
    host_name: String,
    file_server: ProcessId,
    policy: AcceptPolicy,
    owner_active: bool,
    programs: BTreeMap<LogicalHostId, ProgramInfo>,
    waiters: BTreeMap<LogicalHostId, Vec<(ProcessId, SendSeq)>>,
    pending_fetch: BTreeMap<LogicalHostId, FetchPlan>,
    fetches_in_flight: BTreeMap<vkernel::XferId, LogicalHostId>,
    pending: BTreeMap<u64, Pending>,
    by_seq: BTreeMap<SendSeq, u64>,
    /// Logical hosts installed by migration and still awaiting their
    /// UnfreezeMigrated step (distinguishes "frozen because the source
    /// died post-commit" from a deliberate SuspendProgram).
    awaiting_unfreeze: std::collections::BTreeSet<LogicalHostId>,
    /// Programs deliberately frozen via SuspendProgram — the cluster
    /// auditor must not count them as migration zombies.
    suspended: std::collections::BTreeSet<LogicalHostId>,
    /// Arm reclaim watchdogs on accepted/installed migrations. Disabling
    /// this deliberately leaks half-built logical hosts — used to prove
    /// the cluster auditor detects the leak.
    migration_watchdog: bool,
    /// Lease protocol tuning (shared by the holder and origin roles).
    lease_cfg: LeaseConfig,
    /// Exterminate orphans when their lease runs out. Disabling this
    /// deliberately leaks orphans — used to prove the cluster auditor
    /// detects lease-expired-but-alive programs.
    lease_enforcement: bool,
    /// Holder side: leases this manager holds for remote-origin programs.
    leases: BTreeMap<LogicalHostId, Lease>,
    /// Origin side: leases this manager granted to remote hosts.
    grants: BTreeMap<LogicalHostId, Grant>,
    /// A [`Pending::LeaseTick`] is armed.
    lease_tick_armed: bool,
    /// A [`Pending::GrantTick`] is armed.
    grant_tick_armed: bool,
    /// Recently completed install renames (temp → original id), kept so
    /// retransmitted commit-phase requests are acknowledged idempotently.
    installed: BTreeMap<LogicalHostId, LogicalHostId>,
    next_token: u64,
    next_lh: u32,
    lh_base: u32,
    stats: PmStats,
}

impl ProgramManager {
    /// Creates the program manager for a workstation.
    ///
    /// `lh_base` is the start of this manager's private logical-host-id
    /// range (the cluster builder spaces them so ids never collide).
    pub fn new(
        pid: ProcessId,
        host: HostAddr,
        host_name: impl Into<String>,
        file_server: ProcessId,
        lh_base: u32,
        policy: AcceptPolicy,
    ) -> Self {
        ProgramManager {
            pid,
            host,
            host_name: host_name.into(),
            file_server,
            policy,
            owner_active: false,
            programs: BTreeMap::new(),
            waiters: BTreeMap::new(),
            pending_fetch: BTreeMap::new(),
            fetches_in_flight: BTreeMap::new(),
            pending: BTreeMap::new(),
            by_seq: BTreeMap::new(),
            awaiting_unfreeze: std::collections::BTreeSet::new(),
            suspended: std::collections::BTreeSet::new(),
            migration_watchdog: true,
            lease_cfg: LeaseConfig::default(),
            lease_enforcement: true,
            leases: BTreeMap::new(),
            grants: BTreeMap::new(),
            lease_tick_armed: false,
            grant_tick_armed: false,
            installed: BTreeMap::new(),
            next_token: 0,
            next_lh: 0,
            lh_base,
            stats: PmStats::default(),
        }
    }

    /// The manager's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The workstation's host name.
    pub fn host_name(&self) -> &str {
        &self.host_name
    }

    /// Statistics.
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    /// Known programs.
    pub fn programs(&self) -> &BTreeMap<LogicalHostId, ProgramInfo> {
        &self.programs
    }

    /// Info for one program.
    pub fn program(&self, lh: LogicalHostId) -> Option<&ProgramInfo> {
        self.programs.get(&lh)
    }

    /// Marks the owner as actively using (or not using) the workstation;
    /// driven by the user model.
    pub fn set_owner_active(&mut self, active: bool) {
        self.owner_active = active;
    }

    /// True if the owner is at the console.
    pub fn owner_active(&self) -> bool {
        self.owner_active
    }

    /// Enables or disables the migration reclaim watchdogs. Only disable
    /// to demonstrate the resulting leak (the cluster auditor flags it).
    pub fn set_migration_watchdog(&mut self, on: bool) {
        self.migration_watchdog = on;
    }

    /// The lease protocol tuning in effect.
    pub fn lease_config(&self) -> &LeaseConfig {
        &self.lease_cfg
    }

    /// Replaces the lease protocol tuning (the cluster builder applies
    /// the cluster-wide config here).
    pub fn set_lease_config(&mut self, cfg: LeaseConfig) {
        self.lease_cfg = cfg;
    }

    /// Enables or disables orphan extermination on lease expiry. Only
    /// disable to demonstrate the resulting leak (the cluster auditor
    /// flags lease-expired-but-alive programs).
    pub fn set_lease_enforcement(&mut self, on: bool) {
        self.lease_enforcement = on;
    }

    /// Held leases whose grant ran out more than `grace` ago — programs
    /// the enforcement machinery should already have exterminated.
    pub fn expired_leases(&self, now: SimTime) -> Vec<LogicalHostId> {
        self.leases
            .iter()
            .filter(|(_, l)| now >= l.expires_at + self.lease_cfg.grace)
            .map(|(&lh, _)| lh)
            .collect()
    }

    /// Leases this manager currently holds: (program, origin host).
    pub fn held_leases(&self) -> Vec<(LogicalHostId, HostAddr)> {
        self.leases.iter().map(|(&lh, l)| (lh, l.origin)).collect()
    }

    /// Leases this manager granted: (program, last-known remote host).
    pub fn granted_leases(&self) -> Vec<(LogicalHostId, HostAddr)> {
        self.grants.iter().map(|(&lh, g)| (lh, g.remote)).collect()
    }

    /// True if `lh` was deliberately frozen with SuspendProgram and not
    /// yet resumed.
    pub fn is_suspended(&self, lh: LogicalHostId) -> bool {
        self.suspended.contains(&lh)
    }

    /// Migrated-in logical hosts still frozen because their
    /// UnfreezeMigrated step has not arrived, sorted.
    pub fn awaiting_unfreeze(&self) -> Vec<LogicalHostId> {
        self.awaiting_unfreeze.iter().copied().collect()
    }

    /// Restarts the manager process after a service crash: every pending
    /// conversation is forgotten (requesters recover by retransmission,
    /// which re-delivers their requests once the kernel's server-side
    /// transaction state is aborted too), while the program ledger, the
    /// id allocator and the statistics survive — they model state the
    /// manager can rebuild from the kernel's tables.
    ///
    /// Returns timer requests re-arming a reclaim watchdog for any
    /// temporary logical hosts a half-done migration left behind.
    pub fn restart(&mut self, k: &Kernel<ServiceMsg>) -> SvcOutputs {
        self.pending.clear();
        self.by_seq.clear();
        self.waiters.clear();
        self.pending_fetch.clear();
        self.fetches_in_flight.clear();
        let mut out = SvcOutputs::new();
        // The lease ledgers survive (rebuildable state), but the armed
        // ticks and in-flight renewals/probes died with the process.
        self.lease_tick_armed = false;
        self.grant_tick_armed = false;
        for l in self.leases.values_mut() {
            l.renewing = false;
        }
        for g in self.grants.values_mut() {
            g.probing = false;
        }
        out.merge(self.arm_lease_tick());
        out.merge(self.arm_grant_tick());
        if !self.migration_watchdog {
            return out;
        }
        for lh in k.resident_lhs() {
            if self.awaiting_unfreeze.contains(&lh) {
                let t = self.token(Pending::UnfreezeExpire { lh });
                out = out.timer(t, MIGRATION_INIT_TIMEOUT);
            } else if lh.0 >= TEMP_LH_FLOOR && !self.programs.contains_key(&lh) {
                // A temp id from the migration engines' range with no
                // program behind it: the in-flight migration whose
                // watchdog we just dropped.
                let t = self.token(Pending::MigExpire { temp: lh });
                out = out.timer(t, MIGRATION_INIT_TIMEOUT);
            }
        }
        out
    }

    /// Re-arms the manager's timers after the whole workstation reboots
    /// (a crash loses pending timer callbacks, not the state awaiting
    /// them). Send-driven conversations need nothing: the kernel re-arms
    /// the underlying retransmissions.
    pub fn reboot_recover(&mut self) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let mut tokens: Vec<u64> = self.pending.keys().copied().collect();
        tokens.sort_unstable();
        for t in tokens {
            let after = match &self.pending[&t] {
                Pending::MigExpire { .. } | Pending::UnfreezeExpire { .. } => {
                    MIGRATION_INIT_TIMEOUT
                }
                Pending::LeaseTick | Pending::GrantTick => self.lease_cfg.heartbeat,
                Pending::AwaitStat { .. }
                | Pending::AwaitLoad { .. }
                | Pending::AwaitRenewal { .. }
                | Pending::AwaitProbe { .. } => continue,
                _ => PM_QUERY_PROCESSING,
            };
            out = out.timer(SvcToken(t), after);
        }
        out
    }

    /// Allocates a fresh logical-host id from this manager's range.
    pub fn alloc_lh(&mut self) -> LogicalHostId {
        let id = LogicalHostId(self.lh_base + self.next_lh);
        self.next_lh += 1;
        id
    }

    fn token(&mut self, p: Pending) -> SvcToken {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, p);
        SvcToken(t)
    }

    fn free_bytes(&self, k: &Kernel<ServiceMsg>) -> u64 {
        let used: u64 = k
            .resident_lhs()
            .iter()
            .filter_map(|&lh| k.logical_host(lh))
            .map(|l| l.total_bytes())
            .sum();
        WORKSTATION_MEMORY_BYTES
            .saturating_sub(used)
            .saturating_sub(SYSTEM_RESERVED_BYTES)
    }

    fn guest_count(&self) -> usize {
        self.programs.values().filter(|p| p.remote_origin).count()
    }

    fn would_accept(&self, k: &Kernel<ServiceMsg>) -> bool {
        (self.policy.respond_when_owner_active || !self.owner_active)
            && self.guest_count() < self.policy.max_guest_programs
            && self.free_bytes(k) >= self.policy.min_free_bytes
    }

    /// The program-manager group of a station's system logical host —
    /// how one manager addresses another by physical host.
    fn pm_of_host(host: HostAddr) -> Destination {
        let system_lh = LogicalHostId(1 + host.0 as u32);
        Destination::Group(GroupId::program_manager_of(system_lh))
    }

    /// Derives a requester's physical host when the requester is a system
    /// process (shell, executor, manager); programs get `None`.
    fn requester_host(requester: ProcessId) -> Option<HostAddr> {
        (requester.lh.0 >= 1 && requester.lh.0 < SYSTEM_LH_CEILING)
            .then(|| HostAddr((requester.lh.0 - 1) as u16))
    }

    /// Arms the holder-side heartbeat tick if leases are held and no tick
    /// is armed yet.
    fn arm_lease_tick(&mut self) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        if self.lease_cfg.enabled && !self.lease_tick_armed && !self.leases.is_empty() {
            self.lease_tick_armed = true;
            let t = self.token(Pending::LeaseTick);
            out = out.timer(t, self.lease_cfg.heartbeat);
        }
        out
    }

    /// Arms the origin-side grant check tick if grants exist and no tick
    /// is armed yet.
    fn arm_grant_tick(&mut self) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        if self.lease_cfg.enabled && !self.grant_tick_armed && !self.grants.is_empty() {
            self.grant_tick_armed = true;
            let t = self.token(Pending::GrantTick);
            out = out.timer(t, self.lease_cfg.heartbeat);
        }
        out
    }

    /// Holder side: starts holding a lease for a remote-origin program
    /// (no-op when leases are disabled or the program is home).
    fn hold_lease(&mut self, now: SimTime, lh: LogicalHostId, origin: HostAddr) -> SvcOutputs {
        if !self.lease_cfg.enabled || origin == self.host {
            return SvcOutputs::new();
        }
        self.leases.insert(
            lh,
            Lease {
                origin,
                expires_at: now + self.lease_cfg.duration,
                held_since: now,
                renewing: false,
            },
        );
        self.arm_lease_tick()
    }

    /// Origin side: records that `lh` now executes remotely at `remote`
    /// under a lease this manager must keep renewed. Called by the
    /// cluster runtime when a remote execution completes or a home
    /// program is migrated away.
    pub fn grant_lease(&mut self, now: SimTime, lh: LogicalHostId, remote: HostAddr) -> SvcOutputs {
        if !self.lease_cfg.enabled || remote == self.host {
            return SvcOutputs::new();
        }
        self.stats.leases_granted += 1;
        self.grants.insert(
            lh,
            Grant {
                remote,
                renewed_at: now,
                probing: false,
            },
        );
        self.arm_grant_tick()
    }

    /// Origin side: notifies `origin` that `lh` was deliberately
    /// destroyed so its grant is dropped rather than probed and
    /// re-executed. Fire-and-forget: if the origin is unreachable its
    /// grant expires and the probe finds nothing, which converges too
    /// (at-least-once re-execution).
    pub fn release_lease_to(
        &mut self,
        now: SimTime,
        origin: HostAddr,
        lh: LogicalHostId,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        if !self.lease_cfg.enabled || origin == self.host {
            self.grants.remove(&lh);
            return out;
        }
        let (_, kouts) = k.send_with_seq(
            now,
            self.pid,
            Self::pm_of_host(origin),
            ServiceMsg::ReleaseLease { lh },
            0,
        );
        out.kernel.extend(kouts);
        out
    }

    /// Holder side: destroys an orphan whose lease expired or was
    /// revoked. The program is removed exactly like a destroy, and the
    /// runtime is told twice: once for narration/latency accounting and
    /// once to detach the behaviour.
    fn exterminate(
        &mut self,
        now: SimTime,
        lh: LogicalHostId,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        self.leases.remove(&lh);
        self.awaiting_unfreeze.remove(&lh);
        self.suspended.remove(&lh);
        self.pending_fetch.remove(&lh);
        if self.programs.remove(&lh).is_some() {
            self.stats.orphans_exterminated += 1;
            self.stats.programs_destroyed += 1;
            out = out.kernel(k.delete_logical_host(now, lh));
            out = out.event(SvcEvent::OrphanExterminated { lh });
            out = out.event(SvcEvent::ProgramDestroyed { lh });
        }
        for (w, wseq) in self.waiters.remove(&lh).unwrap_or_default() {
            out = out.kernel(k.reply(
                now,
                self.pid,
                w,
                wseq,
                ServiceMsg::Err(SvcError::UpstreamFailed),
                0,
            ));
        }
        out
    }

    /// Remembers a completed install rename for idempotent duplicate
    /// acks, bounded to the most recent [`INSTALL_MEMORY`] entries.
    fn remember_install(&mut self, temp: LogicalHostId, lh: LogicalHostId) {
        self.installed.insert(temp, lh);
        while self.installed.len() > INSTALL_MEMORY {
            let Some(&oldest) = self.installed.keys().next() else {
                break;
            };
            self.installed.remove(&oldest);
        }
    }

    /// Handles a request delivered to the manager.
    pub fn handle_request(
        &mut self,
        now: SimTime,
        msg: vkernel::MsgIn<ServiceMsg>,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let (requester, seq) = (msg.from, msg.seq);
        match msg.body {
            ServiceMsg::QueryHost {
                host_name,
                exclude_hosts,
            } => {
                let respond = !exclude_hosts.contains(&self.host)
                    && match &host_name {
                        Some(n) => *n == self.host_name,
                        // "@*" means "some *other* lightly loaded machine"
                        // (§4.3): a manager does not offer the requester
                        // its own workstation back.
                        None => !k.is_resident(requester.lh) && self.would_accept(k),
                    };
                if respond {
                    // The 23 ms first-response time is dominated by this
                    // processing delay (§4.1). On a busy workstation the
                    // manager contends with running programs for the CPU,
                    // so its response is slower — which is exactly why
                    // "the program manager that responds first ... is
                    // generally the least loaded host" (§2).
                    let contention = 1.0 + 0.25 * self.programs.len() as f64;
                    let t = self.token(Pending::Query { requester, seq });
                    out = out.timer(t, PM_QUERY_PROCESSING.mul_f64(contention));
                } else {
                    self.stats.queries_declined += 1;
                }
            }
            ServiceMsg::CreateProgram(spec) => {
                let t = self.token(Pending::AwaitStat {
                    requester,
                    seq,
                    spec: spec.clone(),
                });
                let stat = ServiceMsg::Stat {
                    name: spec.image.clone(),
                };
                let (sseq, kouts) =
                    k.send_with_seq(now, self.pid, self.file_server.into(), stat, 0);
                self.by_seq.insert(sseq, t.0);
                out = out.kernel(kouts);
            }
            ServiceMsg::StartProgram { root } => {
                let started = k
                    .logical_host_mut(root.lh)
                    .and_then(|l| l.process_mut(root.index))
                    .map(|p| {
                        let was_embryo = p.state == ProcessState::Embryo;
                        if was_embryo {
                            p.state = ProcessState::Ready;
                        }
                        was_embryo
                    })
                    .unwrap_or(false);
                if started {
                    let info = self.programs.get(&root.lh);
                    out = out.event(SvcEvent::ProgramStarted {
                        root,
                        lh: root.lh,
                        image: info.map(|i| i.image.clone()).unwrap_or_default(),
                        args: Vec::new(),
                    });
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                } else {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            }
            ServiceMsg::DestroyProgram { lh } => {
                if self.programs.contains_key(&lh) {
                    let t = self.token(Pending::Destroy { requester, seq, lh });
                    out = out.timer(t, PM_DESTROY_ENVIRONMENT);
                } else {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            }
            ServiceMsg::SuspendProgram { lh } => {
                let reply = if self.programs.contains_key(&lh) && k.is_resident(lh) {
                    k.freeze(lh);
                    self.suspended.insert(lh);
                    ServiceMsg::Ok
                } else {
                    ServiceMsg::Err(SvcError::BadRequest)
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            ServiceMsg::ResumeProgram { lh } => {
                if self.programs.contains_key(&lh)
                    && k.logical_host(lh).map(|l| l.is_frozen()).unwrap_or(false)
                {
                    self.suspended.remove(&lh);
                    out = out.kernel(k.unfreeze_in_place(now, lh));
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                    out = out.event(SvcEvent::ProgramResumed { lh });
                } else {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            }
            ServiceMsg::WaitProgram { lh } => {
                if self.programs.contains_key(&lh) {
                    // No reply yet: the requester blocks (kept alive by
                    // reply-pending packets) until the program is
                    // destroyed.
                    self.waiters.entry(lh).or_default().push((requester, seq));
                } else {
                    // Already gone (or never existed): complete at once.
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                }
            }
            ServiceMsg::ListPrograms => {
                let mut programs: Vec<(LogicalHostId, String, bool, bool)> = self
                    .programs
                    .iter()
                    .map(|(&lh, info)| {
                        let frozen = k.logical_host(lh).map(|l| l.is_frozen()).unwrap_or(false);
                        (lh, info.image.clone(), info.remote_origin, frozen)
                    })
                    .collect();
                programs.sort_by_key(|p| p.0);
                let reply = ServiceMsg::ProgramList { programs };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            ServiceMsg::QueryLoad => {
                let report = ServiceMsg::LoadReport {
                    programs: self.programs.len() as u32,
                    free_bytes: self.free_bytes(k),
                    owner_active: self.owner_active,
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, report, 0));
            }
            ServiceMsg::InitMigration { temp, spaces } => {
                if k.is_resident(temp) {
                    // Duplicate of an init this manager already accepted
                    // (the accept reply was lost): ack idempotently —
                    // declining would make the source abort a healthy
                    // transfer and could strand two half-built copies.
                    self.stats.idempotent_acks += 1;
                    let accepted = ServiceMsg::MigrationAccepted { host: self.host };
                    out = out.kernel(k.reply(now, self.pid, requester, seq, accepted, 0));
                } else if !self.would_accept(k) {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::Declined),
                        0,
                    ));
                } else {
                    self.stats.migrations_accepted += 1;
                    let l = k.create_logical_host(temp);
                    for (sid, layout) in spaces {
                        l.create_space_with_id(sid, layout);
                    }
                    if self.migration_watchdog {
                        let t = self.token(Pending::MigExpire { temp });
                        out = out.timer(t, MIGRATION_INIT_TIMEOUT);
                    }
                    let accepted = ServiceMsg::MigrationAccepted { host: self.host };
                    out = out.kernel(k.reply(now, self.pid, requester, seq, accepted, 0));
                }
            }
            ServiceMsg::InstallState {
                temp,
                record,
                image,
                priority,
                fetch,
                origin,
            } => {
                let committed = self
                    .installed
                    .get(&temp)
                    .map(|&lh| k.is_resident(lh))
                    .unwrap_or(false);
                if committed {
                    // Duplicate commit (the Ok reply was lost): the rename
                    // already happened; re-running it would fail and make
                    // the source retry into a second live copy.
                    self.stats.idempotent_acks += 1;
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                } else if !k.is_resident(temp) {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                } else {
                    let cost = record.copy_cost();
                    let t = self.token(Pending::Install {
                        requester,
                        seq,
                        temp,
                        record,
                        image,
                        priority,
                        fetch,
                        origin,
                    });
                    out = out.timer(t, cost);
                }
            }
            ServiceMsg::UnfreezeMigrated { lh } => {
                let frozen = k.logical_host(lh).map(|l| l.is_frozen()).unwrap_or(false);
                if k.is_resident(lh) && !frozen && !self.awaiting_unfreeze.contains(&lh) {
                    // Duplicate unfreeze (the Ok reply was lost): the copy
                    // already runs — ack without re-running side effects.
                    self.stats.idempotent_acks += 1;
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                } else if k.is_resident(lh) {
                    self.awaiting_unfreeze.remove(&lh);
                    out = out.kernel(k.unfreeze_migrated(now, lh));
                    // Demand-fetch the flushed pages back from the paging
                    // store (§3.2), in the background while the program
                    // already runs.
                    if let Some(plan) = self.pending_fetch.remove(&lh) {
                        for (space, pages) in plan.pages {
                            if pages.is_empty() {
                                continue;
                            }
                            let (xfer, kouts) = k.pull_pages(
                                now,
                                self.pid,
                                plan.from_lh,
                                plan.from_space,
                                lh,
                                space,
                                pages,
                            );
                            self.fetches_in_flight.insert(xfer, lh);
                            out = out.kernel(kouts);
                        }
                    }
                    out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                    out = out.event(SvcEvent::LogicalHostAdopted { lh });
                } else {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            }
            ServiceMsg::AbortMigration { temp } => {
                self.stats.migrations_aborted += 1;
                out = out.kernel(k.delete_logical_host(now, temp));
                out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
            }
            ServiceMsg::MigrateProgram {
                lh,
                destroy_if_stuck,
            } => {
                // The migration engine (vcore) orchestrates; it replies to
                // the requester when the eviction completes.
                out = out.event(SvcEvent::MigrateRequested {
                    lh,
                    destroy_if_stuck,
                    requester,
                    seq,
                });
            }
            ServiceMsg::RenewLease { lh } => {
                let holder = Self::requester_host(requester);
                let known = self.lease_cfg.enabled && self.grants.contains_key(&lh);
                match (known, holder) {
                    (true, Some(h)) => {
                        if let Some(g) = self.grants.get_mut(&lh) {
                            // A heartbeat also rebinds: after a migration
                            // the renewal arrives from the new host.
                            g.remote = h;
                            g.renewed_at = now;
                            g.probing = false;
                        }
                        self.stats.renewals_granted += 1;
                        let until = now + self.lease_cfg.duration;
                        out = out.event(SvcEvent::LeasePoint {
                            lh,
                            step: ProtocolStep::LeaseRenew,
                            party: Party::Origin,
                        });
                        out = out.kernel(k.reply(
                            now,
                            self.pid,
                            requester,
                            seq,
                            ServiceMsg::LeaseGranted { until },
                            0,
                        ));
                    }
                    _ => {
                        // No grant here: revoked (re-executed elsewhere)
                        // or never registered. The holder must treat this
                        // as a revocation and exterminate its copy.
                        out = out.kernel(k.reply(
                            now,
                            self.pid,
                            requester,
                            seq,
                            ServiceMsg::Err(SvcError::NotFound),
                            0,
                        ));
                    }
                }
            }
            ServiceMsg::ReleaseLease { lh } => {
                if self.grants.remove(&lh).is_some() {
                    self.stats.leases_released += 1;
                }
                out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
            }
            ServiceMsg::QueryProgram { lh } => {
                let reply = if self.programs.contains_key(&lh) && k.is_resident(lh) {
                    ServiceMsg::ProgramAt { host: self.host }
                } else {
                    ServiceMsg::Err(SvcError::NotFound)
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            other => {
                // Not a program-manager operation.
                let _ = other;
                out = out.kernel(k.reply(
                    now,
                    self.pid,
                    requester,
                    seq,
                    ServiceMsg::Err(SvcError::BadRequest),
                    0,
                ));
            }
        }
        out
    }

    /// Handles completion of one of the manager's own Sends (to the file
    /// server).
    pub fn handle_send_done(
        &mut self,
        now: SimTime,
        seq: SendSeq,
        result: Result<ReplyIn<ServiceMsg>, SendError>,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let Some(token) = self.by_seq.remove(&seq) else {
            return out;
        };
        let Some(p) = self.pending.remove(&token) else {
            return out;
        };
        match p {
            Pending::AwaitStat {
                requester,
                seq: rseq,
                spec,
            } => match result {
                Ok(ReplyIn {
                    body: ServiceMsg::StatReply { layout },
                    ..
                }) => {
                    let lh = self.alloc_lh();
                    let l = k.create_logical_host(lh);
                    let space = l.create_space(layout);
                    let root = l.create_process(space, spec.priority, true);
                    let t = self.token(Pending::AwaitLoad {
                        requester,
                        seq: rseq,
                        spec: spec.clone(),
                        lh,
                        root,
                    });
                    let load = ServiceMsg::LoadImage {
                        name: spec.image.clone(),
                        to_lh: lh,
                        to_space: space,
                    };
                    let (sseq, kouts) =
                        k.send_with_seq(now, self.pid, self.file_server.into(), load, 0);
                    self.by_seq.insert(sseq, t.0);
                    out = out.kernel(kouts);
                }
                _ => {
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        rseq,
                        ServiceMsg::Err(SvcError::NotFound),
                        0,
                    ));
                }
            },
            Pending::AwaitLoad {
                requester,
                seq: rseq,
                spec,
                lh,
                root,
            } => match result {
                Ok(ReplyIn {
                    body: ServiceMsg::ImageLoaded { .. },
                    ..
                }) => {
                    let t = self.token(Pending::Setup {
                        requester,
                        seq: rseq,
                        spec,
                        lh,
                        root,
                    });
                    out = out.timer(t, PM_SETUP_ENVIRONMENT);
                }
                _ => {
                    out = out.kernel(k.delete_logical_host(now, lh));
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        rseq,
                        ServiceMsg::Err(SvcError::UpstreamFailed),
                        0,
                    ));
                }
            },
            Pending::AwaitRenewal { lh } => {
                let young = self
                    .leases
                    .get(&lh)
                    .map(|l| now.since(l.held_since) <= self.lease_cfg.duration)
                    .unwrap_or(true);
                match result {
                    Ok(ReplyIn {
                        body: ServiceMsg::LeaseGranted { until },
                        ..
                    }) => {
                        if let Some(l) = self.leases.get_mut(&lh) {
                            l.expires_at = until;
                            l.renewing = false;
                        }
                        self.stats.leases_renewed += 1;
                    }
                    Ok(_) if !young => {
                        // The origin answered but holds no grant: the
                        // lease was revoked (e.g. the program was
                        // re-executed elsewhere while this host was cut
                        // off). Exterminate the stale copy immediately.
                        out.merge(self.exterminate(now, lh, k));
                    }
                    _ => {
                        // Origin unreachable (or the grant is simply not
                        // registered yet on a fresh lease): keep ticking;
                        // expiry handles a dead origin.
                        if let Some(l) = self.leases.get_mut(&lh) {
                            l.renewing = false;
                        }
                    }
                }
            }
            Pending::AwaitProbe { lh } => match result {
                Ok(ReplyIn {
                    body: ServiceMsg::ProgramAt { host },
                    ..
                }) => {
                    if let Some(g) = self.grants.get_mut(&lh) {
                        g.remote = host;
                        g.renewed_at = now;
                        g.probing = false;
                    }
                    self.stats.leases_rebound += 1;
                    out = out.event(SvcEvent::LeaseRebound { lh, to: host });
                }
                _ => {
                    // Nobody answered for the program: presumed dead.
                    // Drop the grant and ask the runtime to re-execute.
                    self.grants.remove(&lh);
                    out = out.event(SvcEvent::ReExecNeeded { lh });
                }
            },
            other => {
                // Sends are only issued for the create path; anything else
                // is a stale correlation left over from a crash-restart.
                // Put the state back and ignore the completion.
                self.pending.insert(token, other);
            }
        }
        out
    }

    /// Handles a service timer.
    pub fn handle_timer(
        &mut self,
        now: SimTime,
        token: SvcToken,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let Some(p) = self.pending.remove(&token.0) else {
            return out;
        };
        match p {
            Pending::Query { requester, seq } => {
                self.stats.queries_answered += 1;
                let candidate = ServiceMsg::HostCandidate {
                    pm: self.pid,
                    host: self.host,
                    host_name: self.host_name.clone(),
                    load: self.programs.len() as u32,
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, candidate, 0));
            }
            Pending::Setup {
                requester,
                seq,
                spec,
                lh,
                root,
            } => {
                self.stats.programs_created += 1;
                let origin = Self::requester_host(requester);
                self.programs.insert(
                    lh,
                    ProgramInfo {
                        root,
                        image: spec.image.clone(),
                        priority: spec.priority,
                        remote_origin: requester.lh != lh && requester.lh.0 != self.lh_base,
                        origin,
                    },
                );
                // A program created for a remote requester lives on a
                // lease from its origin from the moment it exists.
                if let Some(o) = origin {
                    out.merge(self.hold_lease(now, lh, o));
                }
                let created = ServiceMsg::ProgramCreated {
                    root,
                    lh,
                    host: self.host,
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, created, 0));
            }
            Pending::Install {
                requester,
                seq,
                temp,
                record,
                image,
                priority,
                fetch,
                origin,
            } => {
                self.stats.migrations_installed += 1;
                let lh = record.desc.id;
                let root = record
                    .desc
                    .processes
                    .first()
                    .map(|pd| ProcessId::new(lh, pd.index))
                    .unwrap_or(ProcessId::new(lh, 0));
                out = out.kernel(k.install_migration_record(now, temp, &record));
                self.remember_install(temp, lh);
                self.programs.insert(
                    lh,
                    ProgramInfo {
                        root,
                        image,
                        priority,
                        remote_origin: true,
                        origin,
                    },
                );
                // The lease follows the program: the new host renews
                // against the same origin (whose grant rebinds on the
                // first heartbeat from here).
                if let Some(o) = origin {
                    out.merge(self.hold_lease(now, lh, o));
                }
                if let Some(plan) = fetch {
                    self.pending_fetch.insert(lh, plan);
                }
                // The copy now sits frozen under its original id; if the
                // source dies before sending UnfreezeMigrated, this
                // watchdog reclaims the zombie.
                self.awaiting_unfreeze.insert(lh);
                if self.migration_watchdog {
                    let t = self.token(Pending::UnfreezeExpire { lh });
                    out = out.timer(t, MIGRATION_INIT_TIMEOUT);
                }
                out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
            }
            Pending::Destroy { requester, seq, lh } => {
                self.stats.programs_destroyed += 1;
                // A deliberate destroy releases the lease at the origin
                // so the program is not presumed dead and re-executed.
                let origin = self.programs.get(&lh).and_then(|i| i.origin);
                if self.leases.remove(&lh).is_some() {
                    if let Some(o) = origin {
                        out.merge(self.release_lease_to(now, o, lh, k));
                    }
                }
                self.grants.remove(&lh);
                self.programs.remove(&lh);
                self.suspended.remove(&lh);
                out = out.kernel(k.delete_logical_host(now, lh));
                out = out.event(SvcEvent::ProgramDestroyed { lh });
                out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::Ok, 0));
                // Wake anyone blocked in WaitProgram.
                for (w, wseq) in self.waiters.remove(&lh).unwrap_or_default() {
                    out = out.kernel(k.reply(now, self.pid, w, wseq, ServiceMsg::Ok, 0));
                }
            }
            Pending::MigExpire { temp } => {
                // InstallState renames temp to the original id, so a
                // still-resident temp means the source never finished.
                if k.is_resident(temp) {
                    self.stats.migrations_expired += 1;
                    out = out.kernel(k.delete_logical_host(now, temp));
                }
            }
            Pending::UnfreezeExpire { lh } => {
                // Reclaim only if the copy is still frozen *and* never
                // saw its UnfreezeMigrated — a later SuspendProgram also
                // freezes, but clears `awaiting_unfreeze` first.
                let zombie = self.awaiting_unfreeze.contains(&lh)
                    && k.logical_host(lh).map(|l| l.is_frozen()).unwrap_or(false);
                if zombie {
                    self.awaiting_unfreeze.remove(&lh);
                    self.stats.migrations_expired += 1;
                    self.programs.remove(&lh);
                    // Keep the lease unreleased: the origin's probe will
                    // find nothing and re-execute the lost program.
                    self.leases.remove(&lh);
                    out = out.kernel(k.delete_logical_host(now, lh));
                    out = out.event(SvcEvent::ProgramDestroyed { lh });
                }
            }
            Pending::LeaseTick => {
                self.lease_tick_armed = false;
                out.merge(self.lease_tick(now, k));
            }
            Pending::GrantTick => {
                self.grant_tick_armed = false;
                out.merge(self.grant_tick(now, k));
            }
            other => {
                // A timer for send-driven state: impossible in normal
                // operation, but a crash-restart can leave stale timers
                // behind. Put the state back and ignore the tick.
                self.pending.insert(token.0, other);
            }
        }
        out
    }

    /// One holder-side heartbeat round: exterminate leases that ran out
    /// past grace, renew the rest, re-arm while any lease remains.
    fn lease_tick(&mut self, now: SimTime, k: &mut Kernel<ServiceMsg>) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let lhs: Vec<LogicalHostId> = self.leases.keys().copied().collect();
        for lh in lhs {
            if !self.programs.contains_key(&lh) {
                // The program went away through some other path; the
                // lease has nothing left to protect.
                self.leases.remove(&lh);
                continue;
            }
            let Some(lease) = self.leases.get(&lh) else {
                continue;
            };
            let (origin, renewing) = (lease.origin, lease.renewing);
            if now >= lease.expires_at + self.lease_cfg.grace {
                out = out.event(SvcEvent::LeasePoint {
                    lh,
                    step: ProtocolStep::LeaseExpiry,
                    party: Party::Target,
                });
                if self.lease_enforcement {
                    out.merge(self.exterminate(now, lh, k));
                }
                continue;
            }
            if !renewing {
                let t = self.token(Pending::AwaitRenewal { lh });
                let (sseq, kouts) = k.send_with_seq(
                    now,
                    self.pid,
                    Self::pm_of_host(origin),
                    ServiceMsg::RenewLease { lh },
                    0,
                );
                self.by_seq.insert(sseq, t.0);
                if let Some(l) = self.leases.get_mut(&lh) {
                    l.renewing = true;
                }
                out = out.event(SvcEvent::LeasePoint {
                    lh,
                    step: ProtocolStep::LeaseRenew,
                    party: Party::Target,
                });
                out.kernel.extend(kouts);
            }
        }
        out.merge(self.arm_lease_tick());
        out
    }

    /// One origin-side grant round: probe every remote host whose
    /// heartbeats stopped past grace, re-arm while any grant remains.
    fn grant_tick(&mut self, now: SimTime, k: &mut Kernel<ServiceMsg>) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let lhs: Vec<LogicalHostId> = self.grants.keys().copied().collect();
        for lh in lhs {
            if self.programs.contains_key(&lh) && k.is_resident(lh) {
                // The program migrated back home; no lease needed.
                self.grants.remove(&lh);
                self.leases.remove(&lh);
                continue;
            }
            let Some(g) = self.grants.get(&lh) else {
                continue;
            };
            let silence = now.since(g.renewed_at);
            if !g.probing && silence > self.lease_cfg.duration + self.lease_cfg.grace {
                self.stats.remote_silences += 1;
                out = out.event(SvcEvent::LeasePoint {
                    lh,
                    step: ProtocolStep::LeaseExpiry,
                    party: Party::Origin,
                });
                if let Some(g) = self.grants.get_mut(&lh) {
                    g.probing = true;
                }
                let t = self.token(Pending::AwaitProbe { lh });
                let (sseq, kouts) = k.send_with_seq(
                    now,
                    self.pid,
                    Destination::Group(GroupId::program_manager_of(lh)),
                    ServiceMsg::QueryProgram { lh },
                    0,
                );
                self.by_seq.insert(sseq, t.0);
                out.kernel.extend(kouts);
            }
        }
        out.merge(self.arm_grant_tick());
        out
    }

    /// Handles completion of a background demand-fetch (VM-flush).
    pub fn handle_copy_done(
        &mut self,
        _now: SimTime,
        xfer: vkernel::XferId,
        result: Result<u64, vkernel::SendError>,
        _k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        if self.fetches_in_flight.remove(&xfer).is_some() {
            match result {
                Ok(bytes) => self.stats.fetched_bytes += bytes,
                Err(_) => self.stats.fetch_failures += 1,
            }
        }
        SvcOutputs::new()
    }

    /// Removes a migrated-away program from the books (called by the
    /// migration engine after the old copy is deleted). Anyone blocked in
    /// WaitProgram here is failed so they can re-issue the wait to the
    /// program's new manager.
    pub fn forget_program(
        &mut self,
        now: SimTime,
        lh: LogicalHostId,
        k: &mut Kernel<ServiceMsg>,
    ) -> (Option<ProgramInfo>, SvcOutputs) {
        let mut out = SvcOutputs::new();
        for (w, wseq) in self.waiters.remove(&lh).unwrap_or_default() {
            out = out.kernel(k.reply(
                now,
                self.pid,
                w,
                wseq,
                ServiceMsg::Err(SvcError::UpstreamFailed),
                0,
            ));
        }
        self.suspended.remove(&lh);
        // The program lives on at its new host, which holds the lease
        // now; only this host's holder-side state is dropped (the origin
        // grant rebinds on the new host's first heartbeat).
        self.leases.remove(&lh);
        (self.programs.remove(&lh), out)
    }

    /// Registers a program that exists for reasons outside the normal
    /// create path (tests, scenario setup).
    pub fn register_program(&mut self, lh: LogicalHostId, info: ProgramInfo) {
        self.programs.insert(lh, info);
    }
}
