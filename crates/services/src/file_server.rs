//! The network file server.
//!
//! The paper's workstations are diskless: "program files are loaded from
//! network file servers so the cost of program loading is independent of
//! whether a program is executed locally or remotely" (§4.1), at
//! 330 ms / 100 KB. The same server stores ordinary files; a file server
//! can also be instantiated *on a workstation* to reproduce the residual-
//! dependency hazard of §3.3 (a migrated program still reaching back to
//! its old host's local files).

use std::collections::BTreeMap;

use vkernel::{Kernel, LogicalHostId, ProcessId, SendError, SendSeq, XferId};
use vmem::{SpaceId, SpaceLayout};
use vsim::calib::{FILE_SERVER_READ_PER_KB, PAGE_BYTES};
use vsim::{SimDuration, SimTime};

use crate::msg::{FileHandle, ServiceMsg, SvcError};
use crate::service::{SvcOutputs, SvcToken};

/// An open file.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// File name.
    pub name: String,
    /// The process that opened it.
    pub owner: ProcessId,
    /// Sequential position.
    pub pos: u64,
}

/// File-server statistics.
#[derive(Debug, Clone, Default)]
pub struct FsStats {
    /// Program images loaded.
    pub images_loaded: u64,
    /// Bytes of image data shipped.
    pub image_bytes: u64,
    /// Open operations.
    pub opens: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Requests for unknown names/handles.
    pub errors: u64,
}

#[derive(Debug)]
enum Pending {
    /// Image load: storage read delay, then the bulk network copy.
    LoadRead {
        requester: ProcessId,
        seq: SendSeq,
        to_lh: LogicalHostId,
        to_space: SpaceId,
        pages: Vec<u32>,
        bytes: u64,
    },
    /// Image load: bulk copy in flight.
    LoadXfer {
        requester: ProcessId,
        seq: SendSeq,
        bytes: u64,
    },
    /// Plain read: storage delay, then reply with data.
    Read {
        requester: ProcessId,
        seq: SendSeq,
        bytes: u64,
    },
    /// Plain write: storage delay, then acknowledge.
    Write { requester: ProcessId, seq: SendSeq },
}

/// A file server process.
pub struct FileServer {
    pid: ProcessId,
    images: BTreeMap<String, SpaceLayout>,
    files: BTreeMap<String, u64>,
    open: BTreeMap<FileHandle, OpenFile>,
    next_handle: u64,
    pending: BTreeMap<u64, Pending>,
    by_xfer: BTreeMap<XferId, u64>,
    next_token: u64,
    stats: FsStats,
}

impl FileServer {
    /// Creates a file server with an empty store.
    pub fn new(pid: ProcessId) -> Self {
        FileServer {
            pid,
            images: BTreeMap::new(),
            files: BTreeMap::new(),
            open: BTreeMap::new(),
            next_handle: 1,
            pending: BTreeMap::new(),
            by_xfer: BTreeMap::new(),
            next_token: 0,
            stats: FsStats::default(),
        }
    }

    /// The server's process id.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Statistics.
    pub fn stats(&self) -> &FsStats {
        &self.stats
    }

    /// Publishes a program image.
    pub fn add_image(&mut self, name: impl Into<String>, layout: SpaceLayout) {
        self.images.insert(name.into(), layout);
    }

    /// Creates (or truncates) an ordinary file.
    pub fn add_file(&mut self, name: impl Into<String>, size: u64) {
        self.files.insert(name.into(), size);
    }

    /// Size of a stored file.
    pub fn file_size(&self, name: &str) -> Option<u64> {
        self.files.get(name).copied()
    }

    /// Currently open files (handle, descriptor) — the residual-dependency
    /// auditor inspects this.
    pub fn open_files(&self) -> impl Iterator<Item = (&FileHandle, &OpenFile)> {
        self.open.iter()
    }

    /// Bytes an image occupies on the wire: its code + initialized data.
    fn image_bytes(layout: &SpaceLayout) -> u64 {
        layout.code_bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES
            + layout.init_data_bytes.div_ceil(PAGE_BYTES) * PAGE_BYTES
    }

    fn token(&mut self, p: Pending) -> SvcToken {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, p);
        SvcToken(t)
    }

    fn storage_delay(bytes: u64) -> SimDuration {
        FILE_SERVER_READ_PER_KB * bytes.div_ceil(1024)
    }

    /// Handles a request.
    pub fn handle_request(
        &mut self,
        now: SimTime,
        msg: vkernel::MsgIn<ServiceMsg>,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let (requester, seq) = (msg.from, msg.seq);
        match msg.body {
            ServiceMsg::Stat { name } => {
                let reply = match self.images.get(&name) {
                    Some(&layout) => ServiceMsg::StatReply { layout },
                    None => {
                        self.stats.errors += 1;
                        ServiceMsg::Err(SvcError::NotFound)
                    }
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            ServiceMsg::LoadImage {
                name,
                to_lh,
                to_space,
            } => match self.images.get(&name) {
                Some(&layout) => {
                    let bytes = Self::image_bytes(&layout);
                    let pages: Vec<u32> = (0..(bytes / PAGE_BYTES) as u32).collect();
                    // The program's brand-new logical host has never sent
                    // a packet, so no binding exists for it. Its program
                    // manager (the requester) is co-resident with it —
                    // adopt that binding.
                    if !k.is_resident(to_lh) {
                        if let Some(h) = k.binding_cache().peek(requester.lh) {
                            k.learn_binding(to_lh, h);
                        }
                    }
                    let t = self.token(Pending::LoadRead {
                        requester,
                        seq,
                        to_lh,
                        to_space,
                        pages,
                        bytes,
                    });
                    out = out.timer(t, Self::storage_delay(bytes));
                }
                None => {
                    self.stats.errors += 1;
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::NotFound),
                        0,
                    ));
                }
            },
            ServiceMsg::Open { name, create } => {
                let exists = self.files.contains_key(&name);
                if !exists && !create {
                    self.stats.errors += 1;
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::NotFound),
                        0,
                    ));
                    return out;
                }
                self.stats.opens += 1;
                let size = *self.files.entry(name.clone()).or_insert(0);
                let handle = FileHandle(self.next_handle);
                self.next_handle += 1;
                self.open.insert(
                    handle,
                    OpenFile {
                        name,
                        owner: requester,
                        pos: 0,
                    },
                );
                let reply = ServiceMsg::Opened { handle, size };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            ServiceMsg::Read { handle, bytes } => match self.open.get_mut(&handle) {
                Some(f) if f.owner == requester => {
                    let size = self.files.get(&f.name).copied().unwrap_or(0);
                    let n = bytes.min(size.saturating_sub(f.pos));
                    f.pos += n;
                    self.stats.reads += 1;
                    self.stats.bytes_read += n;
                    let t = self.token(Pending::Read {
                        requester,
                        seq,
                        bytes: n,
                    });
                    out = out.timer(t, Self::storage_delay(n.max(1)));
                }
                _ => {
                    self.stats.errors += 1;
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            },
            ServiceMsg::Write { handle, bytes } => match self.open.get_mut(&handle) {
                Some(f) if f.owner == requester => {
                    f.pos += bytes;
                    let size = self.files.entry(f.name.clone()).or_insert(0);
                    *size = (*size).max(f.pos);
                    self.stats.writes += 1;
                    self.stats.bytes_written += bytes;
                    let t = self.token(Pending::Write { requester, seq });
                    out = out.timer(t, Self::storage_delay(bytes.max(1)));
                }
                _ => {
                    self.stats.errors += 1;
                    out = out.kernel(k.reply(
                        now,
                        self.pid,
                        requester,
                        seq,
                        ServiceMsg::Err(SvcError::BadRequest),
                        0,
                    ));
                }
            },
            ServiceMsg::Close { handle } => {
                let reply = if self.open.remove(&handle).is_some() {
                    ServiceMsg::Ok
                } else {
                    self.stats.errors += 1;
                    ServiceMsg::Err(SvcError::BadRequest)
                };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
            }
            _ => {
                self.stats.errors += 1;
                out = out.kernel(k.reply(
                    now,
                    self.pid,
                    requester,
                    seq,
                    ServiceMsg::Err(SvcError::BadRequest),
                    0,
                ));
            }
        }
        out
    }

    /// Handles a storage-delay timer.
    pub fn handle_timer(
        &mut self,
        now: SimTime,
        token: SvcToken,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let Some(p) = self.pending.remove(&token.0) else {
            return out;
        };
        match p {
            Pending::LoadRead {
                requester,
                seq,
                to_lh,
                to_space,
                pages,
                bytes,
            } => {
                let t = self.next_token;
                self.next_token += 1;
                self.pending.insert(
                    t,
                    Pending::LoadXfer {
                        requester,
                        seq,
                        bytes,
                    },
                );
                let (xfer, kouts) = k.copy_pages(now, self.pid, to_lh, to_space, pages);
                self.by_xfer.insert(xfer, t);
                out = out.kernel(kouts);
            }
            Pending::Read {
                requester,
                seq,
                bytes,
            } => {
                let reply = ServiceMsg::ReadDone { bytes };
                out = out.kernel(k.reply(now, self.pid, requester, seq, reply, bytes));
            }
            Pending::Write { requester, seq } => {
                out = out.kernel(k.reply(now, self.pid, requester, seq, ServiceMsg::WriteDone, 0));
            }
            Pending::LoadXfer { .. } => unreachable!("LoadXfer completes via CopyDone"),
        }
        out
    }

    /// Handles completion of an image-load bulk copy.
    pub fn handle_copy_done(
        &mut self,
        now: SimTime,
        xfer: XferId,
        result: Result<u64, SendError>,
        k: &mut Kernel<ServiceMsg>,
    ) -> SvcOutputs {
        let mut out = SvcOutputs::new();
        let Some(token) = self.by_xfer.remove(&xfer) else {
            return out;
        };
        let Some(Pending::LoadXfer {
            requester,
            seq,
            bytes,
        }) = self.pending.remove(&token)
        else {
            return out;
        };
        let reply = match result {
            Ok(_) => {
                self.stats.images_loaded += 1;
                self.stats.image_bytes += bytes;
                ServiceMsg::ImageLoaded { bytes }
            }
            Err(_) => {
                self.stats.errors += 1;
                ServiceMsg::Err(SvcError::UpstreamFailed)
            }
        };
        out = out.kernel(k.reply(now, self.pid, requester, seq, reply, 0));
        out
    }
}
