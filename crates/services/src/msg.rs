//! The service message protocol.
//!
//! V implements all services outside the kernel as server processes
//! reached by IPC (§2.1). This module defines the message bodies those
//! servers speak: program-manager operations (host queries, program
//! creation and destruction, the migration coordination steps of §3.1),
//! file-server operations (image loading for diskless workstations, plain
//! file I/O), and display-server output. The kernel routes these bodies
//! opaquely — it is the `X` type parameter of `vkernel::Kernel`.

use vkernel::{LogicalHostId, MigrationRecord, Priority, ProcessId};
use vmem::{SpaceId, SpaceLayout};
use vnet::HostAddr;
use vsim::SimTime;

use crate::env::ExecEnv;

/// A file handle issued by a file server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandle(pub u64);

/// What a VM-flush migration's target must fetch back from the paging
/// store after unfreezing (§3.2: "the new host can fault in the pages
/// from the file server on demand").
#[derive(Debug, Clone)]
pub struct FetchPlan {
    /// The paging-store logical host.
    pub from_lh: LogicalHostId,
    /// The paging-store space.
    pub from_space: SpaceId,
    /// Per destination space: the flushed pages to pull back.
    pub pages: Vec<(SpaceId, Vec<u32>)>,
}

impl FetchPlan {
    /// Total bytes the plan will move.
    pub fn total_bytes(&self) -> u64 {
        self.pages.iter().map(|(_, p)| p.len() as u64 * 2048).sum()
    }
}

/// Specification of a program to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Image file name on the file server.
    pub image: String,
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Scheduling priority ([`Priority::LOCAL`] or [`Priority::GUEST`]).
    pub priority: Priority,
    /// The execution environment to install.
    pub env: ExecEnv,
}

/// Why a service refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcError {
    /// Unknown image or file name.
    NotFound,
    /// The host declined (insufficient resources, or name mismatch).
    Declined,
    /// The operation referenced unknown state (handle, logical host).
    BadRequest,
    /// A nested operation (image load, state copy) failed.
    UpstreamFailed,
}

/// Message bodies carried by V IPC in this reproduction.
///
/// Requests and replies share the enum; the kernel does not care, and a
/// mismatched reply kind is a protocol bug surfaced by the services layer.
#[derive(Debug, Clone)]
pub enum ServiceMsg {
    // --- Program manager: host selection (§2). ---
    /// "Which hosts can run a program?" — multicast to the program-manager
    /// group. With `host_name` set, only the named host answers; with
    /// `None` ("@*"), hosts "with a reasonable amount of processor and
    /// memory resources available" answer.
    QueryHost {
        /// Specific host wanted, or `None` for any idle host.
        host_name: Option<String>,
        /// Hosts that must not answer — a migrating workstation excludes
        /// itself when looking for somewhere to push a program, and a
        /// retrying migration additionally excludes targets that already
        /// failed it.
        exclude_hosts: Vec<HostAddr>,
    },
    /// A candidate host's answer.
    HostCandidate {
        /// The responding program manager.
        pm: ProcessId,
        /// Its physical host (so the client can address bulk transfers).
        host: HostAddr,
        /// Human-readable host name.
        host_name: String,
        /// Number of programs currently executing there.
        load: u32,
    },

    // --- Program manager: program lifecycle (§2.1). ---
    /// Create a program: new logical host, team space, embryonic process,
    /// image loaded from the file server.
    CreateProgram(Box<ProgramSpec>),
    /// Program created; the initial process awaits the creator's reply.
    ProgramCreated {
        /// Root process of the new program.
        root: ProcessId,
        /// Its logical host.
        lh: LogicalHostId,
        /// Physical host it was created on.
        host: HostAddr,
    },
    /// Start the embryonic initial process (the creator "replies to the
    /// initial process").
    StartProgram {
        /// Root process to start.
        root: ProcessId,
    },
    /// Destroy a program (its whole logical host).
    DestroyProgram {
        /// The logical host to destroy.
        lh: LogicalHostId,
    },
    /// Suspend a program (§2: works locally or remotely) — freezes its
    /// logical host in place.
    SuspendProgram {
        /// The program's logical host.
        lh: LogicalHostId,
    },
    /// Resume a suspended program.
    ResumeProgram {
        /// The program's logical host.
        lh: LogicalHostId,
    },
    /// Block until the program exits (the reply comes when it is
    /// destroyed; reply-pending packets carry the long wait). Lets one
    /// program decompose work into subprograms on other hosts (§2).
    WaitProgram {
        /// The program's logical host.
        lh: LogicalHostId,
    },
    /// List the programs this manager runs (the §2 "suite of programs
    /// ... for querying and managing program execution").
    ListPrograms,
    /// Reply to [`ServiceMsg::ListPrograms`].
    ProgramList {
        /// (logical host, image, remote-origin, suspended) per program.
        programs: Vec<(LogicalHostId, String, bool, bool)>,
    },
    /// Report resource usage (for the suite of query programs).
    QueryLoad,
    /// Load report.
    LoadReport {
        /// Programs resident.
        programs: u32,
        /// Free memory in bytes.
        free_bytes: u64,
        /// True if the owner is actively using the workstation.
        owner_active: bool,
    },

    // --- Program manager: migration coordination (§3.1). ---
    /// Step 2 of migration: initialize the new host with descriptors for
    /// the incoming logical host, under a temporary id.
    InitMigration {
        /// Temporary logical-host id for the new copy.
        temp: LogicalHostId,
        /// Address spaces to pre-create.
        spaces: Vec<(SpaceId, SpaceLayout)>,
    },
    /// New host accepted and stands ready for pre-copy.
    MigrationAccepted {
        /// The accepting physical host.
        host: HostAddr,
    },
    /// Step 4: copy the frozen logical host's kernel/PM state and take
    /// over its identity.
    InstallState {
        /// The temporary logical host to rename.
        temp: LogicalHostId,
        /// The kernel state (descriptor + in-flight IPC).
        record: Box<MigrationRecord<ServiceMsg>>,
        /// Image name, for the target program manager's bookkeeping.
        image: String,
        /// Priority the program runs at on the new host.
        priority: Priority,
        /// Pages to demand-fetch from the paging store (VM-flush
        /// migrations only).
        fetch: Option<FetchPlan>,
        /// The program's origin host, so its lease follows it to the new
        /// host (`None` for programs with no recorded origin).
        origin: Option<HostAddr>,
    },
    /// Step 5 (target side): unfreeze the new copy.
    UnfreezeMigrated {
        /// The migrated logical host (original id).
        lh: LogicalHostId,
    },
    /// Abort: destroy the temporary logical host.
    AbortMigration {
        /// The temporary logical host to discard.
        temp: LogicalHostId,
    },
    /// Ask the program manager to migrate one of its programs away
    /// (`migrateprog`). `destroy_if_stuck` is the `-n` flag.
    MigrateProgram {
        /// The program's logical host.
        lh: LogicalHostId,
        /// Destroy the program if no host will take it.
        destroy_if_stuck: bool,
    },

    // --- Program manager: lease-based liveness. ---
    /// Heartbeat from the program manager hosting a remote program to the
    /// program's origin: "lh is alive here — extend its lease". The
    /// origin answers [`ServiceMsg::LeaseGranted`] (or
    /// `Err(NotFound)` when the lease was revoked, which obliges the
    /// holder to exterminate the orphan immediately).
    RenewLease {
        /// The leased program's logical host.
        lh: LogicalHostId,
    },
    /// The origin extended the lease.
    LeaseGranted {
        /// New expiry instant (simulated time).
        until: SimTime,
    },
    /// The holder destroyed (or handed off) the program deliberately; the
    /// origin drops its grant instead of probing and re-executing.
    ReleaseLease {
        /// The released program's logical host.
        lh: LogicalHostId,
    },
    /// Origin-side liveness probe, sent to the program-manager group of
    /// `lh` when heartbeats stop: whoever hosts the program answers
    /// [`ServiceMsg::ProgramAt`]; a send timeout means nobody does.
    QueryProgram {
        /// The probed program's logical host.
        lh: LogicalHostId,
    },
    /// Probe answer: the program is alive here.
    ProgramAt {
        /// The physical host currently running the program.
        host: HostAddr,
    },

    // --- File server. ---
    /// Image metadata (size/layout) lookup.
    Stat {
        /// Image name.
        name: String,
    },
    /// Image metadata.
    StatReply {
        /// The image's address-space layout.
        layout: SpaceLayout,
    },
    /// Load an image into a (remote) address space; the file server bulk-
    /// copies it at the calibrated 330 ms / 100 KB.
    LoadImage {
        /// Image name.
        name: String,
        /// Destination logical host.
        to_lh: LogicalHostId,
        /// Destination space.
        to_space: SpaceId,
    },
    /// Image loaded.
    ImageLoaded {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Open (or create) a file.
    Open {
        /// File name.
        name: String,
        /// Create if missing.
        create: bool,
    },
    /// Open succeeded.
    Opened {
        /// Handle for subsequent I/O.
        handle: FileHandle,
        /// Current size.
        size: u64,
    },
    /// Read bytes (sequential; the model tracks counts, not content).
    Read {
        /// Open handle.
        handle: FileHandle,
        /// Bytes wanted.
        bytes: u64,
    },
    /// Read completed (data travels as `data_bytes` on the reply).
    ReadDone {
        /// Bytes actually read.
        bytes: u64,
    },
    /// Write bytes.
    Write {
        /// Open handle.
        handle: FileHandle,
        /// Bytes written (travel as `data_bytes` on the request).
        bytes: u64,
    },
    /// Write completed.
    WriteDone,
    /// Close a handle.
    Close {
        /// Handle to close.
        handle: FileHandle,
    },

    // --- Display server (§2: co-resident with the frame buffer). ---
    /// Write characters to the user's display.
    WriteChars {
        /// Character count.
        count: u64,
    },

    // --- Generic. ---
    /// Success with nothing else to say.
    Ok,
    /// Failure.
    Err(SvcError),
}

impl ServiceMsg {
    /// True for the generic success reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, ServiceMsg::Ok)
    }

    /// Extracts the error if this is a failure reply.
    pub fn as_err(&self) -> Option<SvcError> {
        match self {
            ServiceMsg::Err(e) => Some(*e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_and_err_helpers() {
        assert!(ServiceMsg::Ok.is_ok());
        assert!(!ServiceMsg::QueryLoad.is_ok());
        assert_eq!(
            ServiceMsg::Err(SvcError::NotFound).as_err(),
            Some(SvcError::NotFound)
        );
        assert_eq!(ServiceMsg::Ok.as_err(), None);
    }

    #[test]
    fn messages_are_cloneable_for_retransmission() {
        let m = ServiceMsg::CreateProgram(Box::new(ProgramSpec {
            image: "cc68".into(),
            args: vec!["-O".into()],
            priority: Priority::GUEST,
            env: ExecEnv::default(),
        }));
        let m2 = m.clone();
        match (m, m2) {
            (ServiceMsg::CreateProgram(a), ServiceMsg::CreateProgram(b)) => {
                assert_eq!(a.image, b.image);
                assert_eq!(a.args, b.args);
            }
            _ => panic!("clone changed variant"),
        }
    }
}
