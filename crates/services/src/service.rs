//! Common plumbing for server processes.
//!
//! Services, like the kernel, are sans-IO state machines. Their handlers
//! receive a mutable reference to the co-resident kernel (they run on the
//! same workstation and use its primitives directly, as the paper's
//! program manager "uses the kernel server to set up the address space"),
//! and return [`SvcOutputs`]: kernel outputs to execute, service-level
//! timers to arm, and high-level events the cluster runtime reacts to.

use vkernel::{KernelOutput, LogicalHostId, ProcessId, SendSeq};
use vsim::SimDuration;

use crate::msg::ServiceMsg;

/// A service-level timer token (meaning is private to each service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SvcToken(pub u64);

/// What a service handler wants done.
#[derive(Debug, Default)]
pub struct SvcOutputs {
    /// Kernel actions (transmissions, timers, deliveries...).
    pub kernel: Vec<KernelOutput<ServiceMsg>>,
    /// Service timers to arm: the runtime calls the service's
    /// `handle_timer` with the token after the delay.
    pub timers: Vec<(SvcToken, SimDuration)>,
    /// High-level events for the cluster runtime.
    pub events: Vec<SvcEvent>,
}

impl SvcOutputs {
    /// An empty output set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs kernel outputs.
    pub fn kernel(mut self, outs: Vec<KernelOutput<ServiceMsg>>) -> Self {
        self.kernel.extend(outs);
        self
    }

    /// Arms a timer.
    pub fn timer(mut self, token: SvcToken, after: SimDuration) -> Self {
        self.timers.push((token, after));
        self
    }

    /// Emits an event.
    pub fn event(mut self, e: SvcEvent) -> Self {
        self.events.push(e);
        self
    }

    /// Merges another output set into this one.
    pub fn merge(&mut self, other: SvcOutputs) {
        self.kernel.extend(other.kernel);
        self.timers.extend(other.timers);
        self.events.extend(other.events);
    }
}

/// High-level events services report to the cluster runtime.
#[derive(Debug, Clone)]
pub enum SvcEvent {
    /// A program's initial process was started; the runtime attaches its
    /// behaviour model.
    ProgramStarted {
        /// Root process.
        root: ProcessId,
        /// Its logical host.
        lh: LogicalHostId,
        /// Image name.
        image: String,
        /// Arguments.
        args: Vec<String>,
    },
    /// A program (logical host) was destroyed.
    ProgramDestroyed {
        /// The destroyed logical host.
        lh: LogicalHostId,
    },
    /// A suspended program was resumed in place; the runtime re-queues it
    /// on the CPU.
    ProgramResumed {
        /// The resumed logical host.
        lh: LogicalHostId,
    },
    /// A migrated logical host was installed and unfrozen here; the
    /// runtime re-attaches the program's behaviour on this workstation.
    LogicalHostAdopted {
        /// The adopted logical host.
        lh: LogicalHostId,
    },
    /// `migrateprog` asked this program manager to evict a program; the
    /// migration engine takes over and must eventually reply to
    /// `(requester, seq)`.
    MigrateRequested {
        /// Logical host to evict.
        lh: LogicalHostId,
        /// Destroy it if no host accepts (`-n`).
        destroy_if_stuck: bool,
        /// Who asked.
        requester: ProcessId,
        /// Their transaction, to reply to when done.
        seq: SendSeq,
    },
    /// This program manager exterminated an orphan: a remote-origin
    /// program whose lease expired past grace (or was revoked by the
    /// origin). The program is already gone from the kernel.
    OrphanExterminated {
        /// The exterminated logical host.
        lh: LogicalHostId,
    },
    /// The origin's liveness probe found its leased program alive
    /// (possibly on a new host after a migration) and rebound the lease.
    LeaseRebound {
        /// The leased program.
        lh: LogicalHostId,
        /// The host it was found on.
        to: vnet::HostAddr,
    },
    /// The origin lost a remote host's heartbeats past the grace window
    /// and its liveness probe went unanswered: the program is presumed
    /// dead and should be executed again from its origin.
    ReExecNeeded {
        /// The lost program's logical host (the re-execution gets a fresh
        /// one).
        lh: LogicalHostId,
    },
    /// A lease-protocol fault point was crossed (used by the fault-matrix
    /// machinery to pin faults to protocol steps).
    LeasePoint {
        /// The program involved.
        lh: LogicalHostId,
        /// Which registered step was crossed.
        step: vsim::ProtocolStep,
        /// Which party crossed it.
        party: vsim::Party,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let out = SvcOutputs::new()
            .timer(SvcToken(1), SimDuration::from_millis(21))
            .event(SvcEvent::ProgramDestroyed {
                lh: LogicalHostId(5),
            });
        assert_eq!(out.kernel.len(), 0);
        assert_eq!(out.timers.len(), 1);
        assert_eq!(out.events.len(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = SvcOutputs::new().timer(SvcToken(1), SimDuration::from_millis(1));
        let b = SvcOutputs::new().timer(SvcToken(2), SimDuration::from_millis(2));
        a.merge(b);
        assert_eq!(a.timers.len(), 2);
    }
}
