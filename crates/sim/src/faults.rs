//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of scheduled, seed-reproducible fault events:
//! station crashes with optional reboot, asymmetric network partitions with
//! heal, per-link latency spikes, payload corruption windows, and service
//! crash-restarts. Events fire either at an absolute simulated time or when a
//! migration reaches a named protocol step ("after pre-copy round 2", "while
//! frozen", "after commit"), so failure timing can be pinned to exactly the
//! windows the paper's recovery arguments (§3.1.3, §3.3, §5) depend on.
//!
//! The plan itself is pure data; the cluster runtime executes it. Because a
//! plan is fixed up front and every stochastic choice inside the simulation
//! draws from a [`DetRng`], a run with a given seed and plan replays exactly.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A named step of the migration protocol that a fault can be pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// The given pre-copy round (1-based) has just completed.
    AfterPrecopyRound(u32),
    /// The logical host has just been frozen for the final copy.
    WhileFrozen,
    /// The state record was installed at the target (commit point) but the
    /// unfreeze request has not yet been sent.
    AfterCommit,
}

impl core::fmt::Display for MigrationPhase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationPhase::AfterPrecopyRound(n) => write!(f, "after-precopy-round-{n}"),
            MigrationPhase::WhileFrozen => write!(f, "while-frozen"),
            MigrationPhase::AfterCommit => write!(f, "after-commit"),
        }
    }
}

/// When a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At an absolute simulated instant.
    At(SimTime),
    /// When a migration reaches `phase`. Fires once, for the first matching
    /// migration.
    OnMigrationPhase {
        /// Restrict to this logical host id (`None` = any migration).
        lh: Option<u32>,
        /// The protocol step to fire at.
        phase: MigrationPhase,
    },
}

/// What the fault does.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Power station `ws` off; optionally power it back on after a delay.
    Crash {
        /// Station index (cluster numbering: 0 is the file server).
        ws: u16,
        /// Reboot delay, or `None` to leave the station down.
        reboot_after: Option<SimDuration>,
    },
    /// Block frames from group `a` to group `b` (and the reverse direction
    /// when `symmetric`); optionally heal after a delay.
    Partition {
        /// First station group.
        a: Vec<u16>,
        /// Second station group.
        b: Vec<u16>,
        /// Also block b → a traffic.
        symmetric: bool,
        /// Heal delay, or `None` to leave the partition in place.
        heal_after: Option<SimDuration>,
    },
    /// Add `extra` latency to frames on the directed link `from → to` for
    /// `duration`.
    LatencySpike {
        /// Sending station.
        from: u16,
        /// Receiving station.
        to: u16,
        /// Extra per-frame delivery latency.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Corrupt each delivered frame's payload with `probability` for
    /// `duration`; corrupt frames fail the receiver's checksum and are
    /// dropped.
    Corrupt {
        /// Per-delivery corruption probability.
        probability: f64,
        /// How long the corruption window lasts.
        duration: SimDuration,
    },
    /// Crash-restart station `ws`'s program manager: in-flight transaction
    /// state is lost; the program ledger (recoverable from kernel state) and
    /// the migration watchdog survive.
    ServiceRestart {
        /// Station index.
        ws: u16,
    },
}

impl FaultKind {
    /// A short static label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Partition { .. } => "partition",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::ServiceRestart { .. } => "service-restart",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub kind: FaultKind,
}

/// A seed-reproducible schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The fault events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, builder-style.
    pub fn with(mut self, trigger: FaultTrigger, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { trigger, kind });
        self
    }

    /// Generates a random-but-reproducible plan of 2–5 events over
    /// `stations` stations (index 0, the file server, is never crashed or
    /// restarted) within `horizon`. Every crash reboots and every partition
    /// heals, so a correct cluster must converge to a coherent state.
    ///
    /// # Panics
    ///
    /// Panics if `stations < 3` (fault targets need at least two
    /// workstations) or `horizon` is shorter than 2 s.
    pub fn random(rng: &mut DetRng, stations: u16, horizon: SimDuration) -> Self {
        assert!(stations >= 3, "need at least two workstations");
        assert!(
            horizon >= SimDuration::from_secs(2),
            "horizon too short for a fault plan"
        );
        let n = rng.range_u64(2, 6);
        let mut events = Vec::new();
        for _ in 0..n {
            let trigger = if rng.chance(0.6) {
                FaultTrigger::At(SimTime::from_micros(
                    rng.range_u64(1_000_000, horizon.as_micros().max(1_000_001)),
                ))
            } else {
                let phase = match rng.index(3) {
                    0 => MigrationPhase::AfterPrecopyRound(rng.range_u64(1, 3) as u32),
                    1 => MigrationPhase::WhileFrozen,
                    _ => MigrationPhase::AfterCommit,
                };
                FaultTrigger::OnMigrationPhase { lh: None, phase }
            };
            let kind = match rng.index(5) {
                0 => FaultKind::Crash {
                    ws: rng.range_u64(1, stations as u64) as u16,
                    reboot_after: Some(SimDuration::from_millis(rng.range_u64(3_000, 20_000))),
                },
                1 => {
                    let a = rng.range_u64(1, stations as u64) as u16;
                    let mut b = rng.range_u64(1, stations as u64) as u16;
                    if b == a {
                        b = 1 + (a % (stations - 1));
                    }
                    FaultKind::Partition {
                        a: vec![a],
                        b: vec![b],
                        symmetric: rng.chance(0.5),
                        heal_after: Some(SimDuration::from_millis(rng.range_u64(3_000, 15_000))),
                    }
                }
                2 => {
                    let from = rng.range_u64(0, stations as u64) as u16;
                    let mut to = rng.range_u64(0, stations as u64) as u16;
                    if to == from {
                        to = (from + 1) % stations;
                    }
                    FaultKind::LatencySpike {
                        from,
                        to,
                        extra: SimDuration::from_millis(rng.range_u64(5, 200)),
                        duration: SimDuration::from_millis(rng.range_u64(2_000, 10_000)),
                    }
                }
                3 => FaultKind::Corrupt {
                    probability: rng.range_f64(0.05, 0.3),
                    duration: SimDuration::from_millis(rng.range_u64(2_000, 8_000)),
                },
                _ => FaultKind::ServiceRestart {
                    ws: rng.range_u64(1, stations as u64) as u16,
                },
            };
            events.push(FaultEvent { trigger, kind });
        }
        FaultPlan { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(&mut DetRng::seed(9), 5, SimDuration::from_secs(60));
        let b = FaultPlan::random(&mut DetRng::seed(9), 5, SimDuration::from_secs(60));
        assert_eq!(a, b);
        assert!(a.events.len() >= 2 && a.events.len() <= 5);
    }

    #[test]
    fn random_plans_never_target_the_file_server() {
        for seed in 0..50 {
            let p = FaultPlan::random(&mut DetRng::seed(seed), 4, SimDuration::from_secs(30));
            for e in &p.events {
                match &e.kind {
                    FaultKind::Crash { ws, reboot_after } => {
                        assert!(*ws >= 1);
                        assert!(reboot_after.is_some(), "random crashes must reboot");
                    }
                    FaultKind::Partition {
                        a, b, heal_after, ..
                    } => {
                        assert!(a.iter().all(|&w| w >= 1));
                        assert!(b.iter().all(|&w| w >= 1));
                        assert_ne!(a, b);
                        assert!(heal_after.is_some(), "random partitions must heal");
                    }
                    FaultKind::ServiceRestart { ws } => assert!(*ws >= 1),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn builder_collects_events() {
        let p = FaultPlan::none().with(
            FaultTrigger::At(SimTime::from_micros(5)),
            FaultKind::Corrupt {
                probability: 0.1,
                duration: SimDuration::from_secs(1),
            },
        );
        assert_eq!(p.events.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.events[0].kind.label(), "corrupt");
    }
}
