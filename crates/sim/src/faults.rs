//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a list of scheduled, seed-reproducible fault events:
//! station crashes with optional reboot, asymmetric network partitions with
//! heal, per-link latency spikes, payload corruption windows, and service
//! crash-restarts. Events fire either at an absolute simulated time or when a
//! migration reaches a named protocol step ("after pre-copy round 2", "while
//! frozen", "after commit"), so failure timing can be pinned to exactly the
//! windows the paper's recovery arguments (§3.1.3, §3.3, §5) depend on.
//!
//! The plan itself is pure data; the cluster runtime executes it. Because a
//! plan is fixed up front and every stochastic choice inside the simulation
//! draws from a [`DetRng`], a run with a given seed and plan replays exactly.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// A named step of the migration protocol that a fault can be pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// The given pre-copy round (1-based) has just completed.
    AfterPrecopyRound(u32),
    /// The logical host has just been frozen for the final copy.
    WhileFrozen,
    /// The state record was installed at the target (commit point) but the
    /// unfreeze request has not yet been sent.
    AfterCommit,
}

impl core::fmt::Display for MigrationPhase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationPhase::AfterPrecopyRound(n) => write!(f, "after-precopy-round-{n}"),
            MigrationPhase::WhileFrozen => write!(f, "while-frozen"),
            MigrationPhase::AfterCommit => write!(f, "after-commit"),
        }
    }
}

/// The protocol party a fault point names — the station the fault hits
/// when an [`FaultTrigger::AtFaultPoint`] trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Party {
    /// The migration source (the station currently hosting the program).
    Source,
    /// The migration target (the station receiving the copy), or — for
    /// lease steps — the remote station holding the leased program.
    Target,
    /// The program's origin station (the host it was executed from, which
    /// grants and renews its lease).
    Origin,
}

impl Party {
    /// Short static label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Party::Source => "source",
            Party::Target => "target",
            Party::Origin => "origin",
        }
    }
}

impl core::fmt::Display for Party {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A protocol step at which fault points are registered. Migration steps
/// follow §3.1's five-step protocol; lease steps cover the liveness
/// subsystem (heartbeat renewal, expiry handling, re-execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtocolStep {
    /// Host selection answered (a target accepted `InitMigration`
    /// negotiation is about to begin).
    SelectHost,
    /// The target accepted `InitMigration` and allocated the temporary
    /// logical host.
    InitTarget,
    /// A pre-copy round just completed.
    PrecopyRound,
    /// The logical host was frozen for the final copy.
    Freeze,
    /// The residual (frozen) copy finished transferring.
    ResidualCopy,
    /// The state record was installed at the target — the commit point.
    Commit,
    /// The migrated copy was unfrozen at the target.
    Unfreeze,
    /// The source deleted its copy, releasing the old logical host.
    ReleaseSource,
    /// A lease heartbeat renewal round (remote holder sends, origin
    /// grants).
    LeaseRenew,
    /// A lease ran out: the holder is about to exterminate the orphan, or
    /// the origin declared the remote host silent.
    LeaseExpiry,
    /// The origin is about to re-execute a program whose remote host went
    /// silent.
    ReExec,
}

impl core::fmt::Display for ProtocolStep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl ProtocolStep {
    /// A short static label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolStep::SelectHost => "select-host",
            ProtocolStep::InitTarget => "init-target",
            ProtocolStep::PrecopyRound => "precopy-round",
            ProtocolStep::Freeze => "freeze",
            ProtocolStep::ResidualCopy => "residual-copy",
            ProtocolStep::Commit => "commit",
            ProtocolStep::Unfreeze => "unfreeze",
            ProtocolStep::ReleaseSource => "release-source",
            ProtocolStep::LeaseRenew => "lease-renew",
            ProtocolStep::LeaseExpiry => "lease-expiry",
            ProtocolStep::ReExec => "re-exec",
        }
    }
}

/// One registered fault point: a protocol step crossed with the party the
/// fault hits. The full registry is [`fault_points`]; matrix tests
/// enumerate it so coverage of every point is guaranteed by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultPoint {
    /// The protocol step.
    pub step: ProtocolStep,
    /// The party the fault hits when triggered here.
    pub party: Party,
}

impl core::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.step, self.party)
    }
}

/// Shorthand constructor used by the registry table.
const fn fp(step: ProtocolStep, party: Party) -> FaultPoint {
    FaultPoint { step, party }
}

/// The complete fault-point registry: every (protocol step × party)
/// combination the runtime can resolve and fire a fault at. Parties are
/// only listed for steps where they exist — e.g. `ReleaseSource` has no
/// target party (the target already owns the program by then), and
/// `ReExec` only involves the origin.
pub fn fault_points() -> &'static [FaultPoint] {
    // Full `Enum::Variant` paths on purpose: the vlint dispatch audit
    // checks this registry names every `ProtocolStep` variant, so adding
    // a step without deciding its fault points fails the lint. Glob
    // imports would hide the variants from that token-level check.
    const REGISTRY: &[FaultPoint] = &[
        fp(ProtocolStep::SelectHost, Party::Source),
        fp(ProtocolStep::SelectHost, Party::Origin),
        fp(ProtocolStep::InitTarget, Party::Source),
        fp(ProtocolStep::InitTarget, Party::Target),
        fp(ProtocolStep::PrecopyRound, Party::Source),
        fp(ProtocolStep::PrecopyRound, Party::Target),
        fp(ProtocolStep::Freeze, Party::Source),
        fp(ProtocolStep::Freeze, Party::Target),
        fp(ProtocolStep::ResidualCopy, Party::Source),
        fp(ProtocolStep::ResidualCopy, Party::Target),
        fp(ProtocolStep::Commit, Party::Source),
        fp(ProtocolStep::Commit, Party::Target),
        fp(ProtocolStep::Commit, Party::Origin),
        fp(ProtocolStep::Unfreeze, Party::Source),
        fp(ProtocolStep::Unfreeze, Party::Target),
        fp(ProtocolStep::ReleaseSource, Party::Source),
        fp(ProtocolStep::LeaseRenew, Party::Target),
        fp(ProtocolStep::LeaseRenew, Party::Origin),
        fp(ProtocolStep::LeaseExpiry, Party::Target),
        fp(ProtocolStep::LeaseExpiry, Party::Origin),
        fp(ProtocolStep::ReExec, Party::Origin),
    ];
    REGISTRY
}

/// Station-index sentinel for [`FaultTrigger::AtFaultPoint`] events: a
/// `FaultKind` station field set to `PARTY` is resolved to the point's
/// party station when the trigger fires (a `Partition` whose `b` side is
/// empty is resolved to "everyone else"). This keeps `FaultPlan` pure
/// data: the plan names *who in the protocol* fails, and the runtime
/// binds that to a concrete station at fire time.
pub const PARTY: u16 = u16::MAX;

/// When a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At an absolute simulated instant.
    At(SimTime),
    /// When a migration reaches `phase`. Fires once, for the first matching
    /// migration.
    OnMigrationPhase {
        /// Restrict to this logical host id (`None` = any migration).
        lh: Option<u32>,
        /// The protocol step to fire at.
        phase: MigrationPhase,
    },
    /// When the protocol crosses a registered [`FaultPoint`]. Fires once,
    /// for the first matching crossing; station fields in the paired
    /// `FaultKind` equal to [`PARTY`] are resolved to the point's party
    /// station at fire time.
    AtFaultPoint {
        /// Restrict to this logical host id (`None` = any program).
        lh: Option<u32>,
        /// The registered point to fire at.
        point: FaultPoint,
    },
}

/// What the fault does.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Power station `ws` off; optionally power it back on after a delay.
    Crash {
        /// Station index (cluster numbering: 0 is the file server).
        ws: u16,
        /// Reboot delay, or `None` to leave the station down.
        reboot_after: Option<SimDuration>,
    },
    /// Block frames from group `a` to group `b` (and the reverse direction
    /// when `symmetric`); optionally heal after a delay.
    Partition {
        /// First station group.
        a: Vec<u16>,
        /// Second station group.
        b: Vec<u16>,
        /// Also block b → a traffic.
        symmetric: bool,
        /// Heal delay, or `None` to leave the partition in place.
        heal_after: Option<SimDuration>,
    },
    /// Add `extra` latency to frames on the directed link `from → to` for
    /// `duration`.
    LatencySpike {
        /// Sending station.
        from: u16,
        /// Receiving station.
        to: u16,
        /// Extra per-frame delivery latency.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Corrupt each delivered frame's payload with `probability` for
    /// `duration`; corrupt frames fail the receiver's checksum and are
    /// dropped.
    Corrupt {
        /// Per-delivery corruption probability.
        probability: f64,
        /// How long the corruption window lasts.
        duration: SimDuration,
    },
    /// Crash-restart station `ws`'s program manager: in-flight transaction
    /// state is lost; the program ledger (recoverable from kernel state) and
    /// the migration watchdog survive.
    ServiceRestart {
        /// Station index.
        ws: u16,
    },
}

impl FaultKind {
    /// A short static label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Partition { .. } => "partition",
            FaultKind::LatencySpike { .. } => "latency-spike",
            FaultKind::Corrupt { .. } => "corrupt",
            FaultKind::ServiceRestart { .. } => "service-restart",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When it fires.
    pub trigger: FaultTrigger,
    /// What it does.
    pub kind: FaultKind,
}

/// A seed-reproducible schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The fault events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event, builder-style.
    pub fn with(mut self, trigger: FaultTrigger, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { trigger, kind });
        self
    }

    /// Generates a random-but-reproducible plan of 2–5 events over
    /// `stations` stations (index 0, the file server, is never crashed or
    /// restarted) within `horizon`. Every crash reboots and every partition
    /// heals, so a correct cluster must converge to a coherent state.
    ///
    /// # Panics
    ///
    /// Panics if `stations < 3` (fault targets need at least two
    /// workstations) or `horizon` is shorter than 2 s.
    pub fn random(rng: &mut DetRng, stations: u16, horizon: SimDuration) -> Self {
        assert!(stations >= 3, "need at least two workstations");
        assert!(
            horizon >= SimDuration::from_secs(2),
            "horizon too short for a fault plan"
        );
        let n = rng.range_u64(2, 6);
        let mut events = Vec::new();
        for _ in 0..n {
            let trigger = if rng.chance(0.6) {
                FaultTrigger::At(SimTime::from_micros(
                    rng.range_u64(1_000_000, horizon.as_micros().max(1_000_001)),
                ))
            } else {
                let phase = match rng.index(3) {
                    0 => MigrationPhase::AfterPrecopyRound(rng.range_u64(1, 3) as u32),
                    1 => MigrationPhase::WhileFrozen,
                    _ => MigrationPhase::AfterCommit,
                };
                FaultTrigger::OnMigrationPhase { lh: None, phase }
            };
            let kind = match rng.index(5) {
                0 => FaultKind::Crash {
                    ws: rng.range_u64(1, stations as u64) as u16,
                    reboot_after: Some(SimDuration::from_millis(rng.range_u64(3_000, 20_000))),
                },
                1 => {
                    let a = rng.range_u64(1, stations as u64) as u16;
                    let mut b = rng.range_u64(1, stations as u64) as u16;
                    if b == a {
                        b = 1 + (a % (stations - 1));
                    }
                    FaultKind::Partition {
                        a: vec![a],
                        b: vec![b],
                        symmetric: rng.chance(0.5),
                        heal_after: Some(SimDuration::from_millis(rng.range_u64(3_000, 15_000))),
                    }
                }
                2 => {
                    let from = rng.range_u64(0, stations as u64) as u16;
                    let mut to = rng.range_u64(0, stations as u64) as u16;
                    if to == from {
                        to = (from + 1) % stations;
                    }
                    FaultKind::LatencySpike {
                        from,
                        to,
                        extra: SimDuration::from_millis(rng.range_u64(5, 200)),
                        duration: SimDuration::from_millis(rng.range_u64(2_000, 10_000)),
                    }
                }
                3 => FaultKind::Corrupt {
                    probability: rng.range_f64(0.05, 0.3),
                    duration: SimDuration::from_millis(rng.range_u64(2_000, 8_000)),
                },
                _ => FaultKind::ServiceRestart {
                    ws: rng.range_u64(1, stations as u64) as u16,
                },
            };
            events.push(FaultEvent { trigger, kind });
        }
        FaultPlan { events }
    }

    /// The names accepted by [`FaultPlan::by_name`], for sweep validation
    /// and documentation.
    pub fn names() -> &'static [&'static str] {
        &[
            "none",
            "random",
            "crash_storm",
            "partition_heavy",
            "corruption",
            "lease_chaos",
        ]
    }

    /// Builds a named, seed-reproducible plan — the declarative form used
    /// by sweep grids, where a fault-plan axis is a list of names just
    /// like a scalar knob is a list of numbers. Returns `None` for an
    /// unknown name (callers report it against [`FaultPlan::names`]).
    ///
    /// All named plans are self-healing (crashes reboot, partitions heal)
    /// except where a plan's purpose is to exercise permanent loss; every
    /// plan obeys [`FaultPlan::random`]'s station-count and horizon
    /// preconditions.
    pub fn by_name(name: &str, seed: u64, stations: u16, horizon: SimDuration) -> Option<Self> {
        assert!(stations >= 3, "need at least two workstations");
        assert!(
            horizon >= SimDuration::from_secs(2),
            "horizon too short for a fault plan"
        );
        // Mix the plan name into the seed so sibling axes draw different
        // schedules from the same sweep seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = DetRng::seed(seed ^ h);
        let span = horizon.as_micros().max(2_000_001);
        let ws = |rng: &mut DetRng| u16::try_from(rng.range_u64(1, stations as u64)).unwrap_or(1);
        let at = |rng: &mut DetRng| {
            FaultTrigger::At(SimTime::from_micros(rng.range_u64(1_000_000, span)))
        };
        let mut plan = FaultPlan::none();
        match name {
            "none" => {}
            "random" => plan = FaultPlan::random(&mut rng, stations, horizon),
            "crash_storm" => {
                for _ in 0..3 {
                    let trigger = at(&mut rng);
                    plan = plan.with(
                        trigger,
                        FaultKind::Crash {
                            ws: ws(&mut rng),
                            reboot_after: Some(SimDuration::from_millis(
                                rng.range_u64(3_000, 12_000),
                            )),
                        },
                    );
                }
            }
            "partition_heavy" => {
                for _ in 0..2 {
                    let a = ws(&mut rng);
                    let mut b = ws(&mut rng);
                    if b == a {
                        b = 1 + (a % (stations - 1));
                    }
                    let trigger = at(&mut rng);
                    plan = plan.with(
                        trigger,
                        FaultKind::Partition {
                            a: vec![a],
                            b: vec![b],
                            symmetric: true,
                            heal_after: Some(SimDuration::from_millis(
                                rng.range_u64(4_000, 15_000),
                            )),
                        },
                    );
                }
            }
            "corruption" => {
                for _ in 0..2 {
                    let trigger = at(&mut rng);
                    plan = plan.with(
                        trigger,
                        FaultKind::Corrupt {
                            probability: rng.range_f64(0.1, 0.4),
                            duration: SimDuration::from_millis(rng.range_u64(2_000, 8_000)),
                        },
                    );
                }
            }
            "lease_chaos" => {
                // A crash long enough to outlive a default lease plus its
                // grace window (so extermination / re-exec paths fire),
                // and a partition racing the grace window.
                let trigger = at(&mut rng);
                plan = plan.with(
                    trigger,
                    FaultKind::Crash {
                        ws: ws(&mut rng),
                        reboot_after: Some(SimDuration::from_millis(rng.range_u64(18_000, 30_000))),
                    },
                );
                let a = ws(&mut rng);
                let mut b = ws(&mut rng);
                if b == a {
                    b = 1 + (a % (stations - 1));
                }
                let trigger = at(&mut rng);
                plan = plan.with(
                    trigger,
                    FaultKind::Partition {
                        a: vec![a],
                        b: vec![b],
                        symmetric: true,
                        heal_after: Some(SimDuration::from_millis(rng.range_u64(12_000, 22_000))),
                    },
                );
            }
            _ => return None,
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(&mut DetRng::seed(9), 5, SimDuration::from_secs(60));
        let b = FaultPlan::random(&mut DetRng::seed(9), 5, SimDuration::from_secs(60));
        assert_eq!(a, b);
        assert!(a.events.len() >= 2 && a.events.len() <= 5);
    }

    #[test]
    fn random_plans_never_target_the_file_server() {
        for seed in 0..50 {
            let p = FaultPlan::random(&mut DetRng::seed(seed), 4, SimDuration::from_secs(30));
            for e in &p.events {
                match &e.kind {
                    FaultKind::Crash { ws, reboot_after } => {
                        assert!(*ws >= 1);
                        assert!(reboot_after.is_some(), "random crashes must reboot");
                    }
                    FaultKind::Partition {
                        a, b, heal_after, ..
                    } => {
                        assert!(a.iter().all(|&w| w >= 1));
                        assert!(b.iter().all(|&w| w >= 1));
                        assert_ne!(a, b);
                        assert!(heal_after.is_some(), "random partitions must heal");
                    }
                    FaultKind::ServiceRestart { ws } => assert!(*ws >= 1),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn registry_is_unique_and_displayable() {
        let points = fault_points();
        assert!(points.len() >= 15, "registry should stay exhaustive");
        let unique: std::collections::BTreeSet<_> = points.iter().copied().collect();
        assert_eq!(unique.len(), points.len(), "duplicate fault point");
        for p in points {
            assert!(p.to_string().contains('/'));
        }
    }

    #[test]
    fn named_plans_are_reproducible_and_validated() {
        for name in FaultPlan::names() {
            let a = FaultPlan::by_name(name, 11, 5, SimDuration::from_secs(30))
                .unwrap_or_else(|| panic!("{name} must resolve"));
            let b = FaultPlan::by_name(name, 11, 5, SimDuration::from_secs(30)).unwrap();
            assert_eq!(a, b, "{name} must replay");
            if *name != "none" {
                assert!(!a.is_empty(), "{name} must schedule something");
            }
        }
        assert!(FaultPlan::by_name("nope", 1, 5, SimDuration::from_secs(30)).is_none());
        // Sibling names must not collapse to the same schedule.
        let storm = FaultPlan::by_name("crash_storm", 7, 5, SimDuration::from_secs(30)).unwrap();
        let parts =
            FaultPlan::by_name("partition_heavy", 7, 5, SimDuration::from_secs(30)).unwrap();
        assert_ne!(storm, parts);
    }

    #[test]
    fn builder_collects_events() {
        let p = FaultPlan::none().with(
            FaultTrigger::At(SimTime::from_micros(5)),
            FaultKind::Corrupt {
                probability: 0.1,
                duration: SimDuration::from_secs(1),
            },
        );
        assert_eq!(p.events.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(p.events[0].kind.label(), "corrupt");
    }
}
