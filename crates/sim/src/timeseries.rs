//! Deterministic sim-time-sampled time series.
//!
//! End-of-run [`crate::metrics`] snapshots say *what* happened; a
//! [`SeriesStore`] says *when*. Any registry counter, gauge, or histogram
//! can be enrolled as a [`Probe`] and swept at a fixed sim-time cadence,
//! and values computed outside a registry (ready-queue lengths, lease
//! counts) are recorded into manual series on the same tick. Sampling is
//! driven entirely by the simulated clock — the tick is an ordinary event
//! on the engine queue — so two same-seed runs produce bit-identical
//! series, byte for byte, through [`crate::json`].
//!
//! Memory is bounded: each series keeps at most `capacity` points in a
//! ring that *decimates on overflow* — when full, every other retained
//! point is dropped and the keep-stride doubles, halving resolution
//! instead of growing memory or silently truncating history. The first
//! recorded point is always retained and the most recent one is always
//! re-attached on read, so a decimated series still spans the full run.
//!
//! # Examples
//!
//! ```
//! use vsim::{Metrics, Probe, SamplingSpec, SeriesStore, SimTime, Subsystem};
//!
//! let mut m = Metrics::new();
//! let depth = m.gauge(Subsystem::Engine, "queue_depth");
//! let mut store = SeriesStore::new(SamplingSpec::default());
//! store.enroll(Subsystem::Engine, "queue_depth", "events", Probe::Gauge(depth));
//! m.set_gauge(depth, 17.0);
//! store.sample(SimTime::from_micros(1_000), &m);
//! assert_eq!(store.report().series[0].points, vec![(1_000, 17.0)]);
//! ```

use crate::json::{Json, ToJson};
use crate::metrics::{CounterId, GaugeId, HistogramId, Metrics};
use crate::time::SimDuration;
use crate::time::SimTime;
use crate::trace::Subsystem;

/// What an enrolled series reads out of a [`Metrics`] registry on each
/// sweep. Handles are registry-local: a store's probes must all come from
/// the registry passed to [`SeriesStore::sample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// A counter's cumulative value.
    Counter(CounterId),
    /// A gauge's last-set value.
    Gauge(GaugeId),
    /// A histogram's cumulative sample count.
    HistogramCount(HistogramId),
}

/// Sampling cadence and per-series retention for a [`SeriesStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingSpec {
    /// Sim-time interval between sweeps (the owner schedules the tick).
    pub every: SimDuration,
    /// Maximum retained points per series before decimation halves the
    /// resolution (values below 2 are treated as 2).
    pub capacity: usize,
}

impl Default for SamplingSpec {
    fn default() -> Self {
        SamplingSpec {
            every: SimDuration::from_millis(1),
            capacity: 1024,
        }
    }
}

/// Handle to an enrolled series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(u32);

#[derive(Debug, Clone)]
struct Series {
    subsystem: Subsystem,
    name: &'static str,
    unit: &'static str,
    probe: Option<Probe>,
    /// Retained `(t_micros, value)` points, oldest first.
    points: Vec<(u64, f64)>,
    /// Keep every `stride`-th offered sample (doubles on decimation).
    stride: u64,
    /// Samples offered since enrollment.
    seen: u64,
    /// Most recent offered sample, retained or not.
    last: Option<(u64, f64)>,
}

impl Series {
    fn offer(&mut self, capacity: usize, at: u64, value: f64) {
        let idx = self.seen;
        self.seen += 1;
        self.last = Some((at, value));
        if !idx.is_multiple_of(self.stride) {
            return;
        }
        if self.points.len() >= capacity {
            // Decimate: drop every other retained point and double the
            // stride. Retained point k sits at offer k·stride, so keeping
            // the even k keeps exactly the offers divisible by the new
            // stride — including offer 0, the series' first point.
            let mut keep = 0;
            self.points.retain(|_| {
                let k = keep;
                keep += 1;
                k % 2 == 0
            });
            self.stride *= 2;
            if !idx.is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push((at, value));
    }

    /// Retained points plus the most recent sample when decimation (or
    /// striding) dropped it — the series always ends at the last sweep.
    fn points_with_endpoint(&self) -> Vec<(u64, f64)> {
        let mut out = self.points.clone();
        if let Some(last) = self.last {
            if out.last() != Some(&last) {
                out.push(last);
            }
        }
        out
    }
}

/// A set of enrolled series sampled on a common sim-time cadence.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    spec: SamplingSpec,
    series: Vec<Series>,
    sweeps: u64,
}

impl SeriesStore {
    /// Creates an empty store with the given cadence and retention.
    pub fn new(spec: SamplingSpec) -> Self {
        SeriesStore {
            spec: SamplingSpec {
                every: spec.every,
                capacity: spec.capacity.max(2),
            },
            series: Vec::new(),
            sweeps: 0,
        }
    }

    /// The store's sampling spec (capacity already clamped to ≥ 2).
    pub fn spec(&self) -> SamplingSpec {
        self.spec
    }

    /// Number of sweeps taken so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Number of enrolled series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Enrolls a registry metric for periodic sampling. Idempotent by
    /// `(subsystem, name)`, like registration in [`Metrics`] itself.
    pub fn enroll(
        &mut self,
        subsystem: Subsystem,
        name: &'static str,
        unit: &'static str,
        probe: Probe,
    ) -> SeriesId {
        self.intern(subsystem, name, unit, Some(probe))
    }

    /// Enrolls a manually recorded series (values pushed by the owner via
    /// [`SeriesStore::record`] instead of read from a registry).
    pub fn manual(
        &mut self,
        subsystem: Subsystem,
        name: &'static str,
        unit: &'static str,
    ) -> SeriesId {
        self.intern(subsystem, name, unit, None)
    }

    fn intern(
        &mut self,
        subsystem: Subsystem,
        name: &'static str,
        unit: &'static str,
        probe: Option<Probe>,
    ) -> SeriesId {
        if let Some(i) = self
            .series
            .iter()
            .position(|s| s.subsystem == subsystem && s.name == name)
        {
            return SeriesId(i as u32);
        }
        self.series.push(Series {
            subsystem,
            name,
            unit,
            probe,
            points: Vec::new(),
            stride: 1,
            seen: 0,
            last: None,
        });
        SeriesId(self.series.len() as u32 - 1)
    }

    /// Records one sample into a series (manual or enrolled) at `at`.
    pub fn record(&mut self, id: SeriesId, at: SimTime, value: f64) {
        let capacity = self.spec.capacity;
        self.series[id.0 as usize].offer(capacity, at.as_micros(), value);
    }

    /// One sweep: reads every probe-enrolled series out of `metrics` at
    /// the instant `at`. Manual series are untouched — the owner records
    /// them on the same tick.
    pub fn sample(&mut self, at: SimTime, metrics: &Metrics) {
        self.sweeps += 1;
        let t = at.as_micros();
        let capacity = self.spec.capacity;
        for s in &mut self.series {
            let Some(probe) = s.probe else { continue };
            let value = match probe {
                Probe::Counter(id) => metrics.counter_value(id) as f64,
                Probe::Gauge(id) => metrics.gauge_value(id),
                Probe::HistogramCount(id) => metrics.histogram_count(id) as f64,
            };
            s.offer(capacity, t, value);
        }
    }

    /// Snapshots every series for artifact emission.
    pub fn report(&self) -> SeriesReport {
        SeriesReport {
            interval_us: self.spec.every.as_micros(),
            capacity: self.spec.capacity,
            sweeps: self.sweeps,
            series: self
                .series
                .iter()
                .map(|s| SeriesSnapshot {
                    subsystem: s.subsystem,
                    name: s.name,
                    unit: s.unit,
                    stride: s.stride,
                    seen: s.seen,
                    points: s.points_with_endpoint(),
                })
                .collect(),
        }
    }
}

/// One frozen series: identity, decimation state, and the retained points.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Series name.
    pub name: &'static str,
    /// Unit label for display (`"events"`, `"programs"`, …).
    pub unit: &'static str,
    /// Final keep-stride (1 = never decimated; doubles per decimation).
    pub stride: u64,
    /// Samples offered over the run (retained ≤ capacity + 1 of these).
    pub seen: u64,
    /// Retained `(t_micros, value)` points, oldest first, ending at the
    /// most recent sample.
    pub points: Vec<(u64, f64)>,
}

/// A frozen [`SeriesStore`]: the `series` section of bench artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// Sampling interval in microseconds of sim time.
    pub interval_us: u64,
    /// Per-series retention limit.
    pub capacity: usize,
    /// Sweeps taken.
    pub sweeps: u64,
    /// One snapshot per enrolled series, in enrollment order.
    pub series: Vec<SeriesSnapshot>,
}

impl SeriesReport {
    /// Finds a series by name (any subsystem).
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }
}

impl ToJson for SeriesSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("subsystem", self.subsystem.to_string().to_json()),
            ("name", self.name.to_json()),
            ("unit", self.unit.to_json()),
            ("stride", self.stride.to_json()),
            ("seen", self.seen.to_json()),
            (
                "points",
                Json::arr(
                    self.points
                        .iter()
                        .map(|(t, v)| Json::arr([t.to_json(), v.to_json()])),
                ),
            ),
        ])
    }
}

impl ToJson for SeriesReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("interval_us", self.interval_us.to_json()),
            ("capacity", self.capacity.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("series", self.series.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize) -> SeriesStore {
        SeriesStore::new(SamplingSpec {
            every: SimDuration::from_millis(1),
            capacity,
        })
    }

    #[test]
    fn enrollment_is_idempotent() {
        let mut st = store(8);
        let mut m = Metrics::new();
        let g = m.gauge(Subsystem::Engine, "queue_depth");
        let a = st.enroll(Subsystem::Engine, "queue_depth", "events", Probe::Gauge(g));
        let b = st.enroll(Subsystem::Engine, "queue_depth", "events", Probe::Gauge(g));
        let c = st.manual(Subsystem::Cluster, "ready", "programs");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn probes_read_counters_gauges_and_histograms() {
        let mut m = Metrics::new();
        let ctr = m.counter(Subsystem::Net, "frames");
        let g = m.gauge(Subsystem::Engine, "depth");
        let h = m.histogram(Subsystem::Migration, "freeze_ms", "ms");
        let mut st = store(8);
        st.enroll(Subsystem::Net, "frames", "frames", Probe::Counter(ctr));
        st.enroll(Subsystem::Engine, "depth", "events", Probe::Gauge(g));
        st.enroll(
            Subsystem::Migration,
            "freezes",
            "samples",
            Probe::HistogramCount(h),
        );
        m.add(ctr, 5);
        m.set_gauge(g, 2.5);
        m.observe(h, 1.0);
        st.sample(SimTime::from_micros(10), &m);
        let r = st.report();
        assert_eq!(r.series("frames").unwrap().points, vec![(10, 5.0)]);
        assert_eq!(r.series("depth").unwrap().points, vec![(10, 2.5)]);
        assert_eq!(r.series("freezes").unwrap().points, vec![(10, 1.0)]);
        assert_eq!(r.sweeps, 1);
    }

    #[test]
    fn decimation_halves_points_and_doubles_stride() {
        let mut st = store(4);
        let id = st.manual(Subsystem::Cluster, "x", "u");
        for i in 0..4u64 {
            st.record(id, SimTime::from_micros(i), i as f64);
        }
        // Full at 4 points, stride 1. The 5th sample decimates to
        // offers {0, 2} then retains offer 4.
        st.record(id, SimTime::from_micros(4), 4.0);
        let snap = st.report();
        let s = snap.series("x").unwrap();
        assert_eq!(s.stride, 2);
        assert_eq!(s.points, vec![(0, 0.0), (2, 2.0), (4, 4.0)]);
    }

    #[test]
    fn memory_stays_bounded_under_long_runs() {
        let mut st = store(16);
        let id = st.manual(Subsystem::Cluster, "x", "u");
        for i in 0..100_000u64 {
            st.record(id, SimTime::from_micros(i), i as f64);
        }
        let s = st.report();
        let s = s.series("x").unwrap();
        assert!(s.points.len() <= 17, "retained {}", s.points.len());
        assert_eq!(s.seen, 100_000);
        assert!(s.stride >= 100_000 / 16);
    }

    #[test]
    fn decimation_preserves_endpoints() {
        // Property (seeded): for arbitrary sample-count and capacity, the
        // reported points always start at the first recorded sample and
        // end at the last one, and time stays strictly increasing.
        let mut rng = crate::DetRng::seed(0x7153);
        for case in 0..200 {
            let capacity = 2 + rng.index(63);
            let n = 1 + rng.index(5_000) as u64;
            let mut st = store(capacity);
            let id = st.manual(Subsystem::Cluster, "p", "u");
            let mut t = 0u64;
            let mut first = None;
            let mut last = None;
            for i in 0..n {
                t += 1 + rng.range_u64(0, 1_000);
                let v = rng.range_f64(-1e6, 1e6);
                st.record(id, SimTime::from_micros(t), v);
                if i == 0 {
                    first = Some((t, v));
                }
                last = Some((t, v));
            }
            let snap = st.report();
            let s = snap.series("p").unwrap();
            assert_eq!(s.points.first().copied(), first, "case {case}: lost head");
            assert_eq!(s.points.last().copied(), last, "case {case}: lost tail");
            assert!(s.points.len() <= capacity + 1, "case {case}: unbounded");
            assert!(
                s.points.windows(2).all(|w| w[0].0 < w[1].0),
                "case {case}: time not increasing"
            );
        }
    }

    #[test]
    fn same_samples_produce_identical_json() {
        let run = || {
            let mut st = store(8);
            let id = st.manual(Subsystem::Cluster, "x", "u");
            for i in 0..50u64 {
                st.record(id, SimTime::from_micros(i * 7), (i * 3) as f64 * 0.5);
            }
            st.report().to_json().pretty()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_below_two_is_clamped() {
        let st = store(0);
        assert_eq!(st.spec().capacity, 2);
    }
}
