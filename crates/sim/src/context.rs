//! The simulation context: one narrow handle over clock, queue, and trace.
//!
//! In the dslab shape, components don't thread `&mut Engine` plus a
//! separate `&mut Trace` (plus a copy of `now`) through every call — they
//! hold one cheap context that answers `now()`, schedules, cancels, and
//! emits trace records stamped with the current instant. [`SimContext`]
//! is that handle for this codebase: the cluster runtime owns one and
//! drives the whole simulation through it, and the trace helpers
//! ([`SimContext::info`] etc.) stamp `now` themselves so dispatch code
//! can't emit a record at the wrong time.

use crate::engine::{Engine, EventId};
use crate::metrics::Metrics;
use crate::profile::{HostClock, Profiler};
use crate::queue::{DynQueue, EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Subsystem, Trace, TraceEvent, TraceLevel, TraceSinkSpec};

/// An [`Engine`] and its [`Trace`] behind one surface.
///
/// # Examples
///
/// ```
/// use vsim::{QueueBackend, SimContext, SimDuration, Subsystem, Trace, TraceEvent, TraceLevel};
///
/// let mut ctx: SimContext<&str> =
///     SimContext::new(QueueBackend::TimingWheel, Trace::new(TraceLevel::Info));
/// ctx.schedule_after(SimDuration::from_millis(1), "tick");
/// while let Some((_, ev)) = ctx.step() {
///     assert_eq!(ev, "tick");
///     ctx.info(Subsystem::Cluster, TraceEvent::Note { text: "handled" });
/// }
/// assert_eq!(ctx.trace().records().len(), 1);
/// assert_eq!(ctx.trace().records()[0].at, ctx.now());
/// ```
pub struct SimContext<E, Q: EventQueue<E> = DynQueue<E>> {
    engine: Engine<E, Q>,
    trace: Trace,
    profiler: Profiler,
}

impl<E> SimContext<E> {
    /// A context on the given queue backend with the given trace.
    pub fn new(backend: QueueBackend, trace: Trace) -> Self {
        SimContext {
            engine: Engine::with_backend(backend),
            trace,
            profiler: Profiler::null(),
        }
    }

    /// A context with a level-filtered unbounded trace on the default
    /// backend.
    pub fn with_trace_level(level: TraceLevel) -> Self {
        Self::new(QueueBackend::default(), Trace::new(level))
    }

    /// A context with an explicit trace sink (ring, unbounded, or off).
    pub fn with_sink(backend: QueueBackend, level: TraceLevel, sink: TraceSinkSpec) -> Self {
        Self::new(backend, Trace::with_sink(level, sink))
    }
}

impl<E> Default for SimContext<E> {
    fn default() -> Self {
        Self::new(QueueBackend::default(), Trace::default())
    }
}

impl<E, Q: EventQueue<E>> SimContext<E, Q> {
    /// Wraps an existing engine and trace.
    pub fn from_parts(engine: Engine<E, Q>, trace: Trace) -> Self {
        SimContext {
            engine,
            trace,
            profiler: Profiler::null(),
        }
    }

    // --- Clock and queue (forwarded to the engine). ---

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (see [`Engine::schedule_at`]).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.engine.schedule_at(at, event)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.engine.schedule_after(delay, event)
    }

    /// Schedules `event` at the current instant, after its peers.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.engine.schedule_now(event)
    }

    /// Cancels a scheduled event (lazy; see [`Engine::cancel`]).
    pub fn cancel(&mut self, id: EventId) {
        self.engine.cancel(id);
    }

    /// Events still pending on the queue.
    pub fn pending(&self) -> usize {
        self.engine.pending()
    }

    /// Events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.engine.events_delivered()
    }

    /// Delivers the next event, advancing the clock.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        self.engine.step()
    }

    /// Delivers the next event at or before `limit`.
    pub fn step_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        self.engine.step_due(limit)
    }

    /// Moves the idle clock forward (see [`Engine::advance_to`]).
    ///
    /// # Panics
    ///
    /// Panics if an undelivered event is pending before `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        self.engine.advance_to(t);
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine<E, Q> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<E, Q> {
        &mut self.engine
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// Mutable access to the engine's metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        self.engine.metrics_mut()
    }

    // --- Tracing, stamped with the current instant. ---

    /// True when records at `level` would be retained.
    #[inline]
    pub fn trace_enabled(&self, level: TraceLevel) -> bool {
        self.trace.enabled(level)
    }

    /// Emits a [`TraceLevel::Detail`] record at the current instant.
    pub fn detail(&mut self, subsystem: Subsystem, event: TraceEvent) {
        let now = self.engine.now();
        self.trace.detail(now, subsystem, event);
    }

    /// Emits a [`TraceLevel::Info`] record at the current instant.
    pub fn info(&mut self, subsystem: Subsystem, event: TraceEvent) {
        let now = self.engine.now();
        self.trace.info(now, subsystem, event);
    }

    /// Emits a [`TraceLevel::Warn`] record at the current instant.
    pub fn warn(&mut self, subsystem: Subsystem, event: TraceEvent) {
        let now = self.engine.now();
        self.trace.warn(now, subsystem, event);
    }

    /// The context's trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (merging component traces, clearing).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    // --- Self-profiling (see [`crate::profile`]). ---

    /// The dispatch profiler (null-clocked by default, so deterministic).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Mutable profiler access: interning slots, charging dispatches.
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    /// Injects a real host clock for wall-clock attribution. Only bench
    /// binaries should call this; library code stays on the null clock so
    /// simulation results never depend on host time.
    pub fn set_host_clock(&mut self, clock: Box<dyn HostClock>) {
        self.profiler.set_clock(clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_helpers_stamp_the_clock() {
        let mut ctx: SimContext<u32> =
            SimContext::new(QueueBackend::Heap, Trace::new(TraceLevel::Detail));
        ctx.schedule_after(SimDuration::from_micros(7), 1);
        while ctx.step().is_some() {
            ctx.info(Subsystem::Cluster, TraceEvent::Note { text: "fired" });
        }
        let recs = ctx.trace().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].at, SimTime::from_micros(7));
    }

    #[test]
    fn forwards_queue_operations() {
        let mut ctx: SimContext<u32> = SimContext::default();
        let id = ctx.schedule_after(SimDuration::from_micros(5), 9);
        assert_eq!(ctx.pending(), 1);
        ctx.cancel(id);
        assert_eq!(ctx.pending(), 0);
        assert_eq!(ctx.step(), None);
        ctx.advance_to(SimTime::from_micros(50));
        assert_eq!(ctx.now(), SimTime::from_micros(50));
        assert_eq!(ctx.events_delivered(), 0);
    }
}
