//! Simulation tracing.
//!
//! A cheap, always-deterministic event log. Scenarios and tests use it to
//! assert *how* a result was reached (e.g. "the logical host was frozen
//! exactly once", "no packet was sent to the old host after rebinding"),
//! and the examples print it to narrate runs.
//!
//! Records are **typed**: every entry is a [`TraceEvent`] variant tagged
//! with a [`Subsystem`], not a formatted string. Formatting happens lazily
//! on [`Display`](fmt::Display); tests match structurally with
//! [`Trace::count_matching`] instead of grepping message text, and emitting
//! a filtered-out record allocates nothing.
//!
//! `vsim` sits below the kernel and network crates, so event fields carry
//! raw identifiers: `lh` is the numeric logical-host id, `host` values are
//! numeric physical-host addresses, `ws` is a station index.

use std::fmt;

use crate::time::SimTime;

/// Severity/importance of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume detail (every packet).
    Detail,
    /// Normal protocol milestones (program started, copy round finished).
    Info,
    /// Abnormal events (packet dropped, retransmission, migration abort).
    Warn,
}

/// The layer a trace record or metric originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The discrete-event engine itself.
    Engine,
    /// The Ethernet model.
    Net,
    /// The distributed kernel (IPC, bindings, freezing).
    Kernel,
    /// Address spaces and dirty-page tracking.
    Memory,
    /// Servers outside the kernel (program manager, file server, display).
    Services,
    /// Synthetic program/user workload models.
    Workload,
    /// Remote-execution machinery (`@ machine`, `@ *`).
    Exec,
    /// Migration engine (pre-copy rounds, freeze, install).
    Migration,
    /// The whole-cluster runtime.
    Cluster,
}

impl Subsystem {
    /// Stable lower-case label used in reports and display output.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Engine => "engine",
            Subsystem::Net => "net",
            Subsystem::Kernel => "kernel",
            Subsystem::Memory => "memory",
            Subsystem::Services => "services",
            Subsystem::Workload => "workload",
            Subsystem::Exec => "exec",
            Subsystem::Migration => "migration",
            Subsystem::Cluster => "cluster",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured trace event.
///
/// Hot-path variants (frames, retransmissions, deferrals) are `Copy`-cheap
/// with no owned data; milestone variants carry the program image name for
/// narration.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A remote/local execution finished setting up (or failed).
    ExecDone {
        /// Program image name.
        image: String,
        /// Chosen physical host address, if any.
        host: Option<u16>,
        /// Whether setup succeeded.
        success: bool,
        /// Host-selection phase, µs.
        selection_us: u64,
        /// Environment-creation + image-load phase, µs.
        creation_us: u64,
    },
    /// A program's root process started running.
    ProgramStarted {
        /// Program image name.
        image: String,
        /// Numeric logical-host id.
        lh: u32,
    },
    /// A migrated logical host was adopted by its new workstation.
    Adopted {
        /// Numeric logical-host id.
        lh: u32,
    },
    /// A logical host moved between physical hosts (eviction/rebind).
    Rebind {
        /// Numeric logical-host id.
        lh: u32,
        /// Old physical-host address.
        from: u16,
        /// New physical-host address.
        to: u16,
    },
    /// A migration completed (successfully or not).
    MigrationDone {
        /// Program image name.
        image: String,
        /// Numeric logical-host id.
        lh: u32,
        /// Whether the program runs on the new host.
        success: bool,
        /// Number of unfrozen pre-copy rounds.
        iterations: u32,
        /// Bytes copied while frozen, in KB.
        residual_kb: u64,
        /// Wall time frozen, µs.
        freeze_us: u64,
    },
    /// A logical host was frozen (§3.1: queue, don't process).
    Freeze {
        /// Numeric logical-host id.
        lh: u32,
    },
    /// A logical host was unfrozen.
    Unfreeze {
        /// Numeric logical-host id.
        lh: u32,
    },
    /// One unfrozen pre-copy round finished.
    PrecopyRound {
        /// Numeric logical-host id.
        lh: u32,
        /// Round number, starting at 1.
        round: u32,
        /// Dirty bytes copied this round, in KB.
        dirty_kb: u64,
    },
    /// The frozen residual copy finished.
    ResidualCopy {
        /// Numeric logical-host id.
        lh: u32,
        /// Residual bytes copied, in KB.
        kb: u64,
    },
    /// The wire dropped a frame (loss model or receiver down).
    FrameDropped {
        /// Sender physical-host address.
        from: u16,
        /// Receiver physical-host address.
        to: u16,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// An IPC send was retransmitted.
    Retransmit {
        /// Numeric logical-host id of the destination (the sender's own
        /// for group sends, which have no single destination host).
        lh: u32,
        /// Retry count so far.
        tries: u32,
    },
    /// A request was deferred with reply-pending (frozen or busy host).
    ReplyDeferred {
        /// Numeric logical-host id of the receiver.
        lh: u32,
    },
    /// A delivered request had no process to route to.
    Unroutable {
        /// Numeric logical-host id of the addressee.
        lh: u32,
        /// Local process index of the addressee.
        index: u32,
    },
    /// A started program image had no queued behaviour to attach.
    BehaviorMissing {
        /// Program image name.
        image: String,
    },
    /// A delivered frame failed its checksum and was discarded.
    CorruptFrame {
        /// Sender physical-host address.
        from: u16,
        /// Receiver physical-host address.
        to: u16,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A scripted fault fired.
    FaultInjected {
        /// Static fault-kind label (see `FaultKind::label`).
        kind: &'static str,
    },
    /// The hard retransmission cap expired a reply-pending transaction.
    OrphanedTransaction {
        /// Numeric logical-host id of the destination.
        lh: u32,
        /// Retransmissions attempted before giving up.
        tries: u32,
    },
    /// The cluster auditor found an invariant violation.
    AuditViolation {
        /// Static violation-kind label.
        kind: &'static str,
        /// Numeric logical-host id involved (0 when not applicable).
        lh: u32,
    },
    /// A migration retried host selection after its target failed.
    MigrationRetry {
        /// Numeric logical-host id being migrated.
        lh: u32,
        /// Selection attempt number (2 = first retry).
        attempt: u32,
    },
    /// A lease ran out past its grace window: the remote holder lost
    /// contact with the origin (`party` "target") or the origin lost the
    /// holder's heartbeats (`party` "origin").
    LeaseExpired {
        /// Numeric logical-host id of the leased program.
        lh: u32,
        /// Which side detected the silence ("target" or "origin").
        party: &'static str,
    },
    /// A remote program manager exterminated an orphaned program whose
    /// origin revoked (or stopped renewing) its lease.
    OrphanExterminated {
        /// Numeric logical-host id of the destroyed program.
        lh: u32,
    },
    /// An origin's liveness probe found its leased program alive on a
    /// (possibly different) host and rebound the lease instead of
    /// re-executing.
    LeaseRebound {
        /// Numeric logical-host id of the leased program.
        lh: u32,
        /// Physical-host address now holding the program.
        to: u16,
    },
    /// The origin re-executed a program whose remote host went silent and
    /// whose liveness probe went unanswered.
    ReExecuted {
        /// Numeric logical-host id of the lost program.
        lh: u32,
        /// Program image name being executed again.
        image: String,
    },
    /// A registered fault point was crossed while a matching
    /// `AtFaultPoint` trigger was armed; the paired fault fires next.
    FaultPointHit {
        /// Static protocol-step label.
        step: &'static str,
        /// Static party label ("source"/"target"/"origin").
        party: &'static str,
    },
    /// Renewed contact with a peer resolved previously orphaned
    /// transactions (the host came back).
    OrphansResolved {
        /// Numeric logical-host id of the peer.
        lh: u32,
        /// How many orphaned transactions were resolved.
        count: u64,
    },
    /// A causal span opened (see [`crate::span`]).
    SpanOpen {
        /// Raw span id (non-zero; see [`crate::SpanId`]).
        id: u64,
        /// Raw parent span id (0 = root).
        parent: u64,
        /// Static span name ("migration", "ipc", "quantum", ...).
        name: &'static str,
        /// Physical-host address of the opening component.
        host: u16,
    },
    /// A causal span closed.
    SpanClose {
        /// Raw span id.
        id: u64,
    },
    /// Free-form milestone; the static text keeps emission allocation-free.
    Note {
        /// What happened.
        text: &'static str,
    },
}

/// The span-structural view of a trace event (see
/// [`TraceEvent::as_span`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// A causal span opened.
    Open {
        /// Raw span id (non-zero).
        id: u64,
        /// Raw parent span id (0 = root).
        parent: u64,
        /// Static span name.
        name: &'static str,
        /// Physical-host address of the opening component.
        host: u16,
    },
    /// A causal span closed.
    Close {
        /// Raw span id.
        id: u64,
    },
}

impl TraceEvent {
    /// The span structure carried by this event, if any.
    ///
    /// Deliberately exhaustive — no wildcard arm — so adding a
    /// `TraceEvent` variant forces an explicit decision about whether it
    /// participates in causal spans. `SpanTree::build` consumes this
    /// instead of matching the enum with a catch-all.
    pub fn as_span(&self) -> Option<SpanEvent> {
        match self {
            TraceEvent::SpanOpen {
                id,
                parent,
                name,
                host,
            } => Some(SpanEvent::Open {
                id: *id,
                parent: *parent,
                name,
                host: *host,
            }),
            TraceEvent::SpanClose { id } => Some(SpanEvent::Close { id: *id }),
            TraceEvent::ExecDone { .. }
            | TraceEvent::ProgramStarted { .. }
            | TraceEvent::Adopted { .. }
            | TraceEvent::Rebind { .. }
            | TraceEvent::MigrationDone { .. }
            | TraceEvent::Freeze { .. }
            | TraceEvent::Unfreeze { .. }
            | TraceEvent::PrecopyRound { .. }
            | TraceEvent::ResidualCopy { .. }
            | TraceEvent::FrameDropped { .. }
            | TraceEvent::Retransmit { .. }
            | TraceEvent::ReplyDeferred { .. }
            | TraceEvent::Unroutable { .. }
            | TraceEvent::BehaviorMissing { .. }
            | TraceEvent::CorruptFrame { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::OrphanedTransaction { .. }
            | TraceEvent::AuditViolation { .. }
            | TraceEvent::MigrationRetry { .. }
            | TraceEvent::LeaseExpired { .. }
            | TraceEvent::OrphanExterminated { .. }
            | TraceEvent::LeaseRebound { .. }
            | TraceEvent::ReExecuted { .. }
            | TraceEvent::FaultPointHit { .. }
            | TraceEvent::OrphansResolved { .. }
            | TraceEvent::Note { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
                TraceEvent::ExecDone {
                    image,
                    host,
                    success,
                    selection_us,
                    creation_us,
                } => {
                    let outcome = if *success { "ok" } else { "FAILED" };
                    match host {
                        Some(h) => write!(
                            f,
                            "{image} @ host{h}: {outcome} (select {selection_us}us, create {creation_us}us)"
                        ),
                        None => write!(
                            f,
                            "{image}: {outcome} (select {selection_us}us, create {creation_us}us)"
                        ),
                    }
                }
                TraceEvent::ProgramStarted { image, lh } => {
                    write!(f, "program {image} started on lh{lh}")
                }
                TraceEvent::Adopted { lh } => write!(f, "adopted migrated lh{lh}"),
                TraceEvent::Rebind { lh, from, to } => {
                    write!(f, "lh{lh} moved host{from} -> host{to}")
                }
                TraceEvent::MigrationDone {
                    image,
                    lh,
                    success,
                    iterations,
                    residual_kb,
                    freeze_us,
                } => write!(
                    f,
                    "{image} (lh{lh}) {}: {iterations} iters, residual {residual_kb} KB, frozen {freeze_us}us",
                    if *success { "done" } else { "FAILED" }
                ),
                TraceEvent::Freeze { lh } => write!(f, "freeze lh{lh}"),
                TraceEvent::Unfreeze { lh } => write!(f, "unfreeze lh{lh}"),
                TraceEvent::PrecopyRound { lh, round, dirty_kb } => {
                    write!(f, "lh{lh} pre-copy round {round}: {dirty_kb} KB dirty")
                }
                TraceEvent::ResidualCopy { lh, kb } => {
                    write!(f, "lh{lh} residual copy: {kb} KB while frozen")
                }
                TraceEvent::FrameDropped { from, to, bytes } => {
                    write!(f, "dropped {bytes}B frame host{from} -> host{to}")
                }
                TraceEvent::Retransmit { lh, tries } => {
                    write!(f, "retransmit to lh{lh} (try {tries})")
                }
                TraceEvent::ReplyDeferred { lh } => {
                    write!(f, "reply-pending deferral for lh{lh}")
                }
                TraceEvent::Unroutable { lh, index } => {
                    write!(f, "unroutable request for lh{lh}.{index}")
                }
                TraceEvent::BehaviorMissing { image } => {
                    write!(f, "no pending behaviour for image {image}")
                }
                TraceEvent::CorruptFrame { from, to, bytes } => {
                    write!(f, "corrupt {bytes}B frame host{from} -> host{to} discarded")
                }
                TraceEvent::FaultInjected { kind } => write!(f, "fault injected: {kind}"),
                TraceEvent::OrphanedTransaction { lh, tries } => {
                    write!(f, "orphaned transaction to lh{lh} after {tries} tries")
                }
                TraceEvent::AuditViolation { kind, lh } => {
                    write!(f, "AUDIT VIOLATION {kind} (lh{lh})")
                }
                TraceEvent::MigrationRetry { lh, attempt } => {
                    write!(f, "lh{lh} migration retry, attempt {attempt}")
                }
                TraceEvent::LeaseExpired { lh, party } => {
                    write!(f, "lease for lh{lh} expired past grace ({party} side)")
                }
                TraceEvent::OrphanExterminated { lh } => {
                    write!(f, "orphan lh{lh} exterminated")
                }
                TraceEvent::LeaseRebound { lh, to } => {
                    write!(f, "lease for lh{lh} rebound to host{to}")
                }
                TraceEvent::ReExecuted { lh, image } => {
                    write!(f, "re-exec {image} (lost lh{lh})")
                }
                TraceEvent::FaultPointHit { step, party } => {
                    write!(f, "fault point {step}/{party} hit")
                }
                TraceEvent::OrphansResolved { lh, count } => {
                    write!(f, "{count} orphaned transactions to lh{lh} resolved")
                }
                TraceEvent::SpanOpen {
                    id,
                    parent,
                    name,
                    host,
                } => {
                    if *parent == 0 {
                        write!(f, "span open {name} #{id:x} @ host{host}")
                    } else {
                        write!(f, "span open {name} #{id:x} (in #{parent:x}) @ host{host}")
                    }
                }
                TraceEvent::SpanClose { id } => write!(f, "span close #{id:x}"),
                TraceEvent::Note { text } => f.write_str(text),
            }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// Monotonic per-trace sequence number: the tie-break that keeps
    /// same-instant records in a deterministic order across
    /// [`Trace::sort_by_time`] (re-assigned when traces are folded with
    /// [`Trace::drain_from`]).
    pub seq: u64,
    /// Severity.
    pub level: TraceLevel,
    /// Originating layer.
    pub subsystem: Subsystem,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<10} {}",
            self.at.to_string(),
            self.subsystem,
            self.event
        )
    }
}

/// Where retained records go: the storage side of a [`Trace`], split out
/// so the hot emit path can be swapped between an unbounded buffer, a
/// fixed ring, and nothing at all.
pub trait TraceSink {
    /// Stores one record (the level filter has already passed).
    fn record(&mut self, rec: TraceRecord);
    /// Number of retained records.
    fn len(&self) -> usize;
    /// True when nothing is retained.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drops all retained records.
    fn clear(&mut self);
    /// Removes and returns every retained record in emission order.
    fn drain_ordered(&mut self) -> Vec<TraceRecord>;
    /// The retained records in *storage* order — emission order for
    /// unbounded sinks; for a wrapped ring the oldest retained record is
    /// not necessarily first (records carry `seq`, so callers that need
    /// order sort or use [`TraceSink::drain_ordered`]).
    fn as_slice(&self) -> &[TraceRecord];
}

/// Unbounded sink: keeps everything, in emission order.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }
    fn len(&self) -> usize {
        self.records.len()
    }
    fn clear(&mut self) {
        self.records.clear();
    }
    fn drain_ordered(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }
    fn as_slice(&self) -> &[TraceRecord] {
        &self.records
    }
}

/// Fixed-capacity ring sink: keeps the most recent `cap` records,
/// overwriting the oldest. Emission stays allocation-free once the ring
/// has filled — the flight-recorder mode for long high-rate runs where
/// only the recent past matters.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next write position; when `buf` is full this is also the index of
    /// the oldest retained record.
    next: usize,
    dropped: u64,
}

impl RingSink {
    /// An empty ring retaining at most `cap` records (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingSink {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }
    }

    /// Records overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }
    fn len(&self) -> usize {
        self.buf.len()
    }
    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
    fn drain_ordered(&mut self) -> Vec<TraceRecord> {
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(self.next);
        self.next = 0;
        out
    }
    fn as_slice(&self) -> &[TraceRecord] {
        &self.buf
    }
}

/// Discards everything. A null-sink trace reports `enabled() == false`
/// for every level, so emit sites skip even building the event.
#[derive(Debug, Clone, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
    fn len(&self) -> usize {
        0
    }
    fn clear(&mut self) {}
    fn drain_ordered(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
    fn as_slice(&self) -> &[TraceRecord] {
        &[]
    }
}

/// Sink configuration, for carrying the choice through config structs
/// (e.g. `ClusterConfig`) without building the sink eagerly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceSinkSpec {
    /// Keep every record ([`VecSink`]) — the default, and what the replay
    /// and chaos suites compare.
    #[default]
    Unbounded,
    /// Keep the most recent N records ([`RingSink`]).
    Ring(usize),
    /// Keep nothing and disable emission entirely ([`NullSink`]).
    Off,
}

/// The concrete sink inside a [`Trace`]. An enum rather than a boxed
/// trait object so traces stay `Clone` and emission stays a static call.
#[derive(Debug, Clone)]
enum Store {
    Vec(VecSink),
    Ring(RingSink),
    Null(NullSink),
}

impl Store {
    fn sink(&self) -> &dyn TraceSink {
        match self {
            Store::Vec(s) => s,
            Store::Ring(s) => s,
            Store::Null(s) => s,
        }
    }
    fn sink_mut(&mut self) -> &mut dyn TraceSink {
        match self {
            Store::Vec(s) => s,
            Store::Ring(s) => s,
            Store::Null(s) => s,
        }
    }
}

/// An in-memory trace buffer with a level filter.
///
/// # Examples
///
/// ```
/// use vsim::{SimTime, Subsystem, Trace, TraceEvent, TraceLevel};
///
/// let mut trace = Trace::new(TraceLevel::Info);
/// trace.info(SimTime::ZERO, Subsystem::Kernel, TraceEvent::Freeze { lh: 3 });
/// trace.detail(SimTime::ZERO, Subsystem::Net, TraceEvent::Note { text: "filtered" });
/// assert_eq!(trace.records().len(), 1);
/// assert_eq!(trace.count_matching(|e| matches!(e, TraceEvent::Freeze { lh: 3 })), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    min_level: TraceLevel,
    store: Store,
    next_seq: u64,
}

impl Trace {
    /// Creates a trace that keeps records at `min_level` and above, in an
    /// unbounded buffer.
    pub fn new(min_level: TraceLevel) -> Self {
        Trace::with_sink(min_level, TraceSinkSpec::Unbounded)
    }

    /// Creates a trace with an explicit sink choice.
    pub fn with_sink(min_level: TraceLevel, spec: TraceSinkSpec) -> Self {
        let store = match spec {
            TraceSinkSpec::Unbounded => Store::Vec(VecSink::default()),
            TraceSinkSpec::Ring(cap) => Store::Ring(RingSink::new(cap)),
            TraceSinkSpec::Off => Store::Null(NullSink),
        };
        Trace {
            min_level,
            store,
            next_seq: 0,
        }
    }

    /// A trace that keeps the most recent `cap` records at `min_level`
    /// and above.
    pub fn ring(min_level: TraceLevel, cap: usize) -> Self {
        Trace::with_sink(min_level, TraceSinkSpec::Ring(cap))
    }

    /// A trace that retains nothing and reports every level disabled —
    /// the near-free choice for throughput runs.
    pub fn off() -> Self {
        Trace::with_sink(TraceLevel::Warn, TraceSinkSpec::Off)
    }

    /// A trace that discards everything below [`TraceLevel::Warn`].
    pub fn quiet() -> Self {
        Trace::new(TraceLevel::Warn)
    }

    /// True when records at `level` would be retained; callers building
    /// events with owned data (image names) should check this first so
    /// filtered-out records stay allocation-free.
    #[inline]
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level && !matches!(self.store, Store::Null(_))
    }

    /// Appends a record if it passes the level filter.
    #[inline]
    pub fn emit(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        subsystem: Subsystem,
        event: TraceEvent,
    ) {
        if self.enabled(level) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.store.sink_mut().record(TraceRecord {
                at,
                seq,
                level,
                subsystem,
                event,
            });
        }
    }

    /// Records at [`TraceLevel::Detail`].
    pub fn detail(&mut self, at: SimTime, subsystem: Subsystem, event: TraceEvent) {
        self.emit(TraceLevel::Detail, at, subsystem, event);
    }

    /// Records at [`TraceLevel::Info`].
    pub fn info(&mut self, at: SimTime, subsystem: Subsystem, event: TraceEvent) {
        self.emit(TraceLevel::Info, at, subsystem, event);
    }

    /// Records at [`TraceLevel::Warn`].
    pub fn warn(&mut self, at: SimTime, subsystem: Subsystem, event: TraceEvent) {
        self.emit(TraceLevel::Warn, at, subsystem, event);
    }

    /// All retained records. In emission order for the default unbounded
    /// sink; a wrapped ring yields storage order (see
    /// [`TraceSink::as_slice`] — sort by `(at, seq)` or call
    /// [`Trace::sort_by_time`] first when order matters).
    pub fn records(&self) -> &[TraceRecord] {
        self.store.sink().as_slice()
    }

    /// Records overwritten by a ring sink so far (0 for other sinks).
    pub fn records_dropped(&self) -> u64 {
        match &self.store {
            Store::Ring(r) => r.dropped(),
            _ => 0,
        }
    }

    /// Iterates the retained events.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.records().iter().map(|r| &r.event)
    }

    /// Records from `subsystem`.
    pub fn for_subsystem(&self, subsystem: Subsystem) -> impl Iterator<Item = &TraceRecord> {
        self.records()
            .iter()
            .filter(move |r| r.subsystem == subsystem)
    }

    /// Count of retained events matching `pred` — the structured
    /// replacement for grepping formatted messages.
    pub fn count_matching(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.records().iter().filter(|r| pred(&r.event)).count()
    }

    /// Moves all records out of `other` into this trace (used by the
    /// cluster runtime to fold per-component traces into one timeline).
    ///
    /// Incoming records are re-stamped with fresh sequence numbers from
    /// this trace's counter (preserving their relative order), so a fixed
    /// fold order yields one deterministic tie-break sequence.
    pub fn drain_from(&mut self, other: &mut Trace) {
        for mut r in other.store.sink_mut().drain_ordered() {
            r.seq = self.next_seq;
            self.next_seq += 1;
            self.store.sink_mut().record(r);
        }
    }

    /// Sorts records by time, tie-breaking on the monotonic sequence
    /// number so same-instant records land in a deterministic order. Call
    /// after folding several traces together.
    pub fn sort_by_time(&mut self) {
        match &mut self.store {
            Store::Vec(s) => s.records.sort_by_key(|r| (r.at, r.seq)),
            Store::Ring(s) => {
                // Make storage order = emission order, then sort in place.
                let n = s.next;
                s.buf.rotate_left(n);
                s.next = 0;
                s.buf.sort_by_key(|r| (r.at, r.seq));
            }
            Store::Null(_) => {}
        }
    }

    /// Drops all retained records.
    pub fn clear(&mut self) {
        self.store.sink_mut().clear();
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(TraceLevel::Info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter_applies() {
        let mut t = Trace::new(TraceLevel::Info);
        t.detail(
            SimTime::ZERO,
            Subsystem::Net,
            TraceEvent::Note { text: "dropped" },
        );
        t.info(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Freeze { lh: 1 },
        );
        t.warn(
            SimTime::ZERO,
            Subsystem::Net,
            TraceEvent::FrameDropped {
                from: 0,
                to: 1,
                bytes: 64,
            },
        );
        assert_eq!(t.records().len(), 2);
        assert!(!t.enabled(TraceLevel::Detail));
        assert!(t.enabled(TraceLevel::Warn));
    }

    #[test]
    fn quiet_keeps_only_warnings() {
        let mut t = Trace::quiet();
        t.info(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Freeze { lh: 1 },
        );
        t.warn(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Retransmit { lh: 1, tries: 2 },
        );
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].level, TraceLevel::Warn);
    }

    #[test]
    fn structured_queries() {
        let mut t = Trace::new(TraceLevel::Detail);
        t.info(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Freeze { lh: 3 },
        );
        t.info(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Unfreeze { lh: 3 },
        );
        t.detail(
            SimTime::ZERO,
            Subsystem::Net,
            TraceEvent::FrameDropped {
                from: 0,
                to: 2,
                bytes: 1024,
            },
        );
        assert_eq!(t.for_subsystem(Subsystem::Kernel).count(), 2);
        assert_eq!(
            t.count_matching(|e| matches!(
                e,
                TraceEvent::Freeze { .. } | TraceEvent::Unfreeze { .. }
            )),
            2
        );
        assert_eq!(
            t.count_matching(|e| matches!(e, TraceEvent::FrameDropped { to: 2, .. })),
            1
        );
    }

    #[test]
    fn display_is_readable_and_lazy() {
        let mut t = Trace::default();
        t.info(
            SimTime::from_micros(23_000),
            Subsystem::Migration,
            TraceEvent::PrecopyRound {
                lh: 4,
                round: 2,
                dirty_kb: 36,
            },
        );
        let line = t.records()[0].to_string();
        assert!(line.contains("23.000ms"), "{line}");
        assert!(line.contains("migration"), "{line}");
        assert!(line.contains("round 2"), "{line}");
    }

    #[test]
    fn merge_and_sort_interleaves_timelines() {
        let mut a = Trace::default();
        let mut b = Trace::default();
        a.info(
            SimTime::from_micros(10),
            Subsystem::Kernel,
            TraceEvent::Freeze { lh: 1 },
        );
        b.info(
            SimTime::from_micros(5),
            Subsystem::Migration,
            TraceEvent::Unfreeze { lh: 1 },
        );
        a.drain_from(&mut b);
        a.sort_by_time();
        assert!(b.records().is_empty());
        assert_eq!(a.records()[0].at, SimTime::from_micros(5));
        assert_eq!(a.records()[1].at, SimTime::from_micros(10));
    }

    #[test]
    fn sort_tie_breaks_on_sequence_number() {
        // Two traces full of same-instant records: after folding in a
        // fixed order, sorting must be a deterministic total order that
        // preserves each source's emission order.
        let mut merged = Trace::default();
        let mut a = Trace::default();
        let mut b = Trace::default();
        let t = SimTime::from_micros(42);
        for lh in 0..3 {
            a.info(t, Subsystem::Kernel, TraceEvent::Freeze { lh });
            b.info(t, Subsystem::Migration, TraceEvent::Unfreeze { lh });
        }
        merged.drain_from(&mut a);
        merged.drain_from(&mut b);
        merged.sort_by_time();
        let seqs: Vec<u64> = merged.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        // Kernel records (drained first) keep their order and precede the
        // migration records even though every timestamp is equal.
        assert!(matches!(
            merged.records()[0].event,
            TraceEvent::Freeze { lh: 0 }
        ));
        assert!(matches!(
            merged.records()[2].event,
            TraceEvent::Freeze { lh: 2 }
        ));
        assert!(matches!(
            merged.records()[3].event,
            TraceEvent::Unfreeze { lh: 0 }
        ));
    }

    #[test]
    fn ring_sink_keeps_most_recent_records() {
        let mut t = Trace::ring(TraceLevel::Detail, 4);
        for lh in 0..10 {
            t.info(
                SimTime::from_micros(lh as u64),
                Subsystem::Kernel,
                TraceEvent::Freeze { lh },
            );
        }
        assert_eq!(t.records().len(), 4);
        assert_eq!(t.records_dropped(), 6);
        // Ordered view holds exactly the last four emissions.
        t.sort_by_time();
        let lhs: Vec<u32> = t
            .events()
            .map(|e| match e {
                TraceEvent::Freeze { lh } => *lh,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lhs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_drains_in_emission_order() {
        let mut src = Trace::ring(TraceLevel::Detail, 3);
        for lh in 0..5 {
            src.info(
                SimTime::from_micros(lh as u64),
                Subsystem::Kernel,
                TraceEvent::Freeze { lh },
            );
        }
        let mut dst = Trace::default();
        dst.drain_from(&mut src);
        assert!(src.records().is_empty());
        let lhs: Vec<u32> = dst
            .events()
            .map(|e| match e {
                TraceEvent::Freeze { lh } => *lh,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lhs, vec![2, 3, 4]);
    }

    #[test]
    fn off_trace_disables_every_level() {
        let mut t = Trace::off();
        assert!(!t.enabled(TraceLevel::Warn));
        t.warn(
            SimTime::ZERO,
            Subsystem::Kernel,
            TraceEvent::Freeze { lh: 1 },
        );
        assert!(t.records().is_empty());
    }

    #[test]
    fn clear_empties_buffer() {
        let mut t = Trace::default();
        t.info(
            SimTime::ZERO,
            Subsystem::Cluster,
            TraceEvent::Note { text: "y" },
        );
        t.clear();
        assert!(t.records().is_empty());
    }
}
