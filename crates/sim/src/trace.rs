//! Simulation tracing.
//!
//! A cheap, always-deterministic event log. Scenarios and tests use it to
//! assert *how* a result was reached (e.g. "the logical host was frozen
//! exactly once", "no packet was sent to the old host after rebinding"),
//! and the examples print it to narrate runs.

use std::fmt;

use crate::time::SimTime;

/// Severity/importance of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume detail (every packet).
    Detail,
    /// Normal protocol milestones (program started, copy round finished).
    Info,
    /// Abnormal events (packet dropped, retransmission, migration abort).
    Warn,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag, e.g. `"kernel[2]"`, `"migration"`.
    pub tag: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<14} {}",
            self.at.to_string(),
            self.tag,
            self.message
        )
    }
}

/// An in-memory trace buffer with a level filter.
///
/// # Examples
///
/// ```
/// use vsim::{SimTime, Trace, TraceLevel};
///
/// let mut trace = Trace::new(TraceLevel::Info);
/// trace.info(SimTime::ZERO, "kernel[0]", "boot");
/// trace.detail(SimTime::ZERO, "net", "this is filtered out");
/// assert_eq!(trace.records().len(), 1);
/// ```
#[derive(Debug)]
pub struct Trace {
    min_level: TraceLevel,
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates a trace that keeps records at `min_level` and above.
    pub fn new(min_level: TraceLevel) -> Self {
        Trace {
            min_level,
            records: Vec::new(),
        }
    }

    /// A trace that discards everything below [`TraceLevel::Warn`].
    pub fn quiet() -> Self {
        Trace::new(TraceLevel::Warn)
    }

    /// Appends a record if it passes the level filter.
    pub fn record(
        &mut self,
        level: TraceLevel,
        at: SimTime,
        tag: impl Into<String>,
        message: impl Into<String>,
    ) {
        if level >= self.min_level {
            self.records.push(TraceRecord {
                at,
                level,
                tag: tag.into(),
                message: message.into(),
            });
        }
    }

    /// Records at [`TraceLevel::Detail`].
    pub fn detail(&mut self, at: SimTime, tag: impl Into<String>, msg: impl Into<String>) {
        self.record(TraceLevel::Detail, at, tag, msg);
    }

    /// Records at [`TraceLevel::Info`].
    pub fn info(&mut self, at: SimTime, tag: impl Into<String>, msg: impl Into<String>) {
        self.record(TraceLevel::Info, at, tag, msg);
    }

    /// Records at [`TraceLevel::Warn`].
    pub fn warn(&mut self, at: SimTime, tag: impl Into<String>, msg: impl Into<String>) {
        self.record(TraceLevel::Warn, at, tag, msg);
    }

    /// All retained records, in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose tag starts with `prefix`.
    pub fn with_tag<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records
            .iter()
            .filter(move |r| r.tag.starts_with(prefix))
    }

    /// Count of records whose message contains `needle`.
    pub fn count_containing(&self, needle: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .count()
    }

    /// Drops all retained records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(TraceLevel::Info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter_applies() {
        let mut t = Trace::new(TraceLevel::Info);
        t.detail(SimTime::ZERO, "a", "dropped");
        t.info(SimTime::ZERO, "a", "kept");
        t.warn(SimTime::ZERO, "b", "kept too");
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn quiet_keeps_only_warnings() {
        let mut t = Trace::quiet();
        t.info(SimTime::ZERO, "a", "nope");
        t.warn(SimTime::ZERO, "a", "yes");
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].level, TraceLevel::Warn);
    }

    #[test]
    fn tag_and_content_queries() {
        let mut t = Trace::new(TraceLevel::Detail);
        t.info(SimTime::ZERO, "kernel[0]", "freeze lh=3");
        t.info(SimTime::ZERO, "kernel[1]", "unfreeze lh=3");
        t.info(SimTime::ZERO, "net", "drop frame");
        assert_eq!(t.with_tag("kernel").count(), 2);
        assert_eq!(t.count_containing("freeze"), 2);
        assert_eq!(t.count_containing("drop"), 1);
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trace::default();
        t.info(SimTime::from_micros(23_000), "sched", "first response");
        let line = t.records()[0].to_string();
        assert!(line.contains("23.000ms"), "{line}");
        assert!(line.contains("sched"));
    }

    #[test]
    fn clear_empties_buffer() {
        let mut t = Trace::default();
        t.info(SimTime::ZERO, "x", "y");
        t.clear();
        assert!(t.records().is_empty());
    }
}
