//! Structured metrics registry.
//!
//! Every layer of the simulation records counters, gauges, and sample
//! histograms into a [`Metrics`] registry instead of ad-hoc struct fields.
//! Handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) are interned once
//! at registration; recording through a handle is a plain vector index —
//! no hashing, no string formatting, and no allocation on the hot path.
//!
//! A [`MetricsReport`] is an immutable snapshot suitable for JSON output:
//! the cluster runtime merges the per-component registries (engine, wire,
//! per-station kernels, migrators) into one report with scope labels, and
//! every bench binary writes that report beside its printed table.
//!
//! # Examples
//!
//! ```
//! use vsim::metrics::Metrics;
//! use vsim::Subsystem;
//!
//! let mut m = Metrics::new();
//! let sends = m.counter(Subsystem::Kernel, "ipc_sends");
//! let freeze = m.histogram(Subsystem::Migration, "freeze_ms", "ms");
//! m.inc(sends);
//! m.observe(freeze, 5.25);
//! let snap = m.snapshot("ws1");
//! assert_eq!(snap.counters[0].value, 1);
//! assert_eq!(snap.histograms[0].count, 1);
//! ```

use crate::json::{Json, ToJson};
use crate::stats::Samples;
use crate::time::SimDuration;
use crate::trace::Subsystem;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

#[derive(Debug, Clone)]
struct Counter {
    subsystem: Subsystem,
    name: &'static str,
    value: u64,
}

#[derive(Debug, Clone)]
struct Gauge {
    subsystem: Subsystem,
    name: &'static str,
    value: f64,
}

#[derive(Debug, Clone)]
struct HistogramEntry {
    subsystem: Subsystem,
    name: &'static str,
    unit: &'static str,
    samples: Samples,
}

/// A per-component metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<HistogramEntry>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Registers (or re-resolves) a counter named `name` under `subsystem`.
    ///
    /// Registration is idempotent: the same `(subsystem, name)` pair always
    /// returns the same handle, so components can intern freely at startup.
    pub fn counter(&mut self, subsystem: Subsystem, name: &'static str) -> CounterId {
        if let Some(i) = self
            .counters
            .iter()
            .position(|c| c.subsystem == subsystem && c.name == name)
        {
            return CounterId(i as u32);
        }
        self.counters.push(Counter {
            subsystem,
            name,
            value: 0,
        });
        CounterId(self.counters.len() as u32 - 1)
    }

    /// Registers (or re-resolves) a gauge.
    pub fn gauge(&mut self, subsystem: Subsystem, name: &'static str) -> GaugeId {
        if let Some(i) = self
            .gauges
            .iter()
            .position(|g| g.subsystem == subsystem && g.name == name)
        {
            return GaugeId(i as u32);
        }
        self.gauges.push(Gauge {
            subsystem,
            name,
            value: 0.0,
        });
        GaugeId(self.gauges.len() as u32 - 1)
    }

    /// Registers (or re-resolves) a histogram; `unit` labels the sample
    /// unit in reports (`"ms"`, `"kb"`, `"frames"`, …).
    pub fn histogram(
        &mut self,
        subsystem: Subsystem,
        name: &'static str,
        unit: &'static str,
    ) -> HistogramId {
        if let Some(i) = self
            .histograms
            .iter()
            .position(|h| h.subsystem == subsystem && h.name == name)
        {
            return HistogramId(i as u32);
        }
        self.histograms.push(HistogramEntry {
            subsystem,
            name,
            unit,
            samples: Samples::new(),
        });
        HistogramId(self.histograms.len() as u32 - 1)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize].value += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].value += n;
    }

    /// Current value of a counter.
    #[inline]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].value
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize].value = v;
    }

    /// Current value of a gauge.
    #[inline]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize].value
    }

    /// Records one histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0 as usize].samples.add(v);
    }

    /// Records a duration sample in milliseconds.
    #[inline]
    pub fn observe_ms(&mut self, id: HistogramId, d: SimDuration) {
        self.observe(id, d.as_secs_f64() * 1e3);
    }

    /// Number of samples recorded into a histogram.
    pub fn histogram_count(&self, id: HistogramId) -> usize {
        self.histograms[id.0 as usize].samples.count()
    }

    /// Snapshots this registry under the scope label `scope`
    /// (e.g. `"ws2"`, `"net"`).
    pub fn snapshot(&self, scope: &str) -> ScopeMetrics {
        ScopeMetrics {
            scope: scope.to_string(),
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    subsystem: c.subsystem,
                    name: c.name,
                    value: c.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    subsystem: g.subsystem,
                    name: g.name,
                    value: g.value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSummary::of(h.subsystem, h.name, h.unit, &h.samples))
                .collect(),
        }
    }
}

/// A frozen counter value.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// A frozen gauge value.
#[derive(Debug, Clone)]
pub struct GaugeSnapshot {
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: f64,
}

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    /// Owning subsystem.
    pub subsystem: Subsystem,
    /// Metric name.
    pub name: &'static str,
    /// Unit of the samples (`"ms"`, `"kb"`, …).
    pub unit: &'static str,
    /// Number of samples.
    pub count: usize,
    /// Sample mean (0 when empty).
    pub mean: f64,
    /// 50th percentile (nearest-rank), `None` when empty.
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
    /// Minimum sample.
    pub min: Option<f64>,
    /// Maximum sample.
    pub max: Option<f64>,
}

impl HistogramSummary {
    fn of(subsystem: Subsystem, name: &'static str, unit: &'static str, s: &Samples) -> Self {
        HistogramSummary {
            subsystem,
            name,
            unit,
            count: s.count(),
            mean: s.mean(),
            p50: s.percentile(50.0),
            p95: s.percentile(95.0),
            p99: s.percentile(99.0),
            min: s.min(),
            max: s.max(),
        }
    }
}

/// All metrics of one component, under a scope label.
#[derive(Debug, Clone)]
pub struct ScopeMetrics {
    /// Scope label (e.g. `"ws2"`, `"net"`, `"engine"`).
    pub scope: String,
    /// Counters, in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram summaries, in registration order.
    pub histograms: Vec<HistogramSummary>,
}

impl ScopeMetrics {
    /// Value of a counter by `subsystem/name`, if registered.
    pub fn counter(&self, subsystem: Subsystem, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.subsystem == subsystem && c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by `subsystem/name`, if registered.
    pub fn gauge(&self, subsystem: Subsystem, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.subsystem == subsystem && g.name == name)
            .map(|g| g.value)
    }

    /// A histogram summary by `subsystem/name`, if registered.
    pub fn histogram(&self, subsystem: Subsystem, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|h| h.subsystem == subsystem && h.name == name)
    }
}

/// A machine-readable snapshot of every registry in a run.
///
/// Serializes to JSON via [`ToJson`]; bench binaries write one of these
/// next to each printed table.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// One entry per component scope.
    pub scopes: Vec<ScopeMetrics>,
}

impl MetricsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        MetricsReport::default()
    }

    /// Appends one component's snapshot.
    pub fn push(&mut self, scope: ScopeMetrics) {
        self.scopes.push(scope);
    }

    /// Merges another report's scopes into this one.
    pub fn absorb(&mut self, other: MetricsReport) {
        self.scopes.extend(other.scopes);
    }

    /// Returns the report with every scope label prefixed by
    /// `prefix` + `/` — used when one binary runs several clusters.
    pub fn prefixed(mut self, prefix: &str) -> MetricsReport {
        for s in &mut self.scopes {
            s.scope = format!("{prefix}/{}", s.scope);
        }
        self
    }

    /// Finds a scope by label.
    pub fn scope(&self, label: &str) -> Option<&ScopeMetrics> {
        self.scopes.iter().find(|s| s.scope == label)
    }

    /// Sums a counter by `subsystem/name` across all scopes.
    pub fn counter_total(&self, subsystem: Subsystem, name: &str) -> u64 {
        self.scopes
            .iter()
            .filter_map(|s| s.counter(subsystem, name))
            .sum()
    }
}

impl ToJson for CounterSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("subsystem", self.subsystem.to_string().to_json()),
            ("name", self.name.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl ToJson for GaugeSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("subsystem", self.subsystem.to_string().to_json()),
            ("name", self.name.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

impl ToJson for HistogramSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("subsystem", self.subsystem.to_string().to_json()),
            ("name", self.name.to_json()),
            ("unit", self.unit.to_json()),
            ("count", self.count.to_json()),
            ("mean", self.mean.to_json()),
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("p99", self.p99.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
        ])
    }
}

impl ToJson for ScopeMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scope", self.scope.to_json()),
            ("counters", self.counters.to_json()),
            ("gauges", self.gauges.to_json()),
            ("histograms", self.histograms.to_json()),
        ])
    }
}

impl ToJson for MetricsReport {
    fn to_json(&self) -> Json {
        Json::obj([("scopes", self.scopes.to_json())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut m = Metrics::new();
        let a = m.counter(Subsystem::Net, "frames_sent");
        let b = m.counter(Subsystem::Net, "frames_sent");
        let c = m.counter(Subsystem::Kernel, "frames_sent");
        assert_eq!(a, b);
        assert_ne!(a, c);
        m.add(a, 3);
        m.inc(b);
        assert_eq!(m.counter_value(a), 4);
        assert_eq!(m.counter_value(c), 0);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut m = Metrics::new();
        let g = m.gauge(Subsystem::Cluster, "cpu_utilization");
        m.set_gauge(g, 0.25);
        m.set_gauge(g, 0.75);
        assert_eq!(m.gauge_value(g), 0.75);
    }

    #[test]
    fn histogram_summary_has_ordered_percentiles() {
        let mut m = Metrics::new();
        let h = m.histogram(Subsystem::Migration, "freeze_ms", "ms");
        for i in 1..=200 {
            m.observe(h, i as f64);
        }
        let snap = m.snapshot("test");
        let hs = snap.histogram(Subsystem::Migration, "freeze_ms").unwrap();
        assert_eq!(hs.count, 200);
        let (p50, p95, p99) = (hs.p50.unwrap(), hs.p95.unwrap(), hs.p99.unwrap());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(hs.min, Some(1.0));
        assert_eq!(hs.max, Some(200.0));
    }

    #[test]
    fn report_merges_and_queries() {
        let mut a = Metrics::new();
        let c = a.counter(Subsystem::Kernel, "ipc_sends");
        a.add(c, 5);
        let mut b = Metrics::new();
        let c2 = b.counter(Subsystem::Kernel, "ipc_sends");
        b.add(c2, 7);
        let mut report = MetricsReport::new();
        report.push(a.snapshot("ws1"));
        report.push(b.snapshot("ws2"));
        assert_eq!(report.counter_total(Subsystem::Kernel, "ipc_sends"), 12);
        assert_eq!(
            report
                .scope("ws1")
                .unwrap()
                .counter(Subsystem::Kernel, "ipc_sends"),
            Some(5)
        );
        let pre = report.clone().prefixed("run1");
        assert!(pre.scope("run1/ws1").is_some());
    }

    #[test]
    fn report_serializes_to_json() {
        let mut m = Metrics::new();
        let c = m.counter(Subsystem::Net, "frames_sent");
        m.add(c, 9);
        let h = m.histogram(Subsystem::Net, "wire_ms", "ms");
        m.observe(h, 1.5);
        let mut report = MetricsReport::new();
        report.push(m.snapshot("net"));
        let s = report.to_json().pretty();
        assert!(s.contains("\"scope\": \"net\""), "{s}");
        assert!(s.contains("\"frames_sent\""), "{s}");
        assert!(s.contains("\"p95\""), "{s}");
    }
}
