//! Measurement collection.
//!
//! The experiment harness reports means, extremes and percentiles of
//! simulated measurements (freeze times, dirty-page counts, response
//! times). [`OnlineStats`] accumulates moments without storing samples;
//! [`Samples`] stores them for percentiles; [`Histogram`] buckets
//! durations for distribution tables.

use crate::time::SimDuration;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use vsim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample, in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Stored samples supporting percentiles.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Adds a duration sample, in seconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were added.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// Nearest-rank is exact: the result is always one of the stored
    /// samples, the `ceil(p·n/100)`-th smallest (1-indexed). At tiny
    /// counts the high percentiles legitimately coincide with the max
    /// (p95 of three samples *is* the third), but every rank boundary is
    /// honoured precisely — see the note on evaluation order below.
    ///
    /// Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        // Multiply before dividing: `p / 100.0` rounds upward for many p
        // (7.0, 14.0, 55.0, …), and that overshoot survived the multiply
        // and pushed `ceil` one rank high — `p·n/100` with integer p and
        // small n divides exactly, so rank boundaries land where
        // nearest-rank says they must.
        let rank = ((p * sorted.len() as f64) / 100.0).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().max_by(|a, b| a.total_cmp(b))
    }

    /// Read-only view of the raw samples, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Fixed-bucket histogram of durations, for distribution tables.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bounds (exclusive) of each bucket, ascending; one overflow
    /// bucket is appended implicitly.
    bounds: Vec<SimDuration>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<SimDuration>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts }
    }

    /// Adds one duration observation.
    pub fn add(&mut self, d: SimDuration) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| d < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(label, count)` rows, including the overflow bucket.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::with_capacity(self.counts.len());
        let mut lower = SimDuration::ZERO;
        for (i, &b) in self.bounds.iter().enumerate() {
            rows.push((format!("[{lower}, {b})"), self.counts[i]));
            lower = b;
        }
        rows.push((format!(">= {lower}"), self.counts[self.bounds.len()]));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(5.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for x in 1..=100 {
            s.add(x as f64);
        }
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(90.0), Some(90.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn nearest_rank_is_exact_at_rank_boundaries() {
        // Regression: the old `(p / 100.0) * n` form rounded `p / 100`
        // upward for p = 7, 14, 55, … and the overshoot pushed `ceil`
        // one rank too high (percentile(7) over 1..=100 returned 8).
        let mut s = Samples::new();
        for x in 1..=100 {
            s.add(x as f64);
        }
        for p in 1..=100 {
            assert_eq!(s.percentile(p as f64), Some(p as f64), "p{p} of 100");
        }
        let mut s = Samples::new();
        for x in 1..=50 {
            s.add(x as f64);
        }
        for p in 1..=50 {
            // Every even percentile is an exact rank boundary at n = 50.
            assert_eq!(s.percentile(2.0 * p as f64), Some(p as f64), "p{p} of 50");
        }
    }

    #[test]
    fn tiny_sample_counts_use_nearest_rank() {
        // n < 4: the nearest-rank definition pins every value exactly.
        // p95/p99 coincide with the max (rank ceil(2.85) = 3 of 3) — that
        // is correct, not a collapse — while p50 and below must resolve
        // to the interior ranks, never the max.
        let mut s = Samples::new();
        for x in [30.0, 10.0, 20.0] {
            s.add(x);
        }
        assert_eq!(s.percentile(0.0), Some(10.0));
        assert_eq!(s.percentile(33.0), Some(10.0)); // ceil(0.99) = 1
        assert_eq!(s.percentile(50.0), Some(20.0)); // ceil(1.50) = 2
        assert_eq!(s.percentile(66.0), Some(20.0)); // ceil(1.98) = 2
        assert_eq!(s.percentile(67.0), Some(30.0)); // ceil(2.01) = 3
        assert_eq!(s.percentile(95.0), Some(30.0));
        assert_eq!(s.percentile(99.0), Some(30.0));

        let mut two = Samples::new();
        two.add(4.0);
        two.add(8.0);
        assert_eq!(two.percentile(50.0), Some(4.0)); // ceil(1.0) = 1
        assert_eq!(two.percentile(51.0), Some(8.0)); // ceil(1.02) = 2

        let mut one = Samples::new();
        one.add(42.0);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(one.percentile(p), Some(42.0));
        }
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(Samples::new().percentile(50.0), None);
        assert_eq!(Samples::new().mean(), 0.0);
    }

    #[test]
    fn duration_samples() {
        let mut s = Samples::new();
        s.add_duration(SimDuration::from_millis(5));
        s.add_duration(SimDuration::from_millis(210));
        assert!((s.mean() - 0.1075).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(vec![
            SimDuration::from_millis(10),
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        ]);
        h.add(SimDuration::from_millis(5)); // bucket 0
        h.add(SimDuration::from_millis(10)); // bucket 1 (bounds exclusive)
        h.add(SimDuration::from_millis(99)); // bucket 1
        h.add(SimDuration::from_millis(500)); // bucket 2
        h.add(SimDuration::from_secs(30)); // overflow
        assert_eq!(h.total(), 5);
        let counts: Vec<u64> = h.rows().into_iter().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![1, 2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(vec![SimDuration::from_secs(1), SimDuration::from_millis(1)]);
    }

    #[test]
    fn percentiles_are_monotone_on_random_samples() {
        let mut rng = crate::DetRng::seed(0x5eed);
        for case in 0..100 {
            let mut s = Samples::new();
            for _ in 0..(1 + rng.index(400)) {
                s.add(rng.range_f64(-5e3, 5e3));
            }
            let p50 = s.percentile(50.0).expect("non-empty");
            let p95 = s.percentile(95.0).expect("non-empty");
            let p99 = s.percentile(99.0).expect("non-empty");
            assert!(
                p50 <= p95 && p95 <= p99,
                "case {case}: p50 {p50} p95 {p95} p99 {p99}"
            );
            assert!(s.min().expect("non-empty") <= p50);
            assert!(p99 <= s.max().expect("non-empty"));
        }
    }

    #[test]
    fn percentiles_bounded_by_extremes_with_duplicates() {
        let mut rng = crate::DetRng::seed(7);
        for _ in 0..50 {
            let mut s = Samples::new();
            let v = rng.range_f64(0.0, 10.0);
            for _ in 0..(1 + rng.index(20)) {
                s.add(v); // all-equal sample: every percentile collapses to v
            }
            for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                assert_eq!(s.percentile(p), Some(v));
            }
        }
    }
}
