//! Simulated time.
//!
//! The whole reproduction runs on a single discrete-event clock with
//! microsecond resolution. Microseconds are fine-grained enough to express
//! the paper's smallest measured cost (the 13 µs per-operation freeze check,
//! §4.1) and coarse enough that a `u64` lasts for half a million simulated
//! years.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant. Used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulation clock never
    /// runs backwards, so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// The duration since `earlier`, or zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from a float second count, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1_000_000.0).round() as u64)
        }
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor, rounding to the nearest microsecond.
    ///
    /// Used for scaling calibrated costs (e.g. "3 s per megabyte" applied to
    /// a fractional megabyte count).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer-division of one duration by another (how many `other` fit).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(d.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        self.since(earlier)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(other.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(n).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            write!(f, "{:.3}s", us as f64 / 1_000_000.0)
        } else if us >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1_000.0)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_micros(100);
        let t1 = t0 + SimDuration::from_micros(50);
        assert_eq!(t1.as_micros(), 150);
        assert_eq!(t1.since(t0), SimDuration::from_micros(50));
        assert_eq!(t1 - t0, SimDuration::from_micros(50));
        assert_eq!(t1 - SimDuration::from_micros(150), SimTime::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let three_secs = SimDuration::from_secs(3);
        // The paper's 3 s/MB copy rate applied to half a megabyte.
        assert_eq!(three_secs.mul_f64(0.5), SimDuration::from_millis(1_500));
        assert_eq!(three_secs * 2, SimDuration::from_secs(6));
        assert_eq!(three_secs / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(0.000_013);
        assert_eq!(d.as_micros(), 13);
        assert!((d.as_secs_f64() - 0.000_013).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let t = SimTime::from_micros(5);
        assert_eq!(
            t.saturating_since(SimTime::from_micros(10)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_micros(1).saturating_sub(SimDuration::from_micros(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(13).to_string(), "13us");
        assert_eq!(SimDuration::from_micros(23_000).to_string(), "23.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn div_duration_counts_units() {
        let window = SimDuration::from_secs(3);
        let quantum = SimDuration::from_millis(10);
        assert_eq!(window.div_duration(quantum), 300);
    }
}
