//! Minimal JSON value model and serializer.
//!
//! The experiment harness writes machine-readable artifacts (tables and
//! [`crate::metrics::MetricsReport`] snapshots) as JSON, and the bench
//! regression gate reads them back. The simulation is dependency-free, so
//! this module provides the small serializer *and parser* the repo needs:
//! a [`Json`] value enum, a [`ToJson`] conversion trait, a pretty printer
//! with full string escaping, and [`Json::parse`].
//!
//! # Examples
//!
//! ```
//! use vsim::json::{Json, ToJson};
//!
//! let v = Json::obj([("name", "exp".to_json()), ("runs", 3u64.to_json())]);
//! assert!(v.pretty().contains("\"runs\": 3"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so u64 counters round-trip).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Parses a JSON document (recursive descent, full escape handling).
    ///
    /// Integer tokens become [`Json::UInt`] (or [`Json::Int`] when
    /// negative); tokens with a fraction or exponent become [`Json::Num`].
    /// Trailing content after the top-level value is an error.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after value"));
        }
        Ok(v)
    }

    /// Looks up `key` on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value (`None` on other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant as `f64` (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Keep integral floats readable and round-trippable.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a matching \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional {
            // Integer token: keep the serializer's Int/UInt distinction.
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Derives [`ToJson`] for a struct as an object of its named fields.
///
/// ```
/// use vsim::impl_to_json;
/// use vsim::json::ToJson;
///
/// struct Row { name: String, runs: u64 }
/// impl_to_json!(Row { name, runs });
///
/// let r = Row { name: "exp".into(), runs: 3 };
/// assert!(r.to_json().pretty().contains("\"runs\": 3"));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::obj([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.pretty().trim(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", "freeze".to_json()),
            ("rows", Json::arr([Json::obj([("ms", 5.25f64.to_json())])])),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"name\": \"freeze\""));
        assert!(s.contains("\"ms\": 5.25"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"none\": null"));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Num(f64::NAN).pretty().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty().trim(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal() {
        assert_eq!(Json::Num(3.0).pretty().trim(), "3.0");
        assert_eq!(Json::UInt(3).pretty().trim(), "3");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = Json::obj([
            ("name", "freeze \"quoted\"\n".to_json()),
            ("count", 42u64.to_json()),
            ("delta", (-3i64).to_json()),
            ("ms", 5.25f64.to_json()),
            ("whole", 3.0f64.to_json()),
            ("flag", true.to_json()),
            ("none", Json::Null),
            (
                "rows",
                Json::arr([Json::arr([]), Json::obj([("k", 1u64.to_json())])]),
            ),
        ]);
        let parsed = Json::parse(&v.pretty()).expect("parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""a\u0041\n\t\"\\\u00e9\ud83d\ude00""#).expect("parses");
        assert_eq!(v, Json::Str("aA\n\t\"\\é😀".into()));
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{1: 2}",
            "[1,]nope",
            "\"\\q\"",
            "nullx",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_values() {
        let v = Json::parse(r#"{"table": [{"ms": 1.5, "name": "x"}]}"#).expect("parses");
        let row = &v.get("table").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("ms").unwrap().as_f64(), Some(1.5));
        assert_eq!(row.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(row.get("missing"), None);
        assert_eq!(v.get("table").unwrap().as_str(), None);
    }

    #[test]
    fn derive_macro_builds_objects() {
        struct Row {
            a: u64,
            b: String,
        }
        impl_to_json!(Row { a, b });
        let j = Row {
            a: 1,
            b: "x".into(),
        }
        .to_json();
        assert_eq!(
            j,
            Json::obj([("a", Json::UInt(1)), ("b", Json::Str("x".into()))])
        );
    }
}
