//! Minimal JSON value model and serializer.
//!
//! The experiment harness writes machine-readable artifacts (tables and
//! [`crate::metrics::MetricsReport`] snapshots) as JSON. The simulation is
//! dependency-free, so this module provides the small serializer the repo
//! needs: a [`Json`] value enum, a [`ToJson`] conversion trait, and a
//! pretty printer with full string escaping.
//!
//! # Examples
//!
//! ```
//! use vsim::json::{Json, ToJson};
//!
//! let v = Json::obj([("name", "exp".to_json()), ("runs", 3u64.to_json())]);
//! assert!(v.pretty().contains("\"runs\": 3"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so u64 counters round-trip).
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Keep integral floats readable and round-trippable.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
json_uint!(u8, u16, u32, u64, usize);

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Derives [`ToJson`] for a struct as an object of its named fields.
///
/// ```
/// use vsim::impl_to_json;
/// use vsim::json::ToJson;
///
/// struct Row { name: String, runs: u64 }
/// impl_to_json!(Row { name, runs });
///
/// let r = Row { name: "exp".into(), runs: 3 };
/// assert!(r.to_json().pretty().contains("\"runs\": 3"));
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::obj([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.pretty().trim(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", "freeze".to_json()),
            ("rows", Json::arr([Json::obj([("ms", 5.25f64.to_json())])])),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let s = v.pretty();
        assert!(s.contains("\"name\": \"freeze\""));
        assert!(s.contains("\"ms\": 5.25"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"none\": null"));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Num(f64::NAN).pretty().trim(), "null");
        assert_eq!(Json::Num(f64::INFINITY).pretty().trim(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal() {
        assert_eq!(Json::Num(3.0).pretty().trim(), "3.0");
        assert_eq!(Json::UInt(3).pretty().trim(), "3");
    }

    #[test]
    fn derive_macro_builds_objects() {
        struct Row {
            a: u64,
            b: String,
        }
        impl_to_json!(Row { a, b });
        let j = Row {
            a: 1,
            b: "x".into(),
        }
        .to_json();
        assert_eq!(
            j,
            Json::obj([("a", Json::UInt(1)), ("b", Json::Str("x".into()))])
        );
    }
}
