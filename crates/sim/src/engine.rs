//! The discrete-event engine.
//!
//! A single [`Engine`] owns the pending-event queue and the simulated clock.
//! Components of the simulation are *sans-IO state machines*: they never
//! block and never sleep; instead they schedule future events on the engine
//! and react when those events are popped.
//!
//! Determinism: events that fire at the same instant are delivered in the
//! order they were scheduled (FIFO tie-break on a monotone sequence number),
//! so a run is a pure function of the initial state and the RNG seed. The
//! pending-event store itself is pluggable (see [`EventQueue`]): every
//! backend pops the exact same `(at, seq)` order, so the choice of queue is
//! purely a speed trade-off and never shows up in a trace.

use std::collections::BTreeSet;

use crate::metrics::{CounterId, GaugeId, Metrics};
use crate::queue::{DynQueue, EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};
use crate::trace::Subsystem;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A deterministic discrete-event queue with a simulated clock.
///
/// The second type parameter selects the pending-event store; it defaults
/// to [`DynQueue`] so `Engine<E>` keeps working everywhere while the
/// backend stays a runtime choice ([`Engine::with_backend`]).
///
/// # Examples
///
/// ```
/// use vsim::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_after(SimDuration::from_millis(5), "world");
/// engine.schedule_after(SimDuration::from_millis(1), "hello");
///
/// let mut seen = Vec::new();
/// while let Some((t, e)) = engine.step() {
///     seen.push((t.as_micros(), e));
/// }
/// assert_eq!(seen, vec![(1_000, "hello"), (5_000, "world")]);
/// ```
///
/// Driving a state machine that schedules follow-up events:
///
/// ```
/// use vsim::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<u32> = Engine::new();
/// engine.schedule_now(0);
/// let mut fired = Vec::new();
/// let n = engine.run_until(SimTime::MAX, |eng, _now, ev| {
///     fired.push(ev);
///     if ev < 3 {
///         eng.schedule_after(SimDuration::from_micros(1), ev + 1);
///     }
/// });
/// assert_eq!(fired, vec![0, 1, 2, 3]);
/// assert_eq!(n, 4);
/// ```
pub struct Engine<E, Q: EventQueue<E> = DynQueue<E>> {
    queue: Q,
    cancelled: BTreeSet<EventId>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    metrics: Metrics,
    ctr_scheduled: CounterId,
    ctr_delivered: CounterId,
    ctr_cancelled: CounterId,
    g_queue_depth: GaugeId,
    g_tombstones: GaugeId,
    _marker: std::marker::PhantomData<fn() -> E>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`], on the
    /// default heap backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty engine on the given queue backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_queue(DynQueue::new(backend))
    }
}

impl<E, Q: EventQueue<E>> Engine<E, Q> {
    /// Creates an empty engine around a caller-built queue (for statically
    /// monomorphised backends; most callers want [`Engine::new`] or
    /// [`Engine::with_backend`]).
    pub fn with_queue(queue: Q) -> Self {
        let mut metrics = Metrics::new();
        let ctr_scheduled = metrics.counter(Subsystem::Engine, "events_scheduled");
        let ctr_delivered = metrics.counter(Subsystem::Engine, "events_delivered");
        let ctr_cancelled = metrics.counter(Subsystem::Engine, "events_cancelled");
        let g_queue_depth = metrics.gauge(Subsystem::Engine, "queue_depth");
        let g_tombstones = metrics.gauge(Subsystem::Engine, "tombstones");
        Engine {
            queue,
            cancelled: BTreeSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            metrics,
            ctr_scheduled,
            ctr_delivered,
            ctr_cancelled,
            g_queue_depth,
            g_tombstones,
            _marker: std::marker::PhantomData,
        }
    }

    /// Mirrors the live queue depth and tombstone count into their gauges
    /// so they are observable (and samplable) like any other metric.
    #[inline]
    fn sync_queue_gauges(&mut self) {
        let depth = self.pending() as f64;
        let tombstones = self.cancelled.len() as f64;
        self.metrics.set_gauge(self.g_queue_depth, depth);
        self.metrics.set_gauge(self.g_tombstones, tombstones);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's metrics registry, which it owns alongside the clock.
    ///
    /// The engine records its own queue counters here; the runtime that
    /// drives the engine may register additional cluster-level metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the engine's metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Number of events delivered so far (popped, not cancelled).
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    ///
    /// Cancellation is lazy, so this subtracts the tombstone count from
    /// the stored count; a cancel that raced an already-fired event can
    /// make the estimate low by one until the next compaction.
    pub fn pending(&self) -> usize {
        self.queue.len().saturating_sub(self.cancelled.len())
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event model.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, event);
        self.metrics.inc(self.ctr_scheduled);
        self.sync_queue_gauges();
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the queue and is skipped
    /// when popped (its tombstone is dropped at that point). Cancelling an
    /// already-fired or unknown id is a no-op (the usual race between a
    /// timer firing and being cancelled); tombstones left behind by such
    /// races are compacted away whenever they outnumber the live queue,
    /// so the set can never grow without bound.
    pub fn cancel(&mut self, id: EventId) {
        if id.0 < self.next_seq && self.cancelled.insert(id) {
            self.metrics.inc(self.ctr_cancelled);
        }
        if self.cancelled.len() > self.queue.len() {
            self.compact_tombstones();
        }
        self.sync_queue_gauges();
    }

    /// Drops every tombstone whose event is no longer in the queue.
    fn compact_tombstones(&mut self) {
        let mut live = Vec::with_capacity(self.queue.len());
        self.queue.live_seqs(&mut live);
        let live: BTreeSet<u64> = live.into_iter().collect();
        self.cancelled.retain(|id| live.contains(&id.0));
    }

    /// Delivers the next event, advancing the clock to its firing time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        self.step_due(SimTime::MAX)
    }

    /// Delivers the next event if it fires at or before `limit`.
    ///
    /// Advances the clock to the event time on success. The clock is *not*
    /// advanced to `limit` on failure; call [`Engine::advance_to`] if a
    /// scenario needs the clock moved past the last event.
    pub fn step_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            let (due, _) = self.queue.peek()?;
            if due > limit {
                return None;
            }
            let (at, seq, event) = self.queue.pop()?;
            if self.cancelled.remove(&EventId(seq)) {
                // The clock still advances over a cancelled event's
                // instant: the backend has committed to that time (the
                // wheel rebases on pop), so scheduling before it is no
                // longer possible and `now` must not trail it.
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.sync_queue_gauges();
                continue;
            }
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            self.popped += 1;
            self.metrics.inc(self.ctr_delivered);
            self.sync_queue_gauges();
            return Some((at, event));
        }
    }

    /// Runs `handler` on every event up to `limit`: the standard drive
    /// loop, owned by the engine so callers don't hand-roll
    /// `while let Some(..)` over [`Engine::step_due`]. The handler
    /// receives the engine to schedule follow-up events; the clock already
    /// stands at each event's firing time.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run_until(
        &mut self,
        limit: SimTime,
        mut handler: impl FnMut(&mut Self, SimTime, E),
    ) -> u64 {
        let start = self.popped;
        while let Some((t, e)) = self.step_due(limit) {
            handler(self, t, e);
        }
        self.popped - start
    }

    /// Runs `handler` until the queue drains completely.
    pub fn run(&mut self, handler: impl FnMut(&mut Self, SimTime, E)) -> u64 {
        self.run_until(SimTime::MAX, handler)
    }

    /// Moves the clock forward to `t` without delivering events.
    ///
    /// # Panics
    ///
    /// Panics if an undelivered event is pending before `t`, or if `t` is in
    /// the past — both indicate scenario logic errors.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to moving backwards");
        if let Some((at, seq)) = self.queue.peek() {
            if !self.cancelled.contains(&EventId(seq)) {
                assert!(
                    at >= t,
                    "advance_to({t}) would skip a pending event at {at}"
                );
            }
        }
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every engine-semantics test runs on both backends: the queue choice
    /// must be invisible.
    fn engines() -> Vec<Engine<u32>> {
        vec![
            Engine::with_backend(QueueBackend::Heap),
            Engine::with_backend(QueueBackend::TimingWheel),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut e in engines() {
            e.schedule_after(SimDuration::from_micros(30), 3);
            e.schedule_after(SimDuration::from_micros(10), 1);
            e.schedule_after(SimDuration::from_micros(20), 2);
            let order: Vec<u32> = std::iter::from_fn(|| e.step().map(|(_, v)| v)).collect();
            assert_eq!(order, vec![1, 2, 3]);
            assert_eq!(e.now(), SimTime::from_micros(30));
        }
    }

    #[test]
    fn same_instant_is_fifo() {
        for mut e in engines() {
            let t = SimTime::from_micros(5);
            for v in 0..100 {
                e.schedule_at(t, v);
            }
            let order: Vec<u32> = std::iter::from_fn(|| e.step().map(|(_, v)| v)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cancellation_skips_events() {
        for mut e in engines() {
            let a = e.schedule_after(SimDuration::from_micros(1), 1);
            e.schedule_after(SimDuration::from_micros(2), 2);
            e.cancel(a);
            assert_eq!(e.pending(), 1);
            assert_eq!(e.step().map(|(_, v)| v), Some(2));
            assert_eq!(e.step(), None);
            assert_eq!(e.events_delivered(), 1);
        }
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        for mut e in engines() {
            let a = e.schedule_now(1);
            assert_eq!(e.step().map(|(_, v)| v), Some(1));
            e.cancel(a);
            e.schedule_now(2);
            assert_eq!(e.step().map(|(_, v)| v), Some(2));
        }
    }

    #[test]
    fn stale_tombstones_do_not_accumulate_or_underflow() {
        // Regression: cancelling ids after they fired used to leave
        // permanent tombstones, eventually making `pending()` underflow
        // (queue.len() - cancelled.len() in unsigned arithmetic).
        for mut e in engines() {
            let a = e.schedule_now(1);
            let b = e.schedule_now(2);
            assert!(e.step().is_some());
            assert!(e.step().is_some());
            // Both events have fired; cancelling them now is the race.
            e.cancel(a);
            e.cancel(b);
            // Old code: pending() panicked on 0usize - 2. New code: the
            // stale tombstones are compacted away against the empty queue.
            assert_eq!(e.pending(), 0);
            let c = e.schedule_after(SimDuration::from_micros(5), 3);
            assert_eq!(e.pending(), 1);
            // And a live cancel still works exactly.
            e.cancel(c);
            assert_eq!(e.pending(), 0);
            assert_eq!(e.step(), None);
        }
    }

    #[test]
    fn step_due_respects_limit() {
        for mut e in engines() {
            e.schedule_after(SimDuration::from_micros(10), 1);
            e.schedule_after(SimDuration::from_micros(20), 2);
            assert_eq!(
                e.step_due(SimTime::from_micros(15)).map(|(_, v)| v),
                Some(1)
            );
            assert_eq!(e.step_due(SimTime::from_micros(15)), None);
            // The clock stays at the last delivered event.
            assert_eq!(e.now(), SimTime::from_micros(10));
            assert_eq!(e.step().map(|(_, v)| v), Some(2));
        }
    }

    #[test]
    fn schedule_now_runs_after_peers_at_same_instant() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::ZERO, "first");
        e.schedule_now("second");
        assert_eq!(e.step().map(|(_, v)| v), Some("first"));
        assert_eq!(e.step().map(|(_, v)| v), Some("second"));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.step();
        e.schedule_at(SimTime::from_micros(5), 2);
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut e: Engine<u32> = Engine::new();
        e.advance_to(SimTime::from_micros(100));
        assert_eq!(e.now(), SimTime::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "would skip")]
    fn advance_to_refuses_to_skip_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.advance_to(SimTime::from_micros(20));
    }

    #[test]
    fn run_until_drives_chained_events() {
        for mut e in engines() {
            e.schedule_now(0);
            let mut fired = Vec::new();
            let n = e.run(|eng, _now, ev| {
                fired.push(ev);
                // Chain follow-up events to exercise re-entrancy.
                if ev < 3 {
                    eng.schedule_after(SimDuration::from_micros(1), ev + 1);
                }
            });
            assert_eq!(fired, vec![0, 1, 2, 3]);
            assert_eq!(n, 4);
            assert_eq!(e.now(), SimTime::from_micros(3));
        }
    }

    #[test]
    fn run_until_stops_at_limit() {
        for mut e in engines() {
            e.schedule_now(0);
            let mut fired = Vec::new();
            e.run_until(SimTime::from_micros(1), |eng, _now, ev| {
                fired.push(ev);
                if ev < 3 {
                    eng.schedule_after(SimDuration::from_micros(1), ev + 1);
                }
            });
            assert_eq!(fired, vec![0, 1]);
            assert_eq!(e.pending(), 1);
        }
    }

    #[test]
    fn queue_gauges_track_depth_and_tombstones() {
        for mut e in engines() {
            let depth = |e: &Engine<u32>| {
                e.metrics()
                    .snapshot("engine")
                    .gauge(Subsystem::Engine, "queue_depth")
            };
            let tombs = |e: &Engine<u32>| {
                e.metrics()
                    .snapshot("engine")
                    .gauge(Subsystem::Engine, "tombstones")
            };
            let a = e.schedule_after(SimDuration::from_micros(1), 1);
            e.schedule_after(SimDuration::from_micros(2), 2);
            assert_eq!(depth(&e), Some(2.0));
            assert_eq!(tombs(&e), Some(0.0));
            e.cancel(a);
            assert_eq!(depth(&e), Some(1.0));
            assert_eq!(tombs(&e), Some(1.0));
            // Delivering event 2 walks over the tombstone for event 1.
            assert_eq!(e.step().map(|(_, v)| v), Some(2));
            assert_eq!(depth(&e), Some(0.0));
            assert_eq!(tombs(&e), Some(0.0));
        }
    }

    #[test]
    fn backends_agree_on_far_future_schedules() {
        // Past the wheel horizon (~19 simulated hours) and back.
        for mut e in engines() {
            e.schedule_after(SimDuration::from_secs(100_000), 9);
            e.schedule_after(SimDuration::from_micros(1), 1);
            let order: Vec<(u64, u32)> =
                std::iter::from_fn(|| e.step().map(|(t, v)| (t.as_micros(), v))).collect();
            assert_eq!(order, vec![(1, 1), (100_000_000_000, 9)]);
        }
    }
}
