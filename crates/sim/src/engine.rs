//! The discrete-event engine.
//!
//! A single [`Engine`] owns the pending-event queue and the simulated clock.
//! Components of the simulation are *sans-IO state machines*: they never
//! block and never sleep; instead they schedule future events on the engine
//! and react when those events are popped.
//!
//! Determinism: events that fire at the same instant are delivered in the
//! order they were scheduled (FIFO tie-break on a monotone sequence number),
//! so a run is a pure function of the initial state and the RNG seed.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

use crate::metrics::{CounterId, Metrics};
use crate::time::{SimDuration, SimTime};
use crate::trace::Subsystem;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-scheduled) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue with a simulated clock.
///
/// # Examples
///
/// ```
/// use vsim::{Engine, SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_after(SimDuration::from_millis(5), "world");
/// engine.schedule_after(SimDuration::from_millis(1), "hello");
///
/// let mut seen = Vec::new();
/// while let Some((t, e)) = engine.pop() {
///     seen.push((t.as_micros(), e));
/// }
/// assert_eq!(seen, vec![(1_000, "hello"), (5_000, "world")]);
/// ```
pub struct Engine<E> {
    queue: BinaryHeap<Scheduled<E>>,
    cancelled: BTreeSet<EventId>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    metrics: Metrics,
    ctr_scheduled: CounterId,
    ctr_delivered: CounterId,
    ctr_cancelled: CounterId,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        let mut metrics = Metrics::new();
        let ctr_scheduled = metrics.counter(Subsystem::Engine, "events_scheduled");
        let ctr_delivered = metrics.counter(Subsystem::Engine, "events_delivered");
        let ctr_cancelled = metrics.counter(Subsystem::Engine, "events_cancelled");
        Engine {
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            metrics,
            ctr_scheduled,
            ctr_delivered,
            ctr_cancelled,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The engine's metrics registry, which it owns alongside the clock.
    ///
    /// The engine records its own queue counters here; the runtime that
    /// drives the engine may register additional cluster-level metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the engine's metrics registry.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Number of events delivered so far (popped, not cancelled).
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including lazily-cancelled ones).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event model.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event in the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, event });
        self.metrics.inc(self.ctr_scheduled);
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped when
    /// popped. Cancelling an already-fired or unknown id is a no-op (the
    /// usual race between a timer firing and being cancelled).
    pub fn cancel(&mut self, id: EventId) {
        if id.0 < self.next_seq && self.cancelled.insert(id) {
            self.metrics.inc(self.ctr_cancelled);
        }
    }

    /// Pops the next event, advancing the clock to its firing time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_due(SimTime::MAX)
    }

    /// Pops the next event if it fires at or before `limit`.
    ///
    /// Advances the clock to the event time on success. The clock is *not*
    /// advanced to `limit` on failure; call [`Engine::advance_to`] if a
    /// scenario needs the clock moved past the last event.
    pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        loop {
            let due = self.queue.peek().map(|s| s.at)?;
            if due > limit {
                return None;
            }
            let s = self.queue.pop().expect("peeked entry vanished");
            if self.cancelled.remove(&EventId(s.seq)) {
                continue;
            }
            debug_assert!(s.at >= self.now, "event queue went backwards");
            self.now = s.at;
            self.popped += 1;
            self.metrics.inc(self.ctr_delivered);
            return Some((s.at, s.event));
        }
    }

    /// Moves the clock forward to `t` without delivering events.
    ///
    /// # Panics
    ///
    /// Panics if an undelivered event is pending before `t`, or if `t` is in
    /// the past — both indicate scenario logic errors.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to moving backwards");
        if let Some(s) = self.queue.peek() {
            if !self.cancelled.contains(&EventId(s.seq)) {
                assert!(
                    s.at >= t,
                    "advance_to({t}) would skip a pending event at {}",
                    s.at
                );
            }
        }
        self.now = t;
    }
}

/// A state machine driven by an [`Engine`].
///
/// The handler receives the engine so that it can schedule follow-up events;
/// the engine's clock already stands at the event's firing time.
pub trait Dispatch<E> {
    /// Handles one event at time `now`.
    fn dispatch(&mut self, engine: &mut Engine<E>, now: SimTime, event: E);
}

/// Runs `state` until the queue drains or the clock would pass `limit`.
///
/// Returns the number of events delivered by this call.
pub fn run_until<E, S: Dispatch<E>>(engine: &mut Engine<E>, state: &mut S, limit: SimTime) -> u64 {
    let start = engine.events_delivered();
    while let Some((t, e)) = engine.pop_due(limit) {
        state.dispatch(engine, t, e);
    }
    engine.events_delivered() - start
}

/// Runs `state` until the queue drains completely.
pub fn run_to_completion<E, S: Dispatch<E>>(engine: &mut Engine<E>, state: &mut S) -> u64 {
    run_until(engine, state, SimTime::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(30), 3);
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.schedule_after(SimDuration::from_micros(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_micros(30));
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut e: Engine<u32> = Engine::new();
        let t = SimTime::from_micros(5);
        for v in 0..100 {
            e.schedule_at(t, v);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_after(SimDuration::from_micros(1), 1);
        e.schedule_after(SimDuration::from_micros(2), 2);
        e.cancel(a);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.pop().map(|(_, v)| v), Some(2));
        assert_eq!(e.pop(), None);
        assert_eq!(e.events_delivered(), 1);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e: Engine<u32> = Engine::new();
        let a = e.schedule_now(1);
        assert_eq!(e.pop().map(|(_, v)| v), Some(1));
        e.cancel(a);
        e.schedule_now(2);
        assert_eq!(e.pop().map(|(_, v)| v), Some(2));
    }

    #[test]
    fn pop_due_respects_limit() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.schedule_after(SimDuration::from_micros(20), 2);
        assert_eq!(e.pop_due(SimTime::from_micros(15)).map(|(_, v)| v), Some(1));
        assert_eq!(e.pop_due(SimTime::from_micros(15)), None);
        // The clock stays at the last delivered event.
        assert_eq!(e.now(), SimTime::from_micros(10));
        assert_eq!(e.pop().map(|(_, v)| v), Some(2));
    }

    #[test]
    fn schedule_now_runs_after_peers_at_same_instant() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::ZERO, "first");
        e.schedule_now("second");
        assert_eq!(e.pop().map(|(_, v)| v), Some("first"));
        assert_eq!(e.pop().map(|(_, v)| v), Some("second"));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.pop();
        e.schedule_at(SimTime::from_micros(5), 2);
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let mut e: Engine<u32> = Engine::new();
        e.advance_to(SimTime::from_micros(100));
        assert_eq!(e.now(), SimTime::from_micros(100));
    }

    #[test]
    #[should_panic(expected = "would skip")]
    fn advance_to_refuses_to_skip_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_after(SimDuration::from_micros(10), 1);
        e.advance_to(SimTime::from_micros(20));
    }

    struct Counter {
        fired: Vec<u32>,
    }

    impl Dispatch<u32> for Counter {
        fn dispatch(&mut self, engine: &mut Engine<u32>, _now: SimTime, event: u32) {
            self.fired.push(event);
            // Chain follow-up events to exercise re-entrancy.
            if event < 3 {
                engine.schedule_after(SimDuration::from_micros(1), event + 1);
            }
        }
    }

    #[test]
    fn run_until_drives_chained_events() {
        let mut e: Engine<u32> = Engine::new();
        let mut c = Counter { fired: Vec::new() };
        e.schedule_now(0);
        let n = run_to_completion(&mut e, &mut c);
        assert_eq!(c.fired, vec![0, 1, 2, 3]);
        assert_eq!(n, 4);
        assert_eq!(e.now(), SimTime::from_micros(3));
    }

    #[test]
    fn run_until_stops_at_limit() {
        let mut e: Engine<u32> = Engine::new();
        let mut c = Counter { fired: Vec::new() };
        e.schedule_now(0);
        run_until(&mut e, &mut c, SimTime::from_micros(1));
        assert_eq!(c.fired, vec![0, 1]);
        assert_eq!(e.pending(), 1);
    }
}
