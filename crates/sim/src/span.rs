//! Causal spans over the trace log.
//!
//! The paper's headline numbers are latency *decompositions* — freeze time
//! split into residual copy, commit, and rebind (§4.2); remote-execution
//! overhead split per message exchange (§5) — but [`Trace`]
//! is a flat event stream. This module layers Dapper-style causal spans on
//! top of it: a span is a named interval opened and closed by two trace
//! records ([`TraceEvent::SpanOpen`] / [`TraceEvent::SpanClose`]) linked to
//! a parent by id, and [`SpanTree`] reconstructs the hierarchy post hoc
//! from any merged trace.
//!
//! Spans ride the existing trace machinery on purpose: they inherit its
//! determinism, its level filter (per-packet IPC spans are `Detail`,
//! migration phases are `Info`), and the cluster's timeline merge. A
//! [`SpanContext`] is a single `u64` id, cheap enough to stamp on every
//! network frame, so one remote Send/Receive/Reply round trip becomes one
//! tree spanning several stations.
//!
//! Id allocation is deterministic: each emitting component owns a
//! [`SpanIdGen`] seeded with a unique actor number, and ids are
//! `actor << 40 | counter`, so replays produce identical trees and merged
//! traces never collide.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanEvent, Subsystem, Trace, TraceEvent, TraceLevel};

/// Identifier of one span. Never zero; zero is reserved for "no span"
/// (see [`SpanContext::NONE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id (non-zero).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The context carrying this span as a parent for children.
    pub fn ctx(self) -> SpanContext {
        SpanContext(self.0)
    }

    /// Emits the open record for this span.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        self,
        trace: &mut Trace,
        level: TraceLevel,
        at: SimTime,
        subsystem: Subsystem,
        parent: SpanContext,
        name: &'static str,
        host: u16,
    ) {
        trace.emit(
            level,
            at,
            subsystem,
            TraceEvent::SpanOpen {
                id: self.0,
                parent: parent.0,
                name,
                host,
            },
        );
    }

    /// Emits the close record for this span.
    pub fn close(self, trace: &mut Trace, level: TraceLevel, at: SimTime, subsystem: Subsystem) {
        trace.emit(level, at, subsystem, TraceEvent::SpanClose { id: self.0 });
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:x}", self.0)
    }
}

/// A propagated causal reference: "the work you are about to do is part of
/// span X". Stamped on network frames and IPC transactions; `NONE` (id 0)
/// means unparented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanContext(u64);

impl SpanContext {
    /// The absent context: children opened under it become roots.
    pub const NONE: SpanContext = SpanContext(0);

    /// The context referring to span `id`.
    pub fn of(id: SpanId) -> Self {
        SpanContext(id.0)
    }

    /// True when this context refers to no span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// True when this context refers to a span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The raw id (zero when none).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The span this context refers to, when it refers to one. Lets a
    /// component that received a context over the wire adopt the span as
    /// its own (e.g. a migrated transaction re-homed on the target kernel).
    pub fn span_id(self) -> Option<SpanId> {
        if self.0 == 0 {
            None
        } else {
            Some(SpanId(self.0))
        }
    }
}

/// Deterministic span-id allocator.
///
/// Each component that opens spans owns one generator with a cluster-unique
/// `actor` number; ids are `actor << 40 | counter` so ids from different
/// stations never collide in a merged trace and replays allocate
/// identically.
#[derive(Debug, Clone)]
pub struct SpanIdGen {
    actor: u64,
    next: u64,
}

impl SpanIdGen {
    /// Creates a generator for `actor` (must be non-zero and below 2^24).
    pub fn new(actor: u64) -> Self {
        assert!(actor != 0, "actor 0 would alias SpanContext::NONE");
        assert!(actor < (1 << 24), "actor out of range");
        SpanIdGen { actor, next: 0 }
    }

    /// Allocates the next id.
    ///
    /// Not an `Iterator`: allocation never ends and must not be confused
    /// with iteration over existing spans.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> SpanId {
        self.next += 1;
        SpanId((self.actor << 40) | self.next)
    }
}

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span's id.
    pub id: SpanId,
    /// Parent reference recorded at open time (`NONE` for roots).
    pub parent: SpanContext,
    /// Static span name ("migration", "precopy_round", "ipc", ...).
    pub name: &'static str,
    /// Physical-host address of the component that opened it.
    pub host: u16,
    /// Open instant.
    pub open: SimTime,
    /// Close instant; `None` when no close record was seen.
    pub close: Option<SimTime>,
    children: Vec<usize>,
}

impl SpanNode {
    /// Open-to-close duration; `None` while unclosed.
    pub fn duration(&self) -> Option<SimDuration> {
        self.close.map(|c| c.saturating_since(self.open))
    }
}

/// A structural defect found by [`SpanTree::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanViolation {
    /// A `SpanClose` record had no preceding matching `SpanOpen`.
    CloseWithoutOpen {
        /// Offending raw span id.
        id: u64,
    },
    /// The same id was opened twice.
    DuplicateOpen {
        /// Offending raw span id.
        id: u64,
    },
    /// A span referenced a parent id that was never opened.
    OrphanParent {
        /// Child raw span id.
        id: u64,
        /// Missing parent raw id.
        parent: u64,
    },
    /// A child span opened before its parent did.
    ChildBeforeParent {
        /// Child raw span id.
        id: u64,
    },
    /// A closed child's interval extends outside its closed parent's
    /// (reported by [`SpanTree::validate_nesting`] only: a server-side
    /// span legitimately outlives a client that timed out under faults).
    ChildOutsideParent {
        /// Child raw span id.
        id: u64,
    },
}

impl fmt::Display for SpanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanViolation::CloseWithoutOpen { id } => {
                write!(f, "close without open: #{id:x}")
            }
            SpanViolation::DuplicateOpen { id } => write!(f, "duplicate open: #{id:x}"),
            SpanViolation::OrphanParent { id, parent } => {
                write!(f, "span #{id:x} references unknown parent #{parent:x}")
            }
            SpanViolation::ChildBeforeParent { id } => {
                write!(f, "span #{id:x} opened before its parent")
            }
            SpanViolation::ChildOutsideParent { id } => {
                write!(f, "span #{id:x} closed outside its parent's interval")
            }
        }
    }
}

/// The span hierarchy reconstructed from a trace.
///
/// # Examples
///
/// ```
/// use vsim::{SimTime, SpanContext, SpanIdGen, SpanTree, Subsystem, Trace, TraceLevel};
///
/// let mut trace = Trace::new(TraceLevel::Info);
/// let mut gen = SpanIdGen::new(1);
/// let root = gen.next();
/// let child = gen.next();
/// root.open(&mut trace, TraceLevel::Info, SimTime::ZERO,
///           Subsystem::Migration, SpanContext::NONE, "migration", 1);
/// child.open(&mut trace, TraceLevel::Info, SimTime::from_micros(10),
///            Subsystem::Migration, root.ctx(), "freeze", 1);
/// child.close(&mut trace, TraceLevel::Info, SimTime::from_micros(40), Subsystem::Migration);
/// root.close(&mut trace, TraceLevel::Info, SimTime::from_micros(50), Subsystem::Migration);
///
/// let tree = SpanTree::build(&trace);
/// assert_eq!(tree.roots().count(), 1);
/// assert_eq!(tree.duration_of(child).unwrap().as_micros(), 30);
/// assert!(tree.validate().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    by_id: BTreeMap<u64, usize>,
    roots: Vec<usize>,
    violations: Vec<SpanViolation>,
}

impl SpanTree {
    /// Reconstructs spans from every `SpanOpen`/`SpanClose` record in
    /// `trace`. Structural defects are collected (see [`Self::validate`])
    /// rather than panicking, so faulty traces can still be inspected.
    pub fn build(trace: &Trace) -> SpanTree {
        let mut t = SpanTree::default();
        for r in trace.records() {
            // `as_span` is the exhaustive accessor: every `TraceEvent`
            // variant explicitly opts in or out of span structure there,
            // so this loop needs no wildcard arm over the enum.
            match r.event.as_span() {
                Some(SpanEvent::Open {
                    id,
                    parent,
                    name,
                    host,
                }) => {
                    if t.by_id.contains_key(&id) {
                        t.violations.push(SpanViolation::DuplicateOpen { id });
                        continue;
                    }
                    let idx = t.nodes.len();
                    t.by_id.insert(id, idx);
                    t.nodes.push(SpanNode {
                        id: SpanId(id),
                        parent: SpanContext(parent),
                        name,
                        host,
                        open: r.at,
                        close: None,
                        children: Vec::new(),
                    });
                }
                Some(SpanEvent::Close { id }) => match t.by_id.get(&id) {
                    Some(&idx) if t.nodes[idx].close.is_none() => {
                        t.nodes[idx].close = Some(r.at);
                    }
                    // A second close for an already-closed id is as
                    // unmatched as a close with no open at all.
                    _ => t.violations.push(SpanViolation::CloseWithoutOpen { id }),
                },
                None => {}
            }
        }
        for idx in 0..t.nodes.len() {
            let parent = t.nodes[idx].parent;
            if parent.is_none() {
                t.roots.push(idx);
            } else {
                match t.by_id.get(&parent.raw()) {
                    Some(&p) => {
                        t.nodes[p].children.push(idx);
                        if t.nodes[idx].open < t.nodes[p].open {
                            t.violations.push(SpanViolation::ChildBeforeParent {
                                id: t.nodes[idx].id.raw(),
                            });
                        }
                    }
                    None => {
                        // Keep the span reachable as a root so partial
                        // traces stay inspectable.
                        t.violations.push(SpanViolation::OrphanParent {
                            id: t.nodes[idx].id.raw(),
                            parent: parent.raw(),
                        });
                        t.roots.push(idx);
                    }
                }
            }
        }
        t
    }

    /// All spans, in open order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// True when the trace held no span records.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The span with id `id`.
    pub fn get(&self, id: SpanId) -> Option<&SpanNode> {
        self.by_id.get(&id.raw()).map(|&i| &self.nodes[i])
    }

    /// Spans with no (known) parent, in open order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanNode> {
        self.roots.iter().map(move |&i| &self.nodes[i])
    }

    /// Direct children of `id`, in open order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &SpanNode> {
        let kids = self
            .by_id
            .get(&id.raw())
            .map(|&i| self.nodes[i].children.as_slice())
            .unwrap_or(&[]);
        kids.iter().map(move |&i| &self.nodes[i])
    }

    /// Spans named `name`, in open order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanNode> {
        self.nodes.iter().filter(move |n| n.name == name)
    }

    /// Open-to-close duration of span `id` (`None` if unknown or unclosed).
    pub fn duration_of(&self, id: SpanId) -> Option<SimDuration> {
        self.get(id).and_then(|n| n.duration())
    }

    /// Sums the durations of `id`'s direct children grouped by span name,
    /// in first-open order — the per-phase decomposition of a root span.
    pub fn breakdown(&self, id: SpanId) -> Vec<(&'static str, SimDuration)> {
        let mut order: Vec<&'static str> = Vec::new();
        let mut totals: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
        for c in self.children(id) {
            if let Some(d) = c.duration() {
                if !totals.contains_key(c.name) {
                    order.push(c.name);
                }
                *totals.entry(c.name).or_insert(SimDuration::ZERO) += d;
            }
        }
        order.into_iter().map(|n| (n, totals[n])).collect()
    }

    /// The chain of spans from `id` down to a leaf, descending at each
    /// step into the child that closes last (the child still open, or with
    /// the latest close time) — the path that bounds the parent's latency.
    pub fn critical_path(&self, id: SpanId) -> Vec<SpanId> {
        let mut path = Vec::new();
        let mut cur = match self.by_id.get(&id.raw()) {
            Some(&i) => i,
            None => return path,
        };
        loop {
            path.push(self.nodes[cur].id);
            let next = self.nodes[cur]
                .children
                .iter()
                .copied()
                .max_by_key(|&c| (self.nodes[c].close.unwrap_or(SimTime::MAX), c));
            match next {
                Some(c) => cur = c,
                None => return path,
            }
        }
    }

    /// Spans with no close record.
    pub fn unclosed(&self) -> impl Iterator<Item = &SpanNode> {
        self.nodes.iter().filter(|n| n.close.is_none())
    }

    /// Structural defects: unmatched closes, duplicate opens, orphan
    /// parent references, children opening before their parents. Sound
    /// even for faulty runs — a crashed station may leave spans *unclosed*
    /// (query with [`Self::unclosed`]), but never ill-formed.
    pub fn validate(&self) -> Vec<SpanViolation> {
        self.violations.clone()
    }

    /// [`Self::validate`] plus strict interval nesting: every closed child
    /// must close within its closed parent's interval. Holds on fault-free
    /// runs; under injected faults a server span can legitimately outlive
    /// a timed-out client span.
    pub fn validate_nesting(&self) -> Vec<SpanViolation> {
        let mut v = self.validate();
        for n in &self.nodes {
            if n.parent.is_none() {
                continue;
            }
            if let (Some(p), Some(close)) = (self.get_by_raw(n.parent.raw()), n.close) {
                if let Some(pclose) = p.close {
                    if close > pclose {
                        v.push(SpanViolation::ChildOutsideParent { id: n.id.raw() });
                    }
                }
            }
        }
        v
    }

    fn get_by_raw(&self, id: u64) -> Option<&SpanNode> {
        self.by_id.get(&id).map(|&i| &self.nodes[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(t: &mut Trace, id: SpanId, parent: SpanContext, name: &'static str, at: u64) {
        id.open(
            t,
            TraceLevel::Info,
            SimTime::from_micros(at),
            Subsystem::Migration,
            parent,
            name,
            1,
        );
    }

    fn close(t: &mut Trace, id: SpanId, at: u64) {
        id.close(
            t,
            TraceLevel::Info,
            SimTime::from_micros(at),
            Subsystem::Migration,
        );
    }

    #[test]
    fn id_generator_is_unique_and_deterministic() {
        let mut a = SpanIdGen::new(1);
        let mut b = SpanIdGen::new(2);
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                if i % 2 == 0 {
                    a.next().raw()
                } else {
                    b.next().raw()
                }
            })
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids collided: {ids:?}");
        let mut a2 = SpanIdGen::new(1);
        assert_eq!(a2.next().raw(), ids[0]);
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn actor_zero_is_rejected() {
        SpanIdGen::new(0);
    }

    #[test]
    fn builds_tree_with_durations_and_breakdown() {
        let mut t = Trace::new(TraceLevel::Info);
        let mut g = SpanIdGen::new(1);
        let root = g.next();
        let (a, b, c) = (g.next(), g.next(), g.next());
        open(&mut t, root, SpanContext::NONE, "migration", 0);
        open(&mut t, a, root.ctx(), "precopy_round", 0);
        close(&mut t, a, 30);
        open(&mut t, b, root.ctx(), "precopy_round", 30);
        close(&mut t, b, 50);
        open(&mut t, c, root.ctx(), "freeze", 50);
        close(&mut t, c, 90);
        close(&mut t, root, 90);

        let tree = SpanTree::build(&t);
        assert!(tree.validate_nesting().is_empty());
        assert_eq!(tree.roots().count(), 1);
        assert_eq!(tree.duration_of(root).unwrap().as_micros(), 90);
        let phases = tree.breakdown(root);
        assert_eq!(
            phases,
            vec![
                ("precopy_round", SimDuration::from_micros(50)),
                ("freeze", SimDuration::from_micros(40)),
            ]
        );
        let total: SimDuration = phases.iter().map(|&(_, d)| d).sum();
        assert_eq!(total, tree.duration_of(root).unwrap());
    }

    #[test]
    fn critical_path_follows_latest_close() {
        let mut t = Trace::new(TraceLevel::Info);
        let mut g = SpanIdGen::new(1);
        let root = g.next();
        let (fast, slow, leaf) = (g.next(), g.next(), g.next());
        open(&mut t, root, SpanContext::NONE, "migration", 0);
        open(&mut t, fast, root.ctx(), "selection", 0);
        close(&mut t, fast, 10);
        open(&mut t, slow, root.ctx(), "freeze", 10);
        open(&mut t, leaf, slow.ctx(), "residual_copy", 12);
        close(&mut t, leaf, 70);
        close(&mut t, slow, 80);
        close(&mut t, root, 80);
        let tree = SpanTree::build(&t);
        assert_eq!(tree.critical_path(root), vec![root, slow, leaf]);
    }

    #[test]
    fn detects_ill_formed_traces() {
        let mut t = Trace::new(TraceLevel::Info);
        let mut g = SpanIdGen::new(1);
        let a = g.next();
        let ghost = g.next();
        let orphan = g.next();
        open(&mut t, a, SpanContext::NONE, "x", 0);
        close(&mut t, a, 5);
        close(&mut t, a, 6); // double close
        close(&mut t, ghost, 7); // never opened
        open(&mut t, orphan, ghost.ctx(), "y", 8); // parent never opened
        let tree = SpanTree::build(&t);
        let v = tree.validate();
        assert!(v.contains(&SpanViolation::CloseWithoutOpen { id: a.raw() }));
        assert!(v.contains(&SpanViolation::CloseWithoutOpen { id: ghost.raw() }));
        assert!(v.contains(&SpanViolation::OrphanParent {
            id: orphan.raw(),
            parent: ghost.raw(),
        }));
        // The orphan is still reachable as a root.
        assert!(tree.roots().any(|n| n.id == orphan));
    }

    #[test]
    fn nesting_violations_only_in_strict_mode() {
        let mut t = Trace::new(TraceLevel::Info);
        let mut g = SpanIdGen::new(1);
        let parent = g.next();
        let child = g.next();
        open(&mut t, parent, SpanContext::NONE, "ipc", 0);
        open(&mut t, child, parent.ctx(), "serve", 5);
        close(&mut t, parent, 10); // client gave up
        close(&mut t, child, 20); // server finished later
        let tree = SpanTree::build(&t);
        assert!(tree.validate().is_empty());
        assert_eq!(
            tree.validate_nesting(),
            vec![SpanViolation::ChildOutsideParent { id: child.raw() }]
        );
    }

    #[test]
    fn unclosed_spans_are_queryable_not_violations() {
        let mut t = Trace::new(TraceLevel::Info);
        let mut g = SpanIdGen::new(3);
        let a = g.next();
        open(&mut t, a, SpanContext::NONE, "quantum", 0);
        let tree = SpanTree::build(&t);
        assert!(tree.validate().is_empty());
        assert_eq!(tree.unclosed().count(), 1);
        assert_eq!(tree.duration_of(a), None);
    }

    #[test]
    fn filtered_trace_yields_empty_tree() {
        let mut t = Trace::quiet();
        let mut g = SpanIdGen::new(1);
        let a = g.next();
        open(&mut t, a, SpanContext::NONE, "x", 0);
        close(&mut t, a, 1);
        assert!(SpanTree::build(&t).is_empty());
    }
}
