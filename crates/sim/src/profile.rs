//! Engine self-profiling: per-subsystem / per-event-kind dispatch counts
//! and wall-clock attribution.
//!
//! The simulator is deterministic, so *counting* dispatches is free and
//! replayable — but attributing *wall-clock* time requires a host clock,
//! which the `det-time` lint bans from library crates. The [`HostClock`]
//! trait squares that circle: the library default is [`NullClock`], which
//! always reads 0 (so every `wall_ns` stays 0 and the library remains
//! clock-free), and bench binaries inject a real monotonic clock at the
//! edge. Dispatch counts are identical either way; only the nanosecond
//! column changes between a test run and a profiling run.
//!
//! # Examples
//!
//! ```
//! use vsim::{Profiler, Subsystem};
//!
//! let mut p = Profiler::null();
//! let slot = p.slot(Subsystem::Net, "Frame");
//! let t0 = p.begin();
//! // ... dispatch the event ...
//! p.end(slot, t0);
//! let report = p.report();
//! assert_eq!(report.slots[0].dispatches, 1);
//! assert_eq!(report.slots[0].wall_ns, 0); // null clock
//! ```

use crate::json::{Json, ToJson};
use crate::trace::Subsystem;

/// A monotonic host-time source for wall-clock attribution.
///
/// `&mut self` so implementations may keep state (e.g. an epoch); reads
/// are nanoseconds from an arbitrary per-clock origin — only differences
/// are meaningful.
pub trait HostClock {
    /// Current reading in nanoseconds.
    fn now_ns(&mut self) -> u64;
    /// Short identifier recorded in reports (`"null"`, `"monotonic"`).
    fn label(&self) -> &'static str;
}

/// The deterministic default clock: always reads 0, so profiled wall
/// times are identically 0 and library code stays free of host time.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl HostClock for NullClock {
    fn now_ns(&mut self) -> u64 {
        0
    }
    fn label(&self) -> &'static str {
        "null"
    }
}

/// Handle to an interned `(subsystem, event-kind)` attribution slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId(u32);

#[derive(Debug, Clone)]
struct Slot {
    subsystem: Subsystem,
    kind: &'static str,
    dispatches: u64,
    wall_ns: u64,
}

/// Accumulates dispatch counts and wall time per interned slot.
pub struct Profiler {
    clock: Box<dyn HostClock>,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("clock", &self.clock.label())
            .field("slots", &self.slots)
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::null()
    }
}

impl Profiler {
    /// A profiler on the deterministic [`NullClock`] (counts only).
    pub fn null() -> Self {
        Profiler::with_clock(Box::new(NullClock))
    }

    /// A profiler on an injected clock (bench binaries pass a real one).
    pub fn with_clock(clock: Box<dyn HostClock>) -> Self {
        Profiler {
            clock,
            slots: Vec::new(),
        }
    }

    /// Swaps the clock, keeping accumulated slots.
    pub fn set_clock(&mut self, clock: Box<dyn HostClock>) {
        self.clock = clock;
    }

    /// The active clock's label.
    pub fn clock_label(&self) -> &'static str {
        self.clock.label()
    }

    /// Interns an attribution slot. Idempotent by `(subsystem, kind)`;
    /// call once per event kind at setup, not on the hot path.
    pub fn slot(&mut self, subsystem: Subsystem, kind: &'static str) -> SlotId {
        if let Some(i) = self
            .slots
            .iter()
            .position(|s| s.subsystem == subsystem && s.kind == kind)
        {
            return SlotId(i as u32);
        }
        self.slots.push(Slot {
            subsystem,
            kind,
            dispatches: 0,
            wall_ns: 0,
        });
        SlotId(self.slots.len() as u32 - 1)
    }

    /// Reads the clock before a dispatch; pass the value to [`end`].
    ///
    /// [`end`]: Profiler::end
    #[inline]
    pub fn begin(&mut self) -> u64 {
        self.clock.now_ns()
    }

    /// Charges one dispatch (and the elapsed wall time since `t0`) to
    /// `slot`. Under the null clock the elapsed time is always 0.
    #[inline]
    pub fn end(&mut self, slot: SlotId, t0: u64) {
        let now = self.clock.now_ns();
        let s = &mut self.slots[slot.0 as usize];
        s.dispatches += 1;
        s.wall_ns += now.saturating_sub(t0);
    }

    /// Snapshots every slot for artifact emission, sorted by descending
    /// wall time then descending dispatches (hottest first), ties broken
    /// by subsystem and kind so the order is deterministic.
    pub fn report(&self) -> ProfileReport {
        let mut slots: Vec<SlotReport> = self
            .slots
            .iter()
            .map(|s| SlotReport {
                subsystem: s.subsystem,
                kind: s.kind,
                dispatches: s.dispatches,
                wall_ns: s.wall_ns,
            })
            .collect();
        slots.sort_by(|a, b| {
            b.wall_ns
                .cmp(&a.wall_ns)
                .then(b.dispatches.cmp(&a.dispatches))
                .then(a.subsystem.to_string().cmp(&b.subsystem.to_string()))
                .then(a.kind.cmp(b.kind))
        });
        ProfileReport {
            clock: self.clock.label(),
            slots,
        }
    }
}

/// One slot's accumulated attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotReport {
    /// Subsystem the event kind belongs to.
    pub subsystem: Subsystem,
    /// Event-kind label (the `Event` variant name).
    pub kind: &'static str,
    /// Times this kind was dispatched.
    pub dispatches: u64,
    /// Wall nanoseconds spent dispatching it (0 under the null clock).
    pub wall_ns: u64,
}

/// A frozen [`Profiler`]: the `profile` section of bench artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Label of the clock that produced `wall_ns` values.
    pub clock: &'static str,
    /// Per-slot attribution, hottest first.
    pub slots: Vec<SlotReport>,
}

impl ProfileReport {
    /// Total dispatches across all slots.
    pub fn total_dispatches(&self) -> u64 {
        self.slots.iter().map(|s| s.dispatches).sum()
    }

    /// Total wall nanoseconds across all slots.
    pub fn total_wall_ns(&self) -> u64 {
        self.slots.iter().map(|s| s.wall_ns).sum()
    }

    /// Finds a slot by event-kind label.
    pub fn slot(&self, kind: &str) -> Option<&SlotReport> {
        self.slots.iter().find(|s| s.kind == kind)
    }
}

impl ToJson for SlotReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("subsystem", self.subsystem.to_string().to_json()),
            ("kind", self.kind.to_json()),
            ("dispatches", self.dispatches.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
        ])
    }
}

impl ToJson for ProfileReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("clock", self.clock.to_json()),
            ("slots", self.slots.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted clock for testing wall attribution without host time.
    struct StepClock {
        t: u64,
        step: u64,
    }

    impl HostClock for StepClock {
        fn now_ns(&mut self) -> u64 {
            let t = self.t;
            self.t += self.step;
            t
        }
        fn label(&self) -> &'static str {
            "step"
        }
    }

    #[test]
    fn slots_are_interned_idempotently() {
        let mut p = Profiler::null();
        let a = p.slot(Subsystem::Net, "Frame");
        let b = p.slot(Subsystem::Net, "Frame");
        let c = p.slot(Subsystem::Kernel, "Frame");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.report().slots.len(), 2);
    }

    #[test]
    fn null_clock_counts_but_attributes_zero_time() {
        let mut p = Profiler::null();
        let s = p.slot(Subsystem::Engine, "Tick");
        for _ in 0..5 {
            let t0 = p.begin();
            p.end(s, t0);
        }
        let r = p.report();
        assert_eq!(r.clock, "null");
        assert_eq!(r.slot("Tick").unwrap().dispatches, 5);
        assert_eq!(r.slot("Tick").unwrap().wall_ns, 0);
    }

    #[test]
    fn injected_clock_attributes_elapsed_time() {
        let mut p = Profiler::with_clock(Box::new(StepClock { t: 0, step: 10 }));
        let s = p.slot(Subsystem::Cluster, "Command");
        let t0 = p.begin(); // reads 0
        p.end(s, t0); // reads 10 -> charges 10
        let t0 = p.begin(); // reads 20
        p.end(s, t0); // reads 30 -> charges 10
        let r = p.report();
        assert_eq!(r.clock, "step");
        assert_eq!(r.slot("Command").unwrap().dispatches, 2);
        assert_eq!(r.slot("Command").unwrap().wall_ns, 20);
        assert_eq!(r.total_wall_ns(), 20);
    }

    #[test]
    fn report_sorts_hottest_first_deterministically() {
        let mut p = Profiler::with_clock(Box::new(StepClock { t: 0, step: 1 }));
        let cold = p.slot(Subsystem::Net, "Cold");
        let hot = p.slot(Subsystem::Kernel, "Hot");
        let t0 = p.begin();
        p.end(cold, t0);
        for _ in 0..10 {
            let t0 = p.begin();
            p.end(hot, t0);
        }
        let r = p.report();
        assert_eq!(r.slots[0].kind, "Hot");
        assert_eq!(r.slots[1].kind, "Cold");
        assert_eq!(r.total_dispatches(), 11);
    }

    #[test]
    fn swapping_clock_keeps_counts() {
        let mut p = Profiler::null();
        let s = p.slot(Subsystem::Engine, "Tick");
        let t0 = p.begin();
        p.end(s, t0);
        p.set_clock(Box::new(StepClock { t: 0, step: 7 }));
        let t0 = p.begin();
        p.end(s, t0);
        let r = p.report();
        assert_eq!(r.clock, "step");
        assert_eq!(r.slot("Tick").unwrap().dispatches, 2);
        assert_eq!(r.slot("Tick").unwrap().wall_ns, 7);
    }
}
