//! `vsim` — deterministic discrete-event simulation engine.
//!
//! Foundation of the V-system reproduction: a microsecond-resolution
//! simulated clock and event queue ([`Engine`]), seeded randomness
//! ([`DetRng`]), measurement collection ([`OnlineStats`], [`Samples`],
//! [`Histogram`]), a structured observability layer (typed [`Trace`]
//! events, causal [`span`]s reconstructed into a [`SpanTree`], and the
//! [`metrics`] registry), a dependency-free [`json`] serializer/parser
//! for machine-readable experiment artifacts, and the
//! calibration constants derived from the paper's §4.1 measurements
//! ([`calib`]).
//!
//! Everything above this crate is a sans-IO state machine: components react
//! to events and schedule new ones; only the cluster runtime owns the loop.

pub mod calib;
mod context;
mod engine;
mod faults;
pub mod json;
pub mod metrics;
mod profile;
mod queue;
mod rng;
pub mod span;
mod stats;
mod time;
pub mod timeseries;
mod trace;

pub use context::SimContext;
pub use engine::{Engine, EventId};
pub use faults::{
    fault_points, FaultEvent, FaultKind, FaultPlan, FaultPoint, FaultTrigger, MigrationPhase,
    Party, ProtocolStep, PARTY,
};
pub use json::{Json, ToJson};
pub use metrics::{CounterId, GaugeId, HistogramId, Metrics, MetricsReport, ScopeMetrics};
pub use profile::{HostClock, NullClock, ProfileReport, Profiler, SlotId, SlotReport};
pub use queue::{DynQueue, EventQueue, HeapQueue, QueueBackend, TimingWheel};
pub use rng::DetRng;
pub use span::{SpanContext, SpanId, SpanIdGen, SpanNode, SpanTree, SpanViolation};
pub use stats::{Histogram, OnlineStats, Samples};
pub use time::{SimDuration, SimTime};
pub use timeseries::{Probe, SamplingSpec, SeriesId, SeriesReport, SeriesSnapshot, SeriesStore};
pub use trace::{
    NullSink, RingSink, SpanEvent, Subsystem, Trace, TraceEvent, TraceLevel, TraceRecord,
    TraceSink, TraceSinkSpec, VecSink,
};
